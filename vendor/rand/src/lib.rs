//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment cannot reach a crate registry, so the small slice of `rand`'s
//! 0.8 API that the workspace uses — [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`], [`Rng::gen_bool`] and [`Rng::gen`] — is provided here on top of a
//! xoshiro256++ generator seeded through SplitMix64. Streams are deterministic per seed
//! (which is all the dataset generators rely on) but do **not** bit-match the real crate.

use std::ops::{Range, RangeInclusive};

/// Seeding interface: only the `seed_from_u64` entry point is needed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core sampling interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be drawn from the "standard" distribution (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one value using `rng` as the bit source.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (`rng.gen_range(range)`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Widen to i128/u128 so extreme ranges (e.g. i64::MIN..i64::MAX) neither
                // overflow the width computation nor the offset addition.
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    // Full-width inclusive range of a 64-bit type: every word is valid.
                    return (start as i128 + rng.next_u64() as i128) as $t;
                }
                let offset = (rng.next_u64() as u128) % width;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// User-facing sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator (the role `SmallRng` plays in the real crate).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: u32 = rng.gen_range(0..5);
            assert!(y < 5);
            let z: usize = rng.gen_range(2..=4);
            assert!((2..=4).contains(&z));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn extreme_ranges_do_not_overflow() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let _: u64 = rng.gen_range(0u64..=u64::MAX);
            let x: i64 = rng.gen_range(i64::MIN..i64::MAX);
            assert!(x < i64::MAX);
            let y: i64 = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = y;
            let z: u64 = rng.gen_range(u64::MAX - 1..u64::MAX);
            assert_eq!(z, u64::MAX - 1);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let trues = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!(
            (800..1200).contains(&trues),
            "p=0.5 produced {trues}/2000 trues"
        );
    }
}

//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment cannot reach a crate registry, so the slice of criterion's API
//! used by `crates/bench/benches/` is provided here: [`Criterion`], benchmark groups with
//! `sample_size` / `measurement_time` / `warm_up_time`, [`BenchmarkId`], `bench_function`,
//! `bench_with_input`, `Bencher::iter`, [`black_box`] and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery, each benchmark is timed with a simple
//! warm-up + fixed-sample mean and the result is printed as one line per benchmark:
//!
//! ```text
//! bench group/id/param ... 1.2345 ms/iter (10 samples)
//! ```

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser identity function.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group: a function name plus a parameter display.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Creates an id carrying only a parameter (criterion's `from_parameter`).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: name,
            parameter: None,
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function[..], &self.parameter) {
            ("", Some(p)) => write!(f, "{p}"),
            (name, Some(p)) => write!(f, "{name}/{p}"),
            (name, None) => write!(f, "{name}"),
        }
    }
}

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean wall-clock time per iteration of the most recent `iter` call.
    last_mean: Duration,
}

impl Bencher {
    /// Times `f`, storing the mean duration per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.last_mean = start.elapsed() / self.samples as u32;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        last_mean: Duration::ZERO,
    };
    f(&mut bencher);
    let nanos = bencher.last_mean.as_nanos();
    let pretty = if nanos >= 1_000_000_000 {
        format!("{:.4} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    };
    println!("bench {label} ... {pretty}/iter ({samples} samples)");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Accepted for API compatibility; the shim's sampling is fixed-count, not timed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim warms up with a single untimed call.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id), self.samples, f);
        self
    }

    /// Benchmarks `f` under `id` with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id), self.samples, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (criterion reports here; the shim prints eagerly).
    pub fn finish(&mut self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.to_string(), 10, f);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test` a bench target may be executed in test mode; only
            // benchmark when invoked by `cargo bench` (which passes `--bench`).
            let args: ::std::vec::Vec<::std::string::String> = ::std::env::args().collect();
            if args.iter().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group
                .sample_size(3)
                .measurement_time(Duration::from_secs(1))
                .warm_up_time(Duration::from_millis(1));
            group.bench_function("f", |b| b.iter(|| runs += 1));
            group.bench_with_input(BenchmarkId::new("g", 1), &5usize, |b, &x| {
                b.iter(|| black_box(x * 2));
            });
            group.finish();
        }
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}

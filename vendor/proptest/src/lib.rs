//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment cannot reach a crate registry, so the slice of proptest's API the
//! workspace tests use is provided here: the [`proptest!`] macro, [`strategy::Strategy`]
//! with `prop_map` / `prop_flat_map`, range and tuple strategies, [`collection::vec`],
//! [`arbitrary::any`], [`prelude::ProptestConfig`] and the `prop_assert*` macros.
//!
//! Differences from the real crate: no shrinking (a failing case reports its values via the
//! assertion message only) and generation is driven by a fixed per-test seed, so runs are
//! fully deterministic.

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// The RNG threaded through all strategies.
    pub type TestRng = SmallRng;

    /// Derives a deterministic RNG for a named test.
    pub fn seeded_rng(name: &str) -> TestRng {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::seed_from_u64(h)
    }

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl Config {
        /// Configuration running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }

        /// The case count to actually run: the `PROPTEST_CASES` environment variable when
        /// set (so CI can raise every property to nightly scale without touching the
        /// per-test configuration), the configured `cases` otherwise.
        ///
        /// Divergence from the real crate, where the env var only feeds
        /// `Config::default()`: here it overrides explicit `with_cases` values too, which
        /// is what an offline nightly job needs.
        pub fn effective_cases(&self) -> u32 {
            self.cases_with_override(std::env::var("PROPTEST_CASES").ok().as_deref())
        }

        /// [`Config::effective_cases`] with the override value injected, so the parsing
        /// rules are testable without mutating the process environment.
        pub(crate) fn cases_with_override(&self, env: Option<&str>) -> u32 {
            env.and_then(|v| v.trim().parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(self.cases)
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of type `Value`.
    pub trait Strategy: Sized {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds out of it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F> {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    /// A fixed value used as a strategy (`Just` in the real crate).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<u64>() as usize
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specifications accepted by [`vec`]: an exact `usize` or a `Range<usize>`.
    pub trait IntoLen {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLen for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLen for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            if self.is_empty() {
                self.start
            } else {
                rng.gen_range(self.clone())
            }
        }
    }

    /// Strategy for vectors of values drawn from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a vector whose length follows `len`.
    pub fn vec<S: Strategy, L: IntoLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the current case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {} (both {:?})",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l
            ));
        }
    }};
}

/// The `proptest!` macro: wraps property functions into `#[test]`-able case loops.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (cfg = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::seeded_rng(::std::stringify!($name));
                for case in 0..config.effective_cases() {
                    $(let $arg = ($strat).generate(&mut rng);)*
                    let outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        ::std::panic!(
                            "proptest case {case} of {} failed: {message}",
                            ::std::stringify!($name)
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 1usize..10, (a, b) in (0u32..5, 0u32..5)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < 5 && b < 5);
        }

        #[test]
        fn flat_map_dependent_lengths(v in (1usize..8).prop_flat_map(|n| crate::collection::vec(0u32..100, n))) {
            prop_assert!(!v.is_empty() && v.len() < 8);
        }

        #[test]
        fn map_transforms(s in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert!(s % 2 == 0);
            prop_assert_eq!(s % 2, 0);
        }
    }

    #[test]
    fn effective_cases_prefers_valid_env_override() {
        // The parsing rules are tested through the injected-value form: mutating the real
        // process environment would race the parallel proptest-macro tests in this binary
        // (and concurrent setenv/getenv is undefined behaviour on glibc).
        let config = crate::test_runner::Config::with_cases(7);
        assert_eq!(config.cases_with_override(None), 7);
        assert_eq!(config.cases_with_override(Some("3")), 3);
        assert_eq!(
            config.cases_with_override(Some(" 12 ")),
            12,
            "whitespace trimmed"
        );
        assert_eq!(
            config.cases_with_override(Some("zero")),
            7,
            "garbage env values are ignored"
        );
        assert_eq!(
            config.cases_with_override(Some("0")),
            7,
            "zero cases would skip the test"
        );
    }

    #[test]
    #[should_panic(expected = "proptest case 0 of inner failed")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(dead_code)]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}

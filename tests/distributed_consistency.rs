//! Distributed strong simulation (Section 4.3) agrees with the centralized algorithm.
//!
//! The paper's data-locality argument: strong simulation can be evaluated per ball, so a
//! partitioned evaluation that ships only boundary balls reproduces the centralized result.

use ssim_core::strong::{strong_simulation, MatchConfig};
use ssim_datasets::paper;
use ssim_datasets::patterns::extract_pattern;
use ssim_datasets::reallike::amazon_like;
use ssim_datasets::synthetic::{synthetic, SyntheticConfig};
use ssim_distributed::{
    distributed_strong_simulation, DistributedConfig, GraphPartition, PartitionStrategy,
};

#[test]
fn distributed_matches_centralized_across_sites_and_strategies() {
    let fig = paper::figure1();
    let central = strong_simulation(&fig.pattern, &fig.data, &MatchConfig::basic());
    for sites in [1usize, 2, 3, 4, 7] {
        for strategy in [PartitionStrategy::Hash, PartitionStrategy::Range] {
            for minimize_query in [false, true] {
                let out = distributed_strong_simulation(
                    &fig.pattern,
                    &fig.data,
                    &DistributedConfig {
                        sites,
                        strategy,
                        minimize_query,
                        ..DistributedConfig::default()
                    },
                )
                .expect("valid distributed config");
                assert_eq!(
                    central.matched_nodes(),
                    out.matched_nodes(),
                    "sites={sites} strategy={strategy:?} minQ={minimize_query}"
                );
                assert_eq!(central.subgraphs.len(), out.subgraphs.len());
            }
        }
    }
}

#[test]
fn distributed_matches_centralized_on_generated_workloads() {
    for seed in 0..4u64 {
        let data = synthetic(&SyntheticConfig {
            nodes: 150,
            alpha: 1.15,
            labels: 8,
            seed,
        });
        let Some(pattern) = extract_pattern(&data, 4, seed.wrapping_add(5)) else {
            continue;
        };
        let central = strong_simulation(&pattern, &data, &MatchConfig::basic());
        let out = distributed_strong_simulation(
            &pattern,
            &data,
            &DistributedConfig {
                sites: 5,
                strategy: PartitionStrategy::Hash,
                minimize_query: true,
                ..DistributedConfig::default()
            },
        )
        .expect("valid distributed config");
        assert_eq!(central.matched_nodes(), out.matched_nodes(), "seed={seed}");
    }
}

#[test]
fn traffic_accounting_is_consistent() {
    let data = amazon_like(220, 6);
    let pattern = extract_pattern(&data, 4, 1).expect("extraction succeeds");
    let out = distributed_strong_simulation(
        &pattern,
        &data,
        &DistributedConfig {
            sites: 4,
            strategy: PartitionStrategy::Range,
            minimize_query: false,
            ..DistributedConfig::default()
        },
    )
    .expect("valid distributed config");
    // Every node is the center of exactly one ball, evaluated at its home site.
    assert_eq!(
        out.traffic.balls_per_site.iter().sum::<usize>(),
        data.node_count()
    );
    assert_eq!(out.traffic.balls_per_site.len(), 4);
    // Shipped balls are a subset of all balls; shipping implies a non-zero node count.
    assert!(out.traffic.shipped_balls <= data.node_count());
    if out.traffic.shipped_balls > 0 {
        assert!(out.traffic.shipped_nodes >= out.traffic.shipped_balls);
    }
    assert_eq!(out.traffic.result_subgraphs, out.subgraphs.len());
    // The fragments partition the node set.
    assert_eq!(
        out.partition.fragment_sizes().iter().sum::<usize>(),
        data.node_count()
    );
}

#[test]
fn partition_invariants() {
    let data = synthetic(&SyntheticConfig {
        nodes: 97,
        alpha: 1.2,
        labels: 5,
        seed: 9,
    });
    for sites in [2usize, 3, 10] {
        for strategy in [PartitionStrategy::Hash, PartitionStrategy::Range] {
            let p = GraphPartition::new(&data, sites, strategy);
            assert_eq!(p.fragment_sizes().iter().sum::<usize>(), data.node_count());
            // Every node belongs to exactly one site, and border nodes are exactly the nodes
            // with a cross-fragment neighbour.
            for v in data.nodes() {
                let home = p.site_of(v);
                assert!(home < sites);
                let has_foreign_neighbor = data
                    .out_neighbors(v)
                    .chain(data.in_neighbors(v))
                    .any(|w| p.site_of(w) != home);
                assert_eq!(p.is_border_node(&data, v), has_foreign_neighbor);
            }
        }
    }
}

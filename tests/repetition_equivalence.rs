//! Differential properties of the label-repetition semantics
//! ([`ssim_core::RepetitionSemantics`]) — the sixth oracle axis.
//!
//! Strong simulation's maximum relation deliberately ignores how many pattern nodes
//! share a label; `Distinct`/`Equal` constrain equal-labelled pattern nodes to distinct
//! (resp. one) data node(s) per match witness. Like every prior axis the semantics is
//! implemented twice — the integrated witness-closure threaded through the engine and a
//! naive per-pair oracle — and the two must be *bit-identical* at every point of the
//! six-axis oracle matrix: `RefineStrategy` × `BallStrategy` × `RefineSeed` ×
//! `BallSubstrate` × `UpdatePlan` × `RepetitionSemantics`, sequential, parallel and
//! distributed, before and after a `GraphDelta`. The shared driver lives in
//! `tests/common/` ([`common::check_matrix_point`]).
//!
//! The budget/bail contract is pinned too: when the product of candidate-set sizes over
//! the pattern nodes exceeds [`ssim_core::REPETITION_BUDGET`], the ball skips
//! enforcement (behaving as `Free`) and reports itself in
//! `MatchStats::repetition_bailed_balls` — identically in both modes, because the
//! decision reads only the converged candidate-set sizes.

mod common;

use proptest::prelude::*;
use ssim_core::strong::{strong_simulation, MatchConfig};
use ssim_core::{has_repeated_labels, RepetitionMode, RepetitionSemantics};
use ssim_graph::{Graph, GraphDelta, Label, Pattern};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The headline property: at a random point of the six-axis matrix, the integrated
    /// repetition path and the naive per-ball oracle return bit-identical
    /// `MatchOutput`s — one-shot, through incremental sessions across a random delta
    /// (both update plans), and through the distributed runtime.
    #[test]
    fn integrated_and_naive_oracle_agree_across_the_matrix(
        data in common::data_graph(),
        q in common::pattern(),
        picks in proptest::collection::vec(any::<u64>(), 1..6),
        shape_bits in any::<u64>(),
        semantics_bits in any::<u64>(),
        sites in 1usize..4,
    ) {
        let delta = common::random_delta(&data, &picks);
        let semantics = common::matrix_semantics(semantics_bits);
        common::check_matrix_point(&q, &data, &delta, shape_bits, semantics, sites)?;
    }

    /// On label-distinct patterns the repetition closure is a gated no-op: `Distinct`
    /// (and `Equal`) are bit-identical to `Free` — counters included — so the sixth
    /// axis costs nothing on the workloads the paper studies.
    #[test]
    fn non_free_semantics_gate_out_on_label_distinct_patterns(
        data in common::data_graph(),
        q in common::pattern_sized(5, 8),
        shape_bits in any::<u64>(),
    ) {
        // The 8-symbol alphabet on ≤4-node patterns makes label-distinct draws common;
        // repeated-label draws simply pass (they are the other properties' subject).
        if !has_repeated_labels(&q) {
            let base = common::matrix_config(shape_bits);
            let free = strong_simulation(&q, &data, &base);
            for semantics in [RepetitionSemantics::Distinct, RepetitionSemantics::Equal] {
                for mode in [RepetitionMode::Integrated, RepetitionMode::NaiveOracle] {
                    let out = strong_simulation(
                        &q,
                        &data,
                        &base.with_repetition(semantics).with_repetition_mode(mode),
                    );
                    common::assert_bit_identical(&out, &free, "gated no-op vs Free")?;
                    prop_assert_eq!(out.stats.repetition_filtered_pairs, 0);
                    prop_assert_eq!(out.stats.repetition_bailed_balls, 0);
                }
            }
        }
    }

    /// `Free` is the `seed_reference` pole: setting it explicitly (in either mode)
    /// never changes anything, on any pattern.
    #[test]
    fn free_pole_is_inert(
        data in common::data_graph(),
        q in common::pattern(),
        shape_bits in any::<u64>(),
    ) {
        let base = common::matrix_config(shape_bits);
        let plain = strong_simulation(&q, &data, &base);
        for mode in [RepetitionMode::Integrated, RepetitionMode::NaiveOracle] {
            let out = strong_simulation(
                &q,
                &data,
                &base
                    .with_repetition(RepetitionSemantics::Free)
                    .with_repetition_mode(mode),
            );
            common::assert_bit_identical(&out, &plain, "explicit Free vs default")?;
        }
    }
}

/// A small equal-label community corpus: `communities` star-shaped clusters whose hub
/// and members all carry label 0, chained by label-1 bridges — dense repeated-label
/// balls without blowing the witness budget.
fn equal_label_communities(communities: usize, members: usize) -> Graph {
    let mut labels = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for c in 0..communities {
        let hub = labels.len() as u32;
        labels.push(Label(0));
        for _ in 0..members {
            let m = labels.len() as u32;
            labels.push(Label(0));
            edges.push((hub, m));
            edges.push((m, hub));
        }
        if c + 1 < communities {
            let bridge = labels.len() as u32;
            labels.push(Label(1));
            edges.push((hub, bridge));
            edges.push((bridge, hub + (members as u32) + 2));
        }
    }
    Graph::from_edges(labels, &edges).unwrap()
}

/// The deterministic six-axis smoke: every shape-bit combination of the matrix driver
/// (both partition strategies included), every semantics, on a fixed repeated-label
/// corpus and pattern with a fixed delta — the CI job that exercises cross-axis
/// composition on every PR without proptest's runtime.
#[test]
fn six_axis_matrix_smoke() {
    let data = equal_label_communities(4, 3);
    // A 2-path with both endpoints on the repeated label: u0(0) -> u1(0) -> u2(1).
    let q = Pattern::from_edges(vec![Label(0), Label(0), Label(1)], &[(0, 1), (1, 2)]).unwrap();
    assert!(has_repeated_labels(&q));
    let mut delta = GraphDelta::new();
    let (s, t) = data.edges().next().expect("corpus has edges");
    delta.delete_edge_labeled(s, t, data.label(s), data.label(t));
    for shape_bits in 0..128u64 {
        for semantics in [
            RepetitionSemantics::Free,
            RepetitionSemantics::Distinct,
            RepetitionSemantics::Equal,
        ] {
            common::check_matrix_point(&q, &data, &delta, shape_bits, semantics, 2)
                .unwrap_or_else(|e| panic!("matrix point {shape_bits:#b} {semantics:?}: {e}"));
        }
    }
}

/// The budget/bail contract: a ball whose candidate-set product exceeds the witness
/// budget skips enforcement — identically in both modes — and the output degrades to
/// `Free` exactly, with the bail surfaced in the stats.
#[test]
fn budget_bail_is_mode_identical_and_degrades_to_free() {
    // A 40-node label-0 clique: each ball's relation keeps all 40 candidates for every
    // of the 4 pattern nodes, so the precondition product is 40^4 ≈ 2.56M > 2^18.
    let n = 40u32;
    let labels: Vec<Label> = (0..n).map(|_| Label(0)).collect();
    let mut edges = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                edges.push((i, j));
            }
        }
    }
    let data = Graph::from_edges(labels, &edges).unwrap();
    let q = Pattern::from_edges(
        vec![Label(0), Label(0), Label(0), Label(0)],
        &[(0, 1), (1, 2), (2, 3)],
    )
    .unwrap();
    let free = strong_simulation(&q, &data, &MatchConfig::basic().sequential());
    for mode in [RepetitionMode::Integrated, RepetitionMode::NaiveOracle] {
        let out = strong_simulation(
            &q,
            &data,
            &MatchConfig::basic()
                .sequential()
                .with_repetition(RepetitionSemantics::Distinct)
                .with_repetition_mode(mode),
        );
        assert!(
            out.stats.repetition_bailed_balls > 0,
            "{mode:?}: clique balls must exceed the witness budget"
        );
        assert_eq!(out.stats.repetition_filtered_pairs, 0);
        assert_eq!(
            out.subgraphs, free.subgraphs,
            "{mode:?}: bailed balls must behave exactly like Free"
        );
    }
}

/// `Equal` genuinely diverges from both `Free` and `Distinct`: on a loop-free chain, a
/// repeated-label chain pattern needs a self-loop once its class collapses, so `Equal`
/// rejects what `Distinct` accepts.
#[test]
fn equal_and_distinct_diverge_on_the_chain() {
    let q = Pattern::from_edges(
        vec![Label(0), Label(1), Label(1), Label(2)],
        &[(0, 1), (1, 2), (2, 3)],
    )
    .unwrap();
    let data = Graph::from_edges(
        vec![Label(0), Label(1), Label(1), Label(2)],
        &[(0, 1), (1, 2), (2, 3)],
    )
    .unwrap();
    let free = strong_simulation(&q, &data, &MatchConfig::basic());
    assert!(free.is_match());
    for mode in [RepetitionMode::Integrated, RepetitionMode::NaiveOracle] {
        let distinct = strong_simulation(
            &q,
            &data,
            &MatchConfig::basic()
                .with_repetition(RepetitionSemantics::Distinct)
                .with_repetition_mode(mode),
        );
        assert!(distinct.is_match(), "{mode:?}: the chain realises Distinct");
        let equal = strong_simulation(
            &q,
            &data,
            &MatchConfig::basic()
                .with_repetition(RepetitionSemantics::Equal)
                .with_repetition_mode(mode),
        );
        assert!(
            !equal.is_match(),
            "{mode:?}: collapsing the class needs a self-loop the chain lacks"
        );
    }
}

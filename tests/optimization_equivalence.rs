//! The Section 4.2 optimisations never change the result of strong simulation.
//!
//! Every combination of {query minimization, dual-simulation filtering, connectivity
//! pruning} must produce the same set of matched nodes, the same number of perfect
//! subgraphs and the same per-pattern-node matches as the plain `Match` algorithm — only the
//! amount of work may differ.

use ssim_core::strong::{strong_simulation, MatchConfig};
use ssim_datasets::paper;
use ssim_datasets::patterns::extract_pattern;
use ssim_datasets::reallike::{amazon_like, youtube_like};
use ssim_datasets::synthetic::{synthetic, SyntheticConfig};
use ssim_graph::{Graph, Pattern};

/// All eight on/off combinations of the three optimisations, each crossed with the fast
/// engine (worklist + compact balls + parallel) and the seed-reference engine (naive
/// fixpoint, sequential, `|V|`-sized ball relations).
fn all_configs() -> Vec<MatchConfig> {
    let mut configs = Vec::new();
    for minimize_query in [false, true] {
        for dual_filter in [false, true] {
            for connectivity_pruning in [false, true] {
                for engine in [MatchConfig::basic(), MatchConfig::seed_reference()] {
                    configs.push(MatchConfig {
                        minimize_query,
                        dual_filter,
                        connectivity_pruning,
                        ..engine
                    });
                }
            }
        }
    }
    configs
}

fn assert_all_configs_agree(pattern: &Pattern, data: &Graph, context: &str) {
    let baseline = strong_simulation(pattern, data, &MatchConfig::basic());
    for config in all_configs() {
        let out = strong_simulation(pattern, data, &config);
        assert_eq!(
            baseline.matched_nodes(),
            out.matched_nodes(),
            "{context}: matched nodes differ for {config:?}"
        );
        assert_eq!(
            baseline.subgraphs.len(),
            out.subgraphs.len(),
            "{context}: subgraph count differs for {config:?}"
        );
        for u in pattern.nodes() {
            assert_eq!(
                baseline.matches_of(u),
                out.matches_of(u),
                "{context}: matches of pattern node {u} differ for {config:?}"
            );
        }
        // Work accounting is consistent.
        assert_eq!(out.stats.balls_considered, data.node_count(), "{context}");
        assert_eq!(
            out.stats.balls_processed + out.stats.balls_skipped,
            out.stats.balls_considered,
            "{context}"
        );
    }
}

#[test]
fn optimisations_preserve_results_on_the_paper_figures() {
    for fig in paper::all_figures() {
        assert_all_configs_agree(&fig.pattern, &fig.data, fig.name);
    }
}

#[test]
fn optimisations_preserve_results_on_synthetic_graphs() {
    for seed in 0..5u64 {
        let data = synthetic(&SyntheticConfig {
            nodes: 120,
            alpha: 1.2,
            labels: 6,
            seed,
        });
        for size in [3usize, 5] {
            if let Some(pattern) = extract_pattern(&data, size, seed.wrapping_add(31)) {
                assert_all_configs_agree(
                    &pattern,
                    &data,
                    &format!("synthetic seed={seed} size={size}"),
                );
            }
        }
    }
}

#[test]
fn optimisations_preserve_results_on_real_like_graphs() {
    let amazon = amazon_like(180, 4);
    if let Some(pattern) = extract_pattern(&amazon, 4, 8) {
        assert_all_configs_agree(&pattern, &amazon, "amazon-like");
    }
    let youtube = youtube_like(120, 4);
    if let Some(pattern) = extract_pattern(&youtube, 3, 8) {
        assert_all_configs_agree(&pattern, &youtube, "youtube-like");
    }
}

#[test]
fn dual_filter_never_processes_more_balls_than_basic_match() {
    let data = amazon_like(200, 12);
    let pattern = extract_pattern(&data, 5, 3).expect("extraction succeeds");
    let basic = strong_simulation(&pattern, &data, &MatchConfig::basic());
    let filtered = strong_simulation(
        &pattern,
        &data,
        &MatchConfig {
            dual_filter: true,
            ..MatchConfig::basic()
        },
    );
    assert!(filtered.stats.balls_processed <= basic.stats.balls_processed);
    assert_eq!(basic.matched_nodes(), filtered.matched_nodes());
}

#[test]
fn deduplication_only_removes_structural_duplicates() {
    let fig = paper::figure1();
    let plain = strong_simulation(&fig.pattern, &fig.data, &MatchConfig::basic());
    let deduped = strong_simulation(
        &fig.pattern,
        &fig.data,
        &MatchConfig::basic().with_deduplication(),
    );
    assert!(deduped.subgraphs.len() <= plain.subgraphs.len());
    assert_eq!(plain.matched_nodes(), deduped.matched_nodes());
    assert_eq!(deduped.subgraphs.len(), plain.distinct_subgraphs().len());
}

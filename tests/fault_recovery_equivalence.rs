//! Chaos differential suite for the fault-tolerant distributed runtime.
//!
//! Every scenario is scripted through a seeded [`FaultPlan`], so every failure here is
//! replayable from its proptest seed. The properties mirror the recovery contract:
//!
//! * **Recoverable schedules** (≤ sites−1 crashes, per-chunk failures within the retry
//!   budget) complete with output **bit-identical** to the fault-free run — same
//!   subgraphs, same traffic up to the scheduling-dependent `chunks_stolen` and the
//!   recovery trace — and agree with the centralized matcher (sequential and parallel,
//!   both refine strategies), before and after a `GraphDelta`, one-shot and through
//!   incremental sessions.
//! * **Unrecoverable schedules** degrade exactly: `covered_balls + lost_balls == |V|`,
//!   the lost centers are reported, and the surviving subgraphs are precisely the
//!   fault-free rows minus the lost centers (a subset, pinned sharply).
//! * **Replay**: the same plan against the same input reproduces the same output and
//!   the same recovery counters, bit for bit.
//! * **No public entry point panics** on a scripted fault — runs complete, degrade, or
//!   return a typed `DistError`, never unwind.

mod common;

use common::{data_graph_sized, pattern, random_delta};
use proptest::prelude::*;
use ssim_core::strong::{strong_simulation, MatchConfig};
use ssim_core::RefineStrategy;
use ssim_distributed::{
    distributed_strong_simulation, distributed_with_faults, DistError, DistributedConfig,
    FaultPlan, IncrementalDistributed, RecoveryPolicy, RecoveryStats, TrafficStats,
};
use ssim_graph::NodeId;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// Contained worker panics still run the global panic hook (they unwind on worker
/// threads, past libtest's output capture), so a chaos run would spew hundreds of
/// "injected fault" backtraces. Suppress exactly those payloads; real panics keep the
/// default reporting.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let message = payload
                .downcast_ref::<&'static str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
            if message.is_some_and(|m| m.contains("injected fault")) {
                return;
            }
            previous(info);
        }));
    });
}

/// Zeroes the two traffic components a fault schedule is allowed to perturb: steal
/// timing and the recovery trace itself. Everything else must match bit for bit.
fn normalized(t: &TrafficStats) -> TrafficStats {
    TrafficStats {
        chunks_stolen: 0,
        recovery: RecoveryStats::default(),
        ..t.clone()
    }
}

fn supervised_config(sites: usize, policy: RecoveryPolicy, dual_filter: bool) -> DistributedConfig {
    DistributedConfig {
        sites,
        minimize_query: false,
        dual_filter,
        recovery: Some(policy),
        ..DistributedConfig::default()
    }
}

proptest! {
    /// Recoverable schedules are invisible in the output: bit-identical to the
    /// fault-free run (one-shot, pre and post delta, and through incremental sessions)
    /// and in agreement with the centralized matcher across sequential/parallel × both
    /// refine strategies.
    #[test]
    fn recoverable_schedules_are_bit_identical(
        data in data_graph_sized(48, 4),
        q in pattern(),
        sites in 1usize..5,
        fault_seed in any::<u64>(),
        picks in proptest::collection::vec(any::<u64>(), 1..6),
    ) {
        install_quiet_hook();
        let sites = sites.min(data.node_count());
        let policy = RecoveryPolicy::default();
        let plan = FaultPlan::seeded_recoverable(fault_seed, sites, &policy);
        let config = supervised_config(sites, policy, false);

        // One-shot, pre-delta.
        let fault_free = distributed_strong_simulation(&q, &data, &config)
            .expect("valid distributed config");
        let recovered = distributed_with_faults(&q, &data, &config, &plan)
            .expect("recoverable plan completes");
        prop_assert!(recovered.lost_centers.is_empty(), "recoverable plan lost chunks");
        prop_assert_eq!(&fault_free.subgraphs, &recovered.subgraphs);
        prop_assert_eq!(normalized(&fault_free.traffic), normalized(&recovered.traffic));
        prop_assert_eq!(recovered.traffic.covered_balls, data.node_count());

        // Centralized agreement: sequential and parallel, both refine strategies.
        for strategy in [RefineStrategy::Worklist, RefineStrategy::NaiveFixpoint] {
            for threads in [1usize, 4] {
                let central = strong_simulation(
                    &q,
                    &data,
                    &MatchConfig::basic()
                        .with_refine_strategy(strategy)
                        .with_thread_limit(threads),
                );
                prop_assert!(
                    central.subgraphs == recovered.subgraphs,
                    "centralized {strategy:?}/{threads} threads diverged from the recovered run"
                );
            }
        }

        // Post-delta one-shot: the same plan against the updated graph.
        let delta = random_delta(&data, &picks);
        let updated = data.apply_delta(&delta).expect("random_delta validates");
        let fault_free_post = distributed_strong_simulation(&q, &updated, &config)
            .expect("valid distributed config");
        let recovered_post = distributed_with_faults(&q, &updated, &config, &plan)
            .expect("recoverable plan completes");
        prop_assert!(recovered_post.lost_centers.is_empty());
        prop_assert_eq!(&fault_free_post.subgraphs, &recovered_post.subgraphs);
        prop_assert_eq!(
            normalized(&fault_free_post.traffic),
            normalized(&recovered_post.traffic)
        );

        // Incremental sessions: the chaotic session takes the faults mid-apply and must
        // still track the clean session bit for bit.
        let mut clean = IncrementalDistributed::new(&q, data.clone(), config)
            .expect("valid distributed config");
        let mut chaotic = IncrementalDistributed::new(&q, data.clone(), config)
            .expect("valid distributed config");
        clean.apply(&delta).expect("delta validates");
        chaotic.apply_with_faults(&delta, &plan).expect("recoverable plan completes");
        prop_assert!(chaotic.output().lost_centers.is_empty());
        prop_assert_eq!(&clean.output().subgraphs, &chaotic.output().subgraphs);
        prop_assert_eq!(
            normalized(&clean.output().traffic),
            normalized(&chaotic.output().traffic)
        );
    }

    /// Unrecoverable schedules degrade with exact arithmetic: coverage sums to `|V|`,
    /// and the survivors are exactly the fault-free rows minus the lost centers.
    #[test]
    fn unrecoverable_schedules_degrade_with_exact_coverage(
        data in data_graph_sized(48, 4),
        q in pattern(),
        sites in 1usize..5,
        fault_seed in any::<u64>(),
        dual_filter in any::<bool>(),
    ) {
        install_quiet_hook();
        let sites = sites.min(data.node_count());
        let policy = RecoveryPolicy::default();
        let plan = FaultPlan::seeded_unrecoverable(fault_seed, sites, &policy);
        let config = supervised_config(sites, policy, dual_filter);

        let fault_free = distributed_strong_simulation(&q, &data, &config)
            .expect("valid distributed config");
        let degraded = distributed_with_faults(&q, &data, &config, &plan)
            .expect("degradation is allowed");

        let n = data.node_count();
        prop_assert!(
            degraded.traffic.covered_balls + degraded.traffic.lost_balls == n,
            "coverage arithmetic broke"
        );
        prop_assert_eq!(degraded.traffic.lost_balls, degraded.lost_centers.len());
        // Loss pressure is guaranteed whenever any ball was actually evaluated (the
        // dual filter may skip everything, in which case there is nothing to lose).
        let evaluated: usize = fault_free.traffic.balls_per_site.iter().sum();
        if evaluated > 0 {
            prop_assert!(
                degraded.traffic.lost_balls > 0,
                "an unrecoverable plan over {evaluated} evaluated balls lost nothing"
            );
        } else {
            prop_assert_eq!(degraded.traffic.lost_balls, 0);
        }
        // Sharper than subset: survivors are exactly the fault-free rows minus the
        // lost centers.
        let lost: std::collections::BTreeSet<NodeId> =
            degraded.lost_centers.iter().copied().collect();
        let expected: Vec<_> = fault_free
            .subgraphs
            .iter()
            .filter(|s| !lost.contains(&s.center))
            .cloned()
            .collect();
        prop_assert_eq!(&degraded.subgraphs, &expected);

        // The same schedule under a fail-fast policy is a typed error, not a panic.
        if degraded.traffic.lost_balls > 0 {
            let strict = supervised_config(
                sites,
                RecoveryPolicy { allow_degraded: false, ..policy },
                dual_filter,
            );
            let err = distributed_with_faults(&q, &data, &strict, &plan);
            prop_assert!(
                matches!(err, Err(DistError::CoverageLost { .. })),
                "fail-fast policy returned {err:?}"
            );
        }
    }

    /// Replay determinism: the same plan against the same input reproduces the output
    /// *and the recovery trace* bit for bit — only steal timing may differ.
    #[test]
    fn fault_schedules_replay_bit_identically(
        data in data_graph_sized(48, 4),
        q in pattern(),
        sites in 1usize..5,
        fault_seed in any::<u64>(),
    ) {
        install_quiet_hook();
        let sites = sites.min(data.node_count());
        let policy = RecoveryPolicy::default();
        let plan = if fault_seed.is_multiple_of(2) {
            FaultPlan::seeded_recoverable(fault_seed, sites, &policy)
        } else {
            FaultPlan::seeded_unrecoverable(fault_seed, sites, &policy)
        };
        let config = supervised_config(sites, policy, false);
        let a = distributed_with_faults(&q, &data, &config, &plan)
            .expect("degradation is allowed");
        let b = distributed_with_faults(&q, &data, &config, &plan)
            .expect("degradation is allowed");
        prop_assert_eq!(&a.subgraphs, &b.subgraphs);
        prop_assert_eq!(&a.lost_centers, &b.lost_centers);
        let mut ta = a.traffic.clone();
        let mut tb = b.traffic.clone();
        ta.chunks_stolen = 0;
        tb.chunks_stolen = 0;
        // Note: `recovery` stays in the comparison — the supervision trace itself must
        // replay deterministically.
        prop_assert_eq!(ta, tb);
    }

    /// The catch-all wrapper of the acceptance criteria: no public entry point unwinds
    /// on a scripted fault, under any plan, with or without a recovery policy.
    #[test]
    fn public_entry_points_never_panic_on_scripted_faults(
        data in data_graph_sized(48, 4),
        q in pattern(),
        sites in 1usize..5,
        fault_seed in any::<u64>(),
        picks in proptest::collection::vec(any::<u64>(), 1..4),
    ) {
        install_quiet_hook();
        let sites = sites.min(data.node_count());
        let policy = RecoveryPolicy::default();
        let plans = [
            FaultPlan::seeded_recoverable(fault_seed, sites, &policy),
            FaultPlan::seeded_unrecoverable(fault_seed, sites, &policy),
        ];
        let supervised = supervised_config(sites, policy, false);
        let unsupervised = DistributedConfig { recovery: None, ..supervised };
        let delta = random_delta(&data, &picks);
        for plan in &plans {
            // One-shot, with supervision: completes or degrades, never unwinds.
            let run = catch_unwind(AssertUnwindSafe(|| {
                distributed_with_faults(&q, &data, &supervised, plan).map(|_| ())
            }));
            prop_assert!(run.is_ok(), "supervised entry point panicked");
            // Without a recovery policy a non-empty plan is a typed error, not a panic.
            let gated = catch_unwind(AssertUnwindSafe(|| {
                distributed_with_faults(&q, &data, &unsupervised, plan)
            }));
            match gated {
                Ok(result) => {
                    if !plan.is_empty() {
                        prop_assert_eq!(
                            result.err(),
                            Some(DistError::FaultPlanNeedsRecovery)
                        );
                    }
                }
                Err(_) => prop_assert!(false, "ungated entry point panicked"),
            }
            // Incremental session taking the faults mid-apply.
            let session = catch_unwind(AssertUnwindSafe(|| {
                let mut inc = IncrementalDistributed::new(&q, data.clone(), supervised)?;
                inc.apply_with_faults(&delta, plan).map(|_| ())
            }));
            prop_assert!(session.is_ok(), "incremental session panicked");
        }
    }
}

/// Deterministic spot checks of the typed-error surface through public entry points —
/// the cheap half of the no-panic criterion.
#[test]
fn config_errors_are_typed_not_panics() {
    install_quiet_hook();
    let data = ssim_graph::Graph::from_edges(
        vec![
            ssim_graph::Label(0),
            ssim_graph::Label(1),
            ssim_graph::Label(0),
        ],
        &[(0, 1), (1, 2)],
    )
    .unwrap();
    let q = ssim_graph::Pattern::from_edges(
        vec![ssim_graph::Label(0), ssim_graph::Label(1)],
        &[(0, 1)],
    )
    .unwrap();
    let checks: Vec<(DistributedConfig, DistError)> = vec![
        (
            DistributedConfig {
                sites: 0,
                ..DistributedConfig::default()
            },
            DistError::NoSites,
        ),
        (
            DistributedConfig {
                sites: 99,
                ..DistributedConfig::default()
            },
            DistError::MoreSitesThanNodes {
                sites: 99,
                nodes: 3,
            },
        ),
        (
            DistributedConfig {
                sites: 2,
                recovery: Some(RecoveryPolicy {
                    chunk_retries: 0,
                    allow_degraded: false,
                    ..RecoveryPolicy::default()
                }),
                ..DistributedConfig::default()
            },
            DistError::UselessRecoveryPolicy,
        ),
        (
            DistributedConfig {
                sites: 2,
                recovery: Some(RecoveryPolicy {
                    chunk_timeout_ticks: 0,
                    ..RecoveryPolicy::default()
                }),
                ..DistributedConfig::default()
            },
            DistError::ZeroChunkTimeout,
        ),
    ];
    for (config, expected) in checks {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            distributed_strong_simulation(&q, &data, &config)
        }));
        let result = caught.expect("validation must not panic");
        assert_eq!(result.unwrap_err(), expected);
        let session = catch_unwind(AssertUnwindSafe(|| {
            IncrementalDistributed::new(&q, data.clone(), config).map(|_| ())
        }));
        let result = session.expect("session construction must not panic");
        assert_eq!(result.unwrap_err(), expected);
    }
}

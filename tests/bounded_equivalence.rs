//! Differential coverage for bounded simulation ([`ssim_core::bounded`]).
//!
//! The engine's `bounded_simulation` evaluates the child condition with a per-query BFS
//! that stops at the first admissible witness. The oracle here is deliberately dumber:
//! it *enumerates* directed walks outward from each candidate, one length at a time, up
//! to the edge's bound (or `n` steps for `Unbounded` — a shortest directed path never
//! needs more), and re-scans every pair from scratch until nothing changes. Both
//! compute the maximum bounded-simulation relation, so on every small graph the
//! relations must agree pair for pair — and where every bound is `Hops(1)`, both must
//! collapse to plain graph simulation.

mod common;

use proptest::prelude::*;
use ssim_core::bounded::{bounded_simulation, Bound, BoundedPattern};
use ssim_core::graph_simulation;
use ssim_core::relation::MatchRelation;
use ssim_graph::{Graph, Label, NodeId};

/// Naive bounded-path-enumeration oracle: the maximum relation via while-changed
/// rescans, with walk enumeration instead of BFS for the reachability test.
fn oracle_bounded_simulation(pattern: &BoundedPattern, data: &Graph) -> Option<MatchRelation> {
    let mut relation = MatchRelation::empty(pattern.node_count(), data.node_count());
    for u in pattern.nodes() {
        for &v in data.nodes_with_label(pattern.label(u)) {
            relation.insert(u, v);
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for &(u, u_child, bound) in pattern.edges() {
            let doomed: Vec<NodeId> = relation
                .candidates(u)
                .iter()
                .map(NodeId::from_index)
                .filter(|&v| !walk_hits_candidate(data, v, bound, &relation, u_child))
                .collect();
            for v in doomed {
                relation.remove(u, v);
                changed = true;
            }
        }
    }
    relation.is_total().then_some(relation)
}

/// Enumerates the frontier of directed walks from `v`, one step at a time, and reports
/// whether any admissible length reaches a candidate of `target`. A shortest directed
/// path has at most `n - 1` edges, so `n` steps saturate `Unbounded`.
fn walk_hits_candidate(
    data: &Graph,
    v: NodeId,
    bound: Bound,
    relation: &MatchRelation,
    target: NodeId,
) -> bool {
    let limit = match bound {
        Bound::Hops(k) => k.min(data.node_count() as u32),
        Bound::Unbounded => data.node_count() as u32,
    };
    let mut frontier = vec![false; data.node_count()];
    frontier[v.index()] = true;
    for step in 1..=limit {
        let mut next = vec![false; data.node_count()];
        for x in (0..data.node_count()).filter(|&x| frontier[x]) {
            for y in data.out_neighbors(NodeId::from_index(x)) {
                next[y.index()] = true;
            }
        }
        if bound.admits(step)
            && next
                .iter()
                .enumerate()
                .any(|(y, &hit)| hit && relation.contains(target, NodeId::from_index(y)))
        {
            return true;
        }
        if next.iter().all(|&hit| !hit) {
            return false;
        }
        frontier = next;
    }
    false
}

/// Strategy: a random bounded pattern — 2..5 nodes over a 4-symbol alphabet, each edge
/// carrying `Hops(1..=3)` or `Unbounded`.
fn bounded_pattern() -> impl Strategy<Value = BoundedPattern> {
    (2usize..5).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u32..4, n);
        let edges =
            proptest::collection::vec((0u32..n as u32, 0u32..n as u32, 0u32..4), 0..(2 * n));
        (labels, edges).prop_map(|(labels, edges)| {
            BoundedPattern::new(
                labels.into_iter().map(Label).collect(),
                edges
                    .into_iter()
                    .map(|(s, t, b)| {
                        let bound = if b == 0 {
                            Bound::Unbounded
                        } else {
                            Bound::Hops(b)
                        };
                        (NodeId(s), NodeId(t), bound)
                    })
                    .collect(),
            )
        })
    })
}

fn sorted_pairs(relation: &Option<MatchRelation>) -> Option<Vec<(u32, u32)>> {
    relation.as_ref().map(MatchRelation::to_sorted_pairs)
}

proptest! {
    /// The headline property: BFS-based engine and walk-enumeration oracle compute the
    /// same maximum bounded-simulation relation on every small graph.
    #[test]
    fn engine_agrees_with_walk_enumeration_oracle(
        data in common::data_graph(),
        q in bounded_pattern(),
    ) {
        let engine = bounded_simulation(&q, &data);
        let oracle = oracle_bounded_simulation(&q, &data);
        prop_assert_eq!(sorted_pairs(&engine), sorted_pairs(&oracle));
    }

    /// With every bound at `Hops(1)`, bounded simulation *is* graph simulation — for
    /// both implementations.
    #[test]
    fn hop_one_collapses_to_graph_simulation(
        data in common::data_graph(),
        q in common::pattern(),
    ) {
        let bounded = BoundedPattern::from_pattern(&q);
        let plain = graph_simulation(&q, &data);
        prop_assert_eq!(
            sorted_pairs(&bounded_simulation(&bounded, &data)),
            sorted_pairs(&plain)
        );
        prop_assert_eq!(
            sorted_pairs(&oracle_bounded_simulation(&bounded, &data)),
            sorted_pairs(&plain)
        );
    }

    /// Relaxing a bound never shrinks the relation: every pair admitted under
    /// `Hops(k)` survives under `Hops(k + 1)` and under `Unbounded`.
    #[test]
    fn looser_bounds_are_monotone(
        data in common::data_graph(),
        q in bounded_pattern(),
    ) {
        let relax = |q: &BoundedPattern, f: &dyn Fn(Bound) -> Bound| {
            BoundedPattern::new(
                q.nodes().map(|u| q.label(u)).collect(),
                q.edges().iter().map(|&(s, t, b)| (s, t, f(b))).collect(),
            )
        };
        let tight = bounded_simulation(&q, &data);
        for looser in [
            relax(&q, &|b| match b {
                Bound::Hops(k) => Bound::Hops(k + 1),
                Bound::Unbounded => Bound::Unbounded,
            }),
            relax(&q, &|_| Bound::Unbounded),
        ] {
            let wide = bounded_simulation(&looser, &data);
            if let Some(tight) = &tight {
                let wide = wide.as_ref();
                prop_assert!(wide.is_some(), "loosening bounds lost the match");
                for (u, v) in tight.to_sorted_pairs() {
                    prop_assert!(
                        wide.unwrap().contains(NodeId(u), NodeId(v)),
                        "pair ({u}, {v}) lost under a looser bound"
                    );
                }
            }
        }
    }
}

/// The oracle's walk semantics and the engine's shortest-distance semantics only agree
/// because a walk of admitted length exists iff the *distance* is admitted for interval
/// bounds `[1, k]`; this pins the subtle case — a 2-cycle realising odd *and* even walk
/// lengths — on both implementations.
#[test]
fn two_cycle_realises_every_positive_length() {
    let data = Graph::from_edges(vec![Label(0), Label(1)], &[(0, 1), (1, 0)]).unwrap();
    for k in 1..5 {
        let q = BoundedPattern::new(
            vec![Label(0), Label(1)],
            vec![(NodeId(0), NodeId(1), Bound::Hops(k))],
        );
        let engine = bounded_simulation(&q, &data).expect("cycle always admits");
        let oracle = oracle_bounded_simulation(&q, &data).expect("cycle always admits");
        assert_eq!(
            engine.to_sorted_pairs(),
            oracle.to_sorted_pairs(),
            "k = {k}"
        );
    }
}

/// Cascaded removals: a dead-end intermediate must drag down its only upstream
/// candidate, identically in both implementations.
#[test]
fn cascade_agrees_on_dead_end_branch() {
    let q = BoundedPattern::new(
        vec![Label(0), Label(1), Label(2)],
        vec![
            (NodeId(0), NodeId(1), Bound::Hops(2)),
            (NodeId(1), NodeId(2), Bound::Unbounded),
        ],
    );
    // A0 -> x -> B2 -> ... -> C4 ; A5 -> B6 (B6 reaches no C).
    let data = Graph::from_edges(
        vec![
            Label(0),
            Label(9),
            Label(1),
            Label(9),
            Label(2),
            Label(0),
            Label(1),
        ],
        &[(0, 1), (1, 2), (2, 3), (3, 4), (5, 6)],
    )
    .unwrap();
    let engine = bounded_simulation(&q, &data).expect("main branch matches");
    let oracle = oracle_bounded_simulation(&q, &data).expect("main branch matches");
    assert_eq!(engine.to_sorted_pairs(), oracle.to_sorted_pairs());
    assert!(!engine.contains(NodeId(0), NodeId(5)));
    assert!(!engine.contains(NodeId(1), NodeId(6)));
}

//! Property-based tests of the paper's theorems and propositions on random workloads.
//!
//! Random data graphs are generated from arbitrary edge lists over a small label alphabet;
//! random connected patterns come from the dataset generators. The properties checked are
//! the formal results of Section 3 plus the correctness statements behind the Section 4.2
//! optimisations.

mod common;

use common::{data_graph, pattern};
use proptest::prelude::*;
use ssim_core::dual::{dual_simulation, is_valid_dual_simulation};
use ssim_core::match_graph::MatchGraph;
use ssim_core::minimize::minimize_pattern;
use ssim_core::simulation::{graph_simulation, is_valid_simulation};
use ssim_core::strong::{strong_simulation, MatchConfig};
use ssim_core::topology::undirected_cycle_guarantee_applies;
use ssim_core::topology::TopologyReport;
use ssim_core::RepetitionSemantics;
use ssim_experiments::workloads::{experiment_pattern, DatasetKind};
use ssim_graph::{metrics, Graph, GraphView, Label, NodeId, Pattern};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The computed simulation / dual-simulation relations are valid witnesses and dual is
    /// contained in plain simulation.
    #[test]
    fn computed_relations_are_valid_witnesses(data in data_graph(), q in pattern()) {
        if let Some(sim) = graph_simulation(&q, &data) {
            prop_assert!(is_valid_simulation(&q, &data, &sim));
            if let Some(dual) = dual_simulation(&q, &data) {
                prop_assert!(is_valid_dual_simulation(&q, &data, &dual));
                prop_assert!(dual.is_subrelation_of(&sim));
            }
        } else {
            // No simulation match implies no dual-simulation match (Proposition 1).
            prop_assert!(dual_simulation(&q, &data).is_none());
        }
    }

    /// Propositions 3 and 4 plus Theorem 2: perfect subgraphs are connected, at most |V| of
    /// them exist, and each has diameter at most 2·dQ; moreover every Table 2 criterion
    /// holds for the strong-simulation output.
    #[test]
    fn strong_simulation_output_satisfies_the_topology_criteria(
        data in data_graph(),
        q in pattern(),
    ) {
        let output = strong_simulation(&q, &data, &MatchConfig::basic());
        prop_assert!(output.subgraphs.len() <= data.node_count());
        for s in &output.subgraphs {
            prop_assert!(metrics::induced_diameter(&data, &s.nodes) <= 2 * q.diameter());
            prop_assert!(!s.nodes.is_empty());
            // The relation stored with the subgraph only mentions nodes of the subgraph.
            for (_, v) in &s.relation {
                prop_assert!(s.nodes.contains(v));
            }
        }
        let report = TopologyReport::evaluate(&q, &data, &output);
        prop_assert!(report.all_preserved(), "report: {report:?}");
    }

    /// Strong-simulation matched nodes are contained in the dual-simulation matched nodes,
    /// which are contained in the simulation matched nodes (Proposition 1 at node level).
    #[test]
    fn matched_node_hierarchy(data in data_graph(), q in pattern()) {
        let strong = strong_simulation(&q, &data, &MatchConfig::basic());
        let dual_nodes: std::collections::BTreeSet<NodeId> = dual_simulation(&q, &data)
            .map(|r| r.matched_data_nodes().iter().map(NodeId::from_index).collect())
            .unwrap_or_default();
        let sim_nodes: std::collections::BTreeSet<NodeId> = graph_simulation(&q, &data)
            .map(|r| r.matched_data_nodes().iter().map(NodeId::from_index).collect())
            .unwrap_or_default();
        for v in strong.matched_nodes() {
            prop_assert!(dual_nodes.contains(&v));
        }
        for v in &dual_nodes {
            prop_assert!(sim_nodes.contains(v));
        }
    }

    /// Lemma 2: the minimised pattern produces the same dual-simulation match graph on any
    /// data graph, and minimization never grows the pattern.
    #[test]
    fn query_minimization_preserves_match_graphs(data in data_graph(), q in pattern()) {
        let minimized = minimize_pattern(&q);
        prop_assert!(minimized.pattern.size() <= q.size());
        let view = GraphView::full(&data);
        let original = dual_simulation(&q, &data);
        let reduced = dual_simulation(&minimized.pattern, &data);
        match (original, reduced) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                let mg_a = MatchGraph::build(&q, &view, &a);
                let mg_b = MatchGraph::build(&minimized.pattern, &view, &b);
                prop_assert_eq!(mg_a, mg_b);
            }
            (a, b) => {
                prop_assert!(false, "minimization changed matchability: {:?} vs {:?}", a.is_some(), b.is_some());
            }
        }
    }

    /// Minimization is idempotent: minimising a minimised pattern changes nothing.
    #[test]
    fn query_minimization_is_idempotent(q in pattern()) {
        let once = minimize_pattern(&q);
        let twice = minimize_pattern(&once.pattern);
        prop_assert_eq!(once.pattern.node_count(), twice.pattern.node_count());
        prop_assert_eq!(once.pattern.edge_count(), twice.pattern.edge_count());
    }

    /// Every `Match+` output over the standard workload generators (amazon-like,
    /// youtube-like, synthetic) preserves all Table 2 topology criteria — the paper's
    /// headline claim, checked on the realistic generators rather than arbitrary edge
    /// lists, with the full optimisation stack (and deduplication) enabled.
    #[test]
    fn match_plus_preserves_topology_on_workload_generators(
        seed in any::<u64>(),
        nodes in 30usize..80,
        kind in 0usize..3,
        pattern_nodes in 3usize..6,
    ) {
        let kind = DatasetKind::all()[kind];
        let data = kind.generate(nodes, seed);
        let q = experiment_pattern(&data, pattern_nodes, seed ^ 0x9e3779b97f4a7c15);
        let output = strong_simulation(&q, &data, &MatchConfig::optimized().with_deduplication());
        let report = TopologyReport::evaluate(&q, &data, &output);
        prop_assert!(
            report.all_preserved(),
            "{} |V|={} seed={}: {report:?}",
            kind.name(),
            nodes,
            seed
        );
        // The stats invariants hold on realistic workloads too.
        prop_assert_eq!(
            output.stats.balls_built + output.stats.balls_reused,
            output.stats.balls_processed
        );
    }

    /// Where Theorem 3's guarantee applies — the pattern has a directed cycle or a
    /// label-distinct undirected cycle — every perfect subgraph must carry an
    /// undirected cycle. The complement (undirected-only cycles with repeated labels)
    /// is exactly the fold case pinned by `case_301_repeated_label_cycle_folds`.
    #[test]
    fn guaranteed_cycles_always_appear_in_subgraphs(data in data_graph(), q in pattern()) {
        if undirected_cycle_guarantee_applies(&q, RepetitionSemantics::Free) {
            let output = strong_simulation(&q, &data, &MatchConfig::basic());
            for s in &output.subgraphs {
                let (sub, _) = data.subgraph_with_edges(&s.nodes, &s.edges);
                prop_assert!(
                    ssim_graph::cycles::has_undirected_cycle(&sub),
                    "guaranteed cycle missing from subgraph centred at {}",
                    s.center
                );
            }
        }
    }

    /// The positive counterpart closed by the sixth oracle axis: under
    /// `RepetitionSemantics::Distinct` the undirected-cycle guarantee extends to *every*
    /// cyclic pattern — repeated labels included — because the repetition closure only
    /// keeps pairs with a class-injective homomorphism witness. Runs where the closure
    /// bailed on its budget fall back to `Free` per contract and are excluded.
    #[test]
    fn distinct_semantics_pins_repeated_label_cycles(data in data_graph(), q in pattern()) {
        if undirected_cycle_guarantee_applies(&q, RepetitionSemantics::Distinct) {
            let config = MatchConfig::basic().with_repetition(RepetitionSemantics::Distinct);
            let output = strong_simulation(&q, &data, &config);
            if output.stats.repetition_bailed_balls == 0 {
                for s in &output.subgraphs {
                    let (sub, _) = data.subgraph_with_edges(&s.nodes, &s.edges);
                    prop_assert!(
                        ssim_graph::cycles::has_undirected_cycle(&sub),
                        "Distinct-guaranteed cycle missing from subgraph centred at {}",
                        s.center
                    );
                }
            }
        }
    }

    /// Self-matching: every connected pattern strongly simulates itself, and the identity
    /// pairs appear in its dual-simulation relation with itself.
    #[test]
    fn patterns_match_themselves(q in pattern()) {
        let data = q.graph().clone();
        let dual = dual_simulation(&q, &data).expect("a pattern dual-simulates itself");
        for u in q.nodes() {
            prop_assert!(dual.contains(u, u));
        }
        let strong = strong_simulation(&q, &data, &MatchConfig::basic());
        prop_assert!(strong.is_match());
    }
}

/// Named regression for generator case 301 of
/// `strong_simulation_output_satisfies_the_topology_criteria` (the pre-existing nightly
/// failure at `PROPTEST_CASES ≥ 302`): a pattern whose only undirected cycle repeats a
/// label (`u0` and `u4` both carry label 0 on the cycle `u0–u1–u4–u2`), matched by data
/// where the cycle folds — both map to data node 3 — so the perfect subgraph is a star,
/// not a cycle. This is a genuine boundary of Theorem 3, not an engine bug: dual
/// simulation only guarantees undirected-cycle preservation for patterns with a directed
/// cycle or a label-distinct undirected cycle, and the criterion now claims exactly that.
#[test]
fn case_301_repeated_label_cycle_folds() {
    let data = Graph::from_edges(
        [
            0u32, 0, 1, 0, 3, 1, 0, 2, 2, 0, 3, 0, 3, 2, 3, 0, 0, 0, 2, 2, 3, 3,
        ]
        .into_iter()
        .map(Label)
        .collect(),
        &[
            (0, 1),
            (0, 13),
            (0, 19),
            (3, 5),
            (3, 19),
            (4, 8),
            (4, 11),
            (5, 0),
            (5, 3),
            (5, 19),
            (6, 2),
            (6, 21),
            (7, 16),
            (8, 15),
            (9, 16),
            (10, 1),
            (10, 3),
            (10, 5),
            (10, 7),
            (10, 12),
            (10, 18),
            (11, 5),
            (12, 10),
            (12, 11),
            (13, 1),
            (14, 5),
            (15, 8),
            (15, 11),
            (15, 14),
            (15, 15),
            (15, 19),
            (16, 19),
            (18, 8),
            (19, 10),
            (20, 15),
            (21, 13),
        ],
    )
    .unwrap();
    let q = Pattern::from_edges(
        vec![Label(0), Label(1), Label(3), Label(2), Label(0)],
        &[(0, 1), (0, 3), (2, 0), (2, 4), (4, 1)],
    )
    .unwrap();
    // The pattern's one undirected cycle (u0-u1-u4-u2) repeats label 0 on u0/u4 and the
    // pattern has no directed cycle: Theorem 3's guarantee does not apply.
    assert!(ssim_graph::cycles::has_undirected_cycle(q.graph()));
    assert!(!ssim_graph::cycles::has_directed_cycle(q.graph()));
    assert!(!undirected_cycle_guarantee_applies(
        &q,
        RepetitionSemantics::Free
    ));
    // The fold is real: the engine finds subgraphs whose relation maps both u0 and u4
    // to data node 3, and the subgraphs are trees (star around node 3, no cycle).
    let output = strong_simulation(&q, &data, &MatchConfig::basic());
    assert!(output.is_match());
    for s in &output.subgraphs {
        assert!(s.relation.contains(&(NodeId(0), NodeId(3))));
        assert!(s.relation.contains(&(NodeId(4), NodeId(3))));
        let (sub, _) = data.subgraph_with_edges(&s.nodes, &s.edges);
        assert!(
            !ssim_graph::cycles::has_undirected_cycle(&sub),
            "case 301's perfect subgraphs are cycle-free by construction"
        );
    }
    // The tightened criterion accepts the fold: every Table 2 column holds.
    let report = TopologyReport::evaluate(&q, &data, &output);
    assert!(report.undirected_cycles, "fold must not trip the criterion");
    assert!(report.all_preserved(), "{report:?}");
}

/// The case-301 boundary, closed: on data holding both a *foldable* star realisation of
/// the repeated-label cycle and a *genuine* (node-distinct) one, `Free` still folds —
/// the star component matches with a cycle-free subgraph — while
/// `RepetitionSemantics::Distinct` discards the fold and keeps exactly the matches that
/// realise the cycle with distinct data nodes, reinstating the Theorem 3 guarantee the
/// `Free` semantics provably loses.
#[test]
fn case_301_repeated_label_cycle_preserved_under_distinct() {
    // The case-301 pattern shape: one undirected cycle u0-u1-u4-u2 with l(u0) = l(u4),
    // no directed cycle.
    let q = Pattern::from_edges(
        vec![Label(0), Label(1), Label(3), Label(2), Label(0)],
        &[(0, 1), (0, 3), (2, 0), (2, 4), (4, 1)],
    )
    .unwrap();
    assert!(undirected_cycle_guarantee_applies(
        &q,
        RepetitionSemantics::Distinct
    ));
    // Component A (nodes 0-3): the minimal fold — both label-0 pattern nodes land on
    // data node 0, so the matched star has no cycle. Component B (nodes 4-8): a
    // node-distinct copy of the pattern itself, whose cycle survives injectively.
    let data = Graph::from_edges(
        vec![
            Label(0), // 0: the fold target (u0 and u4 both map here under Free)
            Label(1), // 1
            Label(3), // 2
            Label(2), // 3
            Label(0), // 4: genuine u0
            Label(1), // 5: genuine u1
            Label(3), // 6: genuine u2
            Label(2), // 7: genuine u3
            Label(0), // 8: genuine u4
        ],
        &[
            // fold component: x2 -> x0 -> {x1, x3}
            (2, 0),
            (0, 1),
            (0, 3),
            // genuine component: the pattern's own edge set shifted by 4
            (4, 5),
            (4, 7),
            (6, 4),
            (6, 8),
            (8, 5),
        ],
    )
    .unwrap();

    // Under Free both components match, and the fold component's subgraph is cycle-free
    // — the boundary as documented since PR 5.
    let free = strong_simulation(&q, &data, &MatchConfig::basic());
    assert!(free.is_match());
    let folded: Vec<_> = free
        .subgraphs
        .iter()
        .filter(|s| s.nodes.contains(&NodeId(0)))
        .collect();
    assert!(
        !folded.is_empty(),
        "the fold component must match under Free"
    );
    for s in &folded {
        assert!(s.relation.contains(&(NodeId(0), NodeId(0))));
        assert!(s.relation.contains(&(NodeId(4), NodeId(0))));
        let (sub, _) = data.subgraph_with_edges(&s.nodes, &s.edges);
        assert!(!ssim_graph::cycles::has_undirected_cycle(&sub));
    }

    // Under Distinct the fold is rejected — no subgraph touches the star component —
    // and every surviving match realises the cycle with distinct data nodes.
    let distinct = strong_simulation(
        &q,
        &data,
        &MatchConfig::basic().with_repetition(RepetitionSemantics::Distinct),
    );
    assert_eq!(distinct.stats.repetition_bailed_balls, 0);
    assert!(distinct.is_match(), "the genuine cycle must still match");
    for s in &distinct.subgraphs {
        assert!(
            !s.nodes.contains(&NodeId(0)),
            "Distinct must discard the folded star"
        );
        // u0 and u4 are realised by distinct data nodes in every surviving relation.
        let u0: Vec<_> = s.relation.iter().filter(|(u, _)| *u == NodeId(0)).collect();
        let u4: Vec<_> = s.relation.iter().filter(|(u, _)| *u == NodeId(4)).collect();
        assert!(!u0.is_empty() && !u4.is_empty());
        for (_, v0) in &u0 {
            for (_, v4) in &u4 {
                assert_ne!(v0, v4, "equal-label class folded under Distinct");
            }
        }
        let (sub, _) = data.subgraph_with_edges(&s.nodes, &s.edges);
        assert!(
            ssim_graph::cycles::has_undirected_cycle(&sub),
            "Distinct subgraph centred at {} lost the cycle",
            s.center
        );
    }
    // The semantics-aware Table 2 report accepts the Distinct output in full.
    let report =
        TopologyReport::evaluate_under(&q, &data, &distinct, RepetitionSemantics::Distinct);
    assert!(report.all_preserved(), "{report:?}");
}

//! Property-based tests of the paper's theorems and propositions on random workloads.
//!
//! Random data graphs are generated from arbitrary edge lists over a small label alphabet;
//! random connected patterns come from the dataset generators. The properties checked are
//! the formal results of Section 3 plus the correctness statements behind the Section 4.2
//! optimisations.

use proptest::prelude::*;
use ssim_core::dual::{dual_simulation, is_valid_dual_simulation};
use ssim_core::match_graph::MatchGraph;
use ssim_core::minimize::minimize_pattern;
use ssim_core::simulation::{graph_simulation, is_valid_simulation};
use ssim_core::strong::{strong_simulation, MatchConfig};
use ssim_core::topology::TopologyReport;
use ssim_datasets::patterns::{random_pattern, PatternGenConfig};
use ssim_experiments::workloads::{experiment_pattern, DatasetKind};
use ssim_graph::{metrics, Graph, GraphView, Label, NodeId, Pattern};

/// Strategy: a random data graph with `n ∈ [3, 24]` nodes, up to `3n` random edges and
/// labels drawn from a 4-symbol alphabet.
fn data_graph() -> impl Strategy<Value = Graph> {
    (3usize..24).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u32..4, n);
        let edges = proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 0..(3 * n));
        (labels, edges).prop_map(|(labels, edges)| {
            Graph::from_edges(labels.into_iter().map(Label).collect(), &edges)
                .expect("endpoints are in range by construction")
        })
    })
}

/// Strategy: a random connected pattern with 2–5 nodes over the same 4-symbol alphabet.
fn pattern() -> impl Strategy<Value = Pattern> {
    (2usize..6, any::<u64>(), 1.05f64..1.4).prop_map(|(nodes, seed, alpha)| {
        random_pattern(&PatternGenConfig {
            nodes,
            alpha,
            labels: 4,
            seed,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The computed simulation / dual-simulation relations are valid witnesses and dual is
    /// contained in plain simulation.
    #[test]
    fn computed_relations_are_valid_witnesses(data in data_graph(), q in pattern()) {
        if let Some(sim) = graph_simulation(&q, &data) {
            prop_assert!(is_valid_simulation(&q, &data, &sim));
            if let Some(dual) = dual_simulation(&q, &data) {
                prop_assert!(is_valid_dual_simulation(&q, &data, &dual));
                prop_assert!(dual.is_subrelation_of(&sim));
            }
        } else {
            // No simulation match implies no dual-simulation match (Proposition 1).
            prop_assert!(dual_simulation(&q, &data).is_none());
        }
    }

    /// Propositions 3 and 4 plus Theorem 2: perfect subgraphs are connected, at most |V| of
    /// them exist, and each has diameter at most 2·dQ; moreover every Table 2 criterion
    /// holds for the strong-simulation output.
    #[test]
    fn strong_simulation_output_satisfies_the_topology_criteria(
        data in data_graph(),
        q in pattern(),
    ) {
        let output = strong_simulation(&q, &data, &MatchConfig::basic());
        prop_assert!(output.subgraphs.len() <= data.node_count());
        for s in &output.subgraphs {
            prop_assert!(metrics::induced_diameter(&data, &s.nodes) <= 2 * q.diameter());
            prop_assert!(!s.nodes.is_empty());
            // The relation stored with the subgraph only mentions nodes of the subgraph.
            for (_, v) in &s.relation {
                prop_assert!(s.nodes.contains(v));
            }
        }
        let report = TopologyReport::evaluate(&q, &data, &output);
        prop_assert!(report.all_preserved(), "report: {report:?}");
    }

    /// Strong-simulation matched nodes are contained in the dual-simulation matched nodes,
    /// which are contained in the simulation matched nodes (Proposition 1 at node level).
    #[test]
    fn matched_node_hierarchy(data in data_graph(), q in pattern()) {
        let strong = strong_simulation(&q, &data, &MatchConfig::basic());
        let dual_nodes: std::collections::BTreeSet<NodeId> = dual_simulation(&q, &data)
            .map(|r| r.matched_data_nodes().iter().map(NodeId::from_index).collect())
            .unwrap_or_default();
        let sim_nodes: std::collections::BTreeSet<NodeId> = graph_simulation(&q, &data)
            .map(|r| r.matched_data_nodes().iter().map(NodeId::from_index).collect())
            .unwrap_or_default();
        for v in strong.matched_nodes() {
            prop_assert!(dual_nodes.contains(&v));
        }
        for v in &dual_nodes {
            prop_assert!(sim_nodes.contains(v));
        }
    }

    /// Lemma 2: the minimised pattern produces the same dual-simulation match graph on any
    /// data graph, and minimization never grows the pattern.
    #[test]
    fn query_minimization_preserves_match_graphs(data in data_graph(), q in pattern()) {
        let minimized = minimize_pattern(&q);
        prop_assert!(minimized.pattern.size() <= q.size());
        let view = GraphView::full(&data);
        let original = dual_simulation(&q, &data);
        let reduced = dual_simulation(&minimized.pattern, &data);
        match (original, reduced) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                let mg_a = MatchGraph::build(&q, &view, &a);
                let mg_b = MatchGraph::build(&minimized.pattern, &view, &b);
                prop_assert_eq!(mg_a, mg_b);
            }
            (a, b) => {
                prop_assert!(false, "minimization changed matchability: {:?} vs {:?}", a.is_some(), b.is_some());
            }
        }
    }

    /// Minimization is idempotent: minimising a minimised pattern changes nothing.
    #[test]
    fn query_minimization_is_idempotent(q in pattern()) {
        let once = minimize_pattern(&q);
        let twice = minimize_pattern(&once.pattern);
        prop_assert_eq!(once.pattern.node_count(), twice.pattern.node_count());
        prop_assert_eq!(once.pattern.edge_count(), twice.pattern.edge_count());
    }

    /// Every `Match+` output over the standard workload generators (amazon-like,
    /// youtube-like, synthetic) preserves all Table 2 topology criteria — the paper's
    /// headline claim, checked on the realistic generators rather than arbitrary edge
    /// lists, with the full optimisation stack (and deduplication) enabled.
    #[test]
    fn match_plus_preserves_topology_on_workload_generators(
        seed in any::<u64>(),
        nodes in 30usize..80,
        kind in 0usize..3,
        pattern_nodes in 3usize..6,
    ) {
        let kind = DatasetKind::all()[kind];
        let data = kind.generate(nodes, seed);
        let q = experiment_pattern(&data, pattern_nodes, seed ^ 0x9e3779b97f4a7c15);
        let output = strong_simulation(&q, &data, &MatchConfig::optimized().with_deduplication());
        let report = TopologyReport::evaluate(&q, &data, &output);
        prop_assert!(
            report.all_preserved(),
            "{} |V|={} seed={}: {report:?}",
            kind.name(),
            nodes,
            seed
        );
        // The stats invariants hold on realistic workloads too.
        prop_assert_eq!(
            output.stats.balls_built + output.stats.balls_reused,
            output.stats.balls_processed
        );
    }

    /// Self-matching: every connected pattern strongly simulates itself, and the identity
    /// pairs appear in its dual-simulation relation with itself.
    #[test]
    fn patterns_match_themselves(q in pattern()) {
        let data = q.graph().clone();
        let dual = dual_simulation(&q, &data).expect("a pattern dual-simulates itself");
        for u in q.nodes() {
            prop_assert!(dual.contains(u, u));
        }
        let strong = strong_simulation(&q, &data, &MatchConfig::basic());
        prop_assert!(strong.is_match());
    }
}

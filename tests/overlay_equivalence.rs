//! Differential properties of the versioned graph substrate
//! ([`ssim_graph::overlay`]).
//!
//! The layered-CSR overlay is the serving path's graph: every delta lands as per-node
//! sorted patches over an immutable base CSR, compaction folds the patches back into a
//! flat base when they outgrow the policy, and [`VersionedGraph`] layers epoch-tagged
//! publication on top. All of it is only correct if the merged view is *bit-identical*
//! to a flat rebuilt [`Graph`] at every step. These properties pin that at three layers:
//!
//! * **substrate layer** — along random delta streams, the overlay's adjacency (both
//!   directions, sorted order included), labels, label index, degrees, `has_edge` and
//!   `to_graph()` materialisation equal a flat `Graph::apply_delta` chain, under every
//!   compaction policy and across explicit `compact()` calls (which must not move the
//!   epoch);
//! * **snapshot layer** — through `pin`/`stage`/`publish` cycles, pinned handles keep
//!   reading the version they pinned (even across a later compaction of the published
//!   overlay), staging never leaks into the published view, and publication advances
//!   the epoch by exactly the staged applies;
//! * **match layer** — an [`IncrementalMatcher`] session (whose state lives on the
//!   overlay) and its batched [`IncrementalMatcher::apply_batch`] entry stay
//!   bit-identical to the recompute oracle and a one-shot [`strong_simulation`] on the
//!   rebuilt flat graph, sequentially, in parallel and distributed. Compaction
//!   transparency for the matcher follows from the substrate layer: a compacted overlay
//!   is indistinguishable through every accessor the engine uses.
//!
//! Plus the regressions the patch-cancellation bookkeeping is prone to: a
//! tombstone-then-reinsert across a compaction boundary must not resurrect stale
//! patches, `GraphDelta::inverse` must round-trip the overlay back to zero mass, and
//! label-pin validation must reject mismatches against the *merged* state while leaving
//! the overlay (and its epoch) untouched.

mod common;

use common::{data_graph, random_delta};
use proptest::prelude::*;
use ssim_core::incremental::IncrementalMatcher;
use ssim_core::strong::{strong_simulation, MatchConfig};
use ssim_core::UpdatePlan;
use ssim_distributed::{DistributedConfig, IncrementalDistributed, PartitionStrategy};
use ssim_experiments::workloads::{experiment_pattern, DatasetKind};
use ssim_graph::{
    CompactionPolicy, Graph, GraphDelta, GraphError, Label, NodeId, OverlayGraph, VersionedGraph,
};

/// Asserts the overlay's merged view is bit-identical to `flat` through every accessor
/// the engine uses: counts, labels, sorted adjacency both ways, degrees, `has_edge`,
/// the label index and the `to_graph()` materialisation.
fn assert_overlay_matches_flat(
    overlay: &OverlayGraph,
    flat: &Graph,
    context: &str,
) -> Result<(), String> {
    prop_assert!(
        overlay.node_count() == flat.node_count(),
        "{context}: node counts"
    );
    prop_assert!(
        overlay.edge_count() == flat.edge_count(),
        "{context}: edge counts {} vs {}",
        overlay.edge_count(),
        flat.edge_count()
    );
    for v in flat.nodes() {
        prop_assert!(overlay.label(v) == flat.label(v), "{context}: label of {v}");
        prop_assert!(
            overlay.out_degree(v) == flat.out_degree(v),
            "{context}: out-degree of {v}"
        );
        prop_assert!(
            overlay.in_degree(v) == flat.in_degree(v),
            "{context}: in-degree of {v}"
        );
        let out: Vec<NodeId> = overlay.out_neighbors(v).collect();
        let want: Vec<NodeId> = flat.out_neighbors(v).collect();
        prop_assert!(out == want, "{context}: out-adjacency of {v}");
        let inn: Vec<NodeId> = overlay.in_neighbors(v).collect();
        let want: Vec<NodeId> = flat.in_neighbors(v).collect();
        prop_assert!(inn == want, "{context}: in-adjacency of {v}");
        for w in flat.nodes() {
            prop_assert!(
                overlay.has_edge(v, w) == flat.has_edge(v, w),
                "{context}: has_edge({v}, {w})"
            );
        }
    }
    for l in 0..4 {
        prop_assert!(
            overlay.nodes_with_label(Label(l)) == flat.nodes_with_label(Label(l)),
            "{context}: label index for {l}"
        );
    }
    prop_assert!(
        &overlay.to_graph() == flat,
        "{context}: to_graph() materialisation"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Substrate layer: along a random delta stream the overlay stays bit-identical to
    /// the flat `Graph::apply_delta` chain, under every compaction policy (never /
    /// default / eager) and across explicit mid-stream `compact()` calls, which must
    /// leave the epoch alone while every apply bumps it by one.
    #[test]
    fn overlay_equals_flat_rebuild_chain(
        data in data_graph(),
        stream in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 1..8), 1..6),
        policy in 0usize..3,
        compact_at in any::<u64>(),
    ) {
        let policy = [
            CompactionPolicy::never(),
            CompactionPolicy::default(),
            CompactionPolicy::eager(),
        ][policy];
        let mut overlay = OverlayGraph::with_policy(data.clone(), policy);
        let mut flat = data;
        assert_overlay_matches_flat(&overlay, &flat, "initial")?;
        prop_assert!(overlay.is_flat() && overlay.epoch().0 == 0);
        for (i, picks) in stream.iter().enumerate() {
            let delta = random_delta(&flat, picks);
            let epoch_before = overlay.epoch();
            overlay.apply_delta(&delta).expect("random_delta validates");
            flat = flat.apply_delta(&delta).expect("random_delta validates");
            prop_assert!(
                overlay.epoch() == epoch_before.next(),
                "step {i}: apply bumps the epoch exactly once"
            );
            assert_overlay_matches_flat(&overlay, &flat, &format!("step {i}"))?;
            if compact_at % (stream.len() as u64 + 1) == i as u64 {
                let epoch = overlay.epoch();
                let compactions = overlay.compactions();
                overlay.compact();
                prop_assert!(overlay.epoch() == epoch, "compact() must not move the epoch");
                prop_assert!(
                    overlay.is_flat()
                        && (overlay.compactions() == compactions
                            || overlay.compactions() == compactions + 1),
                    "compact() folds the patches and counts itself at most once"
                );
                assert_overlay_matches_flat(&overlay, &flat, &format!("step {i} compacted"))?;
            }
        }
    }

    /// Regression: `GraphDelta::inverse` round-trips the overlay — applying a delta and
    /// its inverse cancels every patch (zero overlay mass, flat again) and restores the
    /// original merged graph bit for bit.
    #[test]
    fn inverse_round_trips_to_zero_mass(
        data in data_graph(),
        picks in proptest::collection::vec(any::<u64>(), 1..10),
    ) {
        let mut overlay = OverlayGraph::with_policy(data.clone(), CompactionPolicy::never());
        let delta = random_delta(&data, &picks);
        overlay.apply_delta(&delta).expect("random_delta validates");
        prop_assert!(overlay.overlay_mass() == delta.op_count(), "mass tracks live ops");
        overlay.apply_delta(&delta.inverse()).expect("inverse validates against merged state");
        prop_assert!(
            overlay.overlay_mass() == 0 && overlay.is_flat(),
            "inverse cancels every patch, got mass {}",
            overlay.overlay_mass()
        );
        assert_overlay_matches_flat(&overlay, &data, "after round-trip")?;
    }

    /// Snapshot layer: through random pin/stage/publish cycles the pinned handles keep
    /// reading their version (even across a later compaction of the published overlay),
    /// staging never leaks into the published view, and publication advances the epoch
    /// by exactly the number of staged applies.
    #[test]
    fn epoch_pin_publish_cycles(
        data in data_graph(),
        cycles in proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec(any::<u64>(), 1..6), 1..3),
            1..4),
    ) {
        let mut versioned = VersionedGraph::new(data.clone());
        let mut flat = data;
        for (i, cycle) in cycles.iter().enumerate() {
            let pinned = versioned.pin();
            let pinned_flat = flat.clone();
            let epoch_before = versioned.epoch();
            prop_assert!(pinned.epoch() == epoch_before, "cycle {i}: pin sees published epoch");
            let mut staged_flat = flat.clone();
            for picks in cycle {
                let delta = random_delta(&staged_flat, picks);
                versioned.stage(&delta).expect("random_delta validates");
                staged_flat = staged_flat.apply_delta(&delta).expect("random_delta validates");
                // Readers are unaffected while the writer stages.
                prop_assert!(
                    versioned.epoch() == epoch_before,
                    "cycle {i}: staging must not move the published epoch"
                );
                assert_overlay_matches_flat(versioned.published(), &flat, "published during stage")?;
            }
            prop_assert!(versioned.has_staged(), "cycle {i}: applies left a staged version");
            let published = versioned.publish();
            prop_assert!(
                published.0 == epoch_before.0 + cycle.len() as u64,
                "cycle {i}: publish advances by the staged applies"
            );
            flat = staged_flat;
            assert_overlay_matches_flat(versioned.published(), &flat, "published after publish")?;
            // The handle pinned before the cycle still reads the old version, even if
            // the published overlay compacts underneath it.
            prop_assert!(pinned.epoch() == epoch_before, "cycle {i}: pin is immutable");
            assert_overlay_matches_flat(pinned.graph(), &pinned_flat, "pinned after publish")?;
        }
    }

    /// Match layer: an incremental session over the overlay substrate — fed per-delta
    /// and in batches — stays bit-identical to the recompute oracle and a one-shot
    /// matcher on the rebuilt flat graph, sequentially, in parallel and distributed.
    #[test]
    fn matcher_identity_over_overlay_streams(
        seed in any::<u64>(),
        nodes in 24usize..48,
        kind in 0usize..3,
        stream in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 1..6), 2..5),
    ) {
        let kind = DatasetKind::all()[kind];
        let data = kind.generate(nodes, seed);
        let q = experiment_pattern(&data, 3, seed ^ 0x9e3779b97f4a7c15);
        for (name, config) in [
            ("sequential", MatchConfig::basic().sequential()),
            ("parallel", MatchConfig::basic()),
            ("optimized", MatchConfig::optimized()),
        ] {
            let mut inc = IncrementalMatcher::new(
                &q, data.clone(), config.with_update_plan(UpdatePlan::Incremental));
            let mut batched = IncrementalMatcher::new(
                &q, data.clone(), config.with_update_plan(UpdatePlan::Incremental));
            let mut oracle = IncrementalMatcher::new(
                &q, data.clone(), config.with_update_plan(UpdatePlan::Recompute));
            let mut deltas = Vec::new();
            let mut flat = data.clone();
            for picks in &stream {
                let delta = random_delta(&flat, picks);
                flat = flat.apply_delta(&delta).expect("random_delta validates");
                inc.apply(&delta).expect("delta validates");
                oracle.apply(&delta).expect("delta validates");
                deltas.push(delta);
            }
            batched.apply_batch(&deltas).expect("batch validates");
            let oneshot = strong_simulation(&q, &flat, &config);
            prop_assert!(
                inc.output().subgraphs == oracle.output().subgraphs,
                "{name}: per-delta session diverged from the oracle"
            );
            prop_assert!(
                batched.output().subgraphs == oracle.output().subgraphs,
                "{name}: batched session diverged from the oracle"
            );
            prop_assert!(
                inc.output().subgraphs == oneshot.subgraphs,
                "{name}: session diverged from the one-shot matcher"
            );
            prop_assert!(inc.data() == flat, "{name}: overlay drifted from the flat chain");
            prop_assert!(batched.data() == flat, "{name}: batched overlay drifted");
        }
        // Distributed: the coordinator's state lives on the same overlay.
        let base = DistributedConfig {
            sites: 3,
            strategy: PartitionStrategy::Range,
            minimize_query: false,
            ..DistributedConfig::default()
        };
        let mut inc = IncrementalDistributed::new(&q, data.clone(), base)
            .expect("valid distributed config");
        let mut oracle = IncrementalDistributed::new(
            &q,
            data.clone(),
            DistributedConfig { update_plan: UpdatePlan::Recompute, ..base },
        )
        .expect("valid distributed config");
        let mut flat = data;
        for picks in &stream {
            let delta = random_delta(&flat, picks);
            flat = flat.apply_delta(&delta).expect("random_delta validates");
            inc.apply(&delta).expect("delta validates");
            oracle.apply(&delta).expect("delta validates");
            prop_assert!(
                inc.output().subgraphs == oracle.output().subgraphs,
                "distributed session diverged from the oracle"
            );
        }
        prop_assert!(inc.data() == flat, "distributed overlay drifted from the flat chain");
    }
}

/// Regression: a tombstone folded into the base by a compaction must stay dead — the
/// re-insert after the compaction is a fresh overlay insert against the new base, not a
/// resurrection of the stale patch, and the delete after *that* must cancel cleanly.
#[test]
fn tombstone_then_reinsert_across_compaction() {
    let data = Graph::from_edges(
        vec![Label(0), Label(1), Label(1), Label(2)],
        &[(0, 1), (0, 2), (1, 3), (2, 3)],
    )
    .unwrap();
    let (s, t) = (NodeId(0), NodeId(1));
    let mut overlay = OverlayGraph::with_policy(data.clone(), CompactionPolicy::never());
    let mut flat = data;

    // Tombstone the base edge, then fold the tombstone into the base.
    let mut del = GraphDelta::new();
    del.delete_edge(s, t);
    overlay.apply_delta(&del).unwrap();
    flat = flat.apply_delta(&del).unwrap();
    overlay.compact();
    assert!(overlay.is_flat() && !overlay.has_edge(s, t));
    assert_eq!(overlay.to_graph(), flat);

    // Re-insert across the compaction boundary: a fresh insert against the new base.
    let ins = del.inverse();
    overlay.apply_delta(&ins).unwrap();
    flat = flat.apply_delta(&ins).unwrap();
    assert!(
        overlay.has_edge(s, t),
        "reinsert after compaction must land"
    );
    assert_eq!(overlay.overlay_mass(), 1, "one live insert patch");
    assert_eq!(overlay.to_graph(), flat);

    // Compact again (insert folds in), then delete: a fresh tombstone, no stale state.
    overlay.compact();
    assert!(overlay.is_flat());
    overlay.apply_delta(&del).unwrap();
    flat = flat.apply_delta(&del).unwrap();
    assert!(!overlay.has_edge(s, t));
    assert_eq!(overlay.overlay_mass(), 1, "one live tombstone");
    assert_eq!(overlay.to_graph(), flat);
}

/// Regression: label-pin validation runs against the *merged* state and a rejected
/// delta leaves the overlay — including its epoch — untouched.
#[test]
fn label_pins_validate_against_the_merged_state() {
    let data = Graph::from_edges(
        vec![Label(0), Label(1), Label(1), Label(2)],
        &[(0, 1), (0, 2), (1, 3), (2, 3)],
    )
    .unwrap();
    let mut overlay = OverlayGraph::new(data.clone());

    // Wrong pin: rejected, overlay untouched.
    let mut wrong = GraphDelta::new();
    wrong.delete_edge_labeled(NodeId(0), NodeId(1), Label(3), Label(1));
    let epoch = overlay.epoch();
    assert!(matches!(
        overlay.apply_delta(&wrong),
        Err(GraphError::LabelMismatch { .. })
    ));
    assert_eq!(
        overlay.epoch(),
        epoch,
        "a rejected delta must not bump the epoch"
    );
    assert_eq!(overlay.to_graph(), data, "a rejected delta must not mutate");

    // Right pin: lands.
    let mut right = GraphDelta::new();
    right.delete_edge_labeled(NodeId(0), NodeId(1), Label(0), Label(1));
    overlay.apply_delta(&right).unwrap();
    assert!(!overlay.has_edge(NodeId(0), NodeId(1)));

    // Validation consults the merged view, not the base: the tombstoned edge is gone
    // (deleting it again is MissingEdge) and re-inserting it twice is EdgeExists.
    let mut again = GraphDelta::new();
    again.delete_edge(NodeId(0), NodeId(1));
    assert!(matches!(
        overlay.apply_delta(&again),
        Err(GraphError::MissingEdge { .. })
    ));
    let mut reinsert = GraphDelta::new();
    reinsert.insert_edge(NodeId(0), NodeId(1));
    overlay.apply_delta(&reinsert).unwrap();
    assert!(matches!(
        overlay.apply_delta(&reinsert),
        Err(GraphError::EdgeExists { .. })
    ));
    assert_eq!(overlay.to_graph(), data, "delete + reinsert round-trips");
}

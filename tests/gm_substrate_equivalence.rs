//! Differential properties of the match-graph ball substrate
//! ([`ssim_core::BallSubstrate`]) — the fourth oracle axis.
//!
//! With the dual filter on, the engine extracts the matched-node set once as a dense
//! renumbered subgraph `Gm` ([`ssim_graph::ExtractedSubgraph`]) and builds its balls
//! inside it (Fig. 5 of the paper): membership, distances and borders are taken w.r.t.
//! `Gm`. These properties pin the layer at three levels, with the other oracle axes held
//! fixed:
//!
//! * **extraction layer** — the straight CSR-to-CSR extraction is bit-identical to the
//!   builder-based [`ssim_graph::Graph::induced_subgraph`] oracle (labels, adjacency,
//!   label index, id mapping);
//! * **ball layer** — balls built inside the extraction equal balls built on a
//!   materialized copy of the same subgraph: members, center distances and borders;
//! * **match layer** — `strong_simulation` returns identical `MatchOutput`s under
//!   [`BallSubstrate::MatchGraph`] and the [`BallSubstrate::FullGraph`] oracle, across
//!   {seq, par, distributed} × both `RefineStrategy`s × plain/optimised `Match`, and the
//!   skipped-vs-considered accounting sums to `|V|` on both substrates.
//!
//! # The locality criterion
//!
//! The substrates' per-center outputs provably coincide whenever every full-substrate
//! extracted subgraph lies within `Gm`-distance `dQ` of its center: support chains and
//! match edges only ever connect matched candidates, so in-ball refinement decomposes
//! over `Gm`'s components and the ball *membership* is the only difference between the
//! substrates — and under the criterion the memberships agree on everything the output
//! depends on. Unconditionally, the `Gm` result is *contained* in the full-graph result
//! per center (smaller membership ⇒ smaller maximum relation ⇒ smaller component).
//!
//! Arbitrary random edge soups can violate the criterion (matched regions bridged only
//! by unmatched shortcut paths — Fig. 5's balls then localise harder than full-graph
//! balls; roughly one case in several hundred of the `data_graph()` generator below),
//! so the match-layer properties assert bit-identity exactly where the criterion holds
//! and the containment relation where it does not. Every shipped corpus — the paper
//! figures, the workload generators, the bench rows — satisfies the criterion
//! everywhere, which the deterministic tests pin; a boundary regression documents the
//! minimal violating shape so future sessions don't mistake the semantics for a bug.

mod common;

use common::{data_graph, pattern};
use proptest::prelude::*;
use ssim_core::dual::dual_simulation;
use ssim_core::strong::{strong_simulation, MatchConfig, MatchOutput};
use ssim_core::{BallStrategy, BallSubstrate, RefineSeed, RefineStrategy};
use ssim_distributed::{distributed_strong_simulation, DistributedConfig, PartitionStrategy};
use ssim_graph::{
    Ball, BallScratch, BitSet, CompactBall, ExtractedSubgraph, Graph, Label, NodeId, Pattern,
};

/// Returns `true` when every node of `subgraph` lies within `Gm`-distance `radius` of
/// its center — the provable bit-identity criterion (see the module docs).
fn within_gm_ball(
    gm: &ExtractedSubgraph,
    subgraph: &ssim_core::PerfectSubgraph,
    radius: usize,
    scratch: &mut BallScratch,
) -> bool {
    let Some(center) = gm.inner_of(subgraph.center) else {
        return false;
    };
    let ball = CompactBall::build(gm.graph(), center, radius, scratch);
    let covered = subgraph
        .nodes
        .iter()
        .all(|&n| gm.inner_of(n).is_some_and(|i| ball.local_of(i).is_some()));
    ball.recycle(scratch);
    covered
}

/// Compares the substrates' subgraph lists under the locality criterion: bit-identical
/// at every criterion-satisfying center, contained (nodes/edges/relation subsets, at a
/// center the full substrate also extracted) everywhere else.
fn assert_substrate_subgraphs(
    gm_subs: &[ssim_core::PerfectSubgraph],
    full_subs: &[ssim_core::PerfectSubgraph],
    gm: &ExtractedSubgraph,
    radius: usize,
    context: &str,
) -> Result<(), String> {
    use std::collections::BTreeMap;
    let full_by_center: BTreeMap<NodeId, &ssim_core::PerfectSubgraph> =
        full_subs.iter().map(|s| (s.center, s)).collect();
    let gm_by_center: BTreeMap<NodeId, &ssim_core::PerfectSubgraph> =
        gm_subs.iter().map(|s| (s.center, s)).collect();
    prop_assert!(
        gm_subs.len() <= full_subs.len(),
        "{context}: Gm extracted more subgraphs than the full substrate"
    );
    // Unconditional containment: every Gm subgraph sits inside the full one.
    for s in gm_subs {
        let Some(f) = full_by_center.get(&s.center) else {
            return Err(format!(
                "{context}: Gm extracted at center {} where the full substrate did not",
                s.center
            ));
        };
        let f_nodes: std::collections::BTreeSet<_> = f.nodes.iter().collect();
        prop_assert!(
            s.nodes.iter().all(|n| f_nodes.contains(n)),
            "{context}: Gm nodes at {} escape the full subgraph",
            s.center
        );
        let f_edges: std::collections::BTreeSet<_> = f.edges.iter().collect();
        prop_assert!(
            s.edges.iter().all(|e| f_edges.contains(e)),
            "{context}: Gm edges at {} escape the full subgraph",
            s.center
        );
        let f_rel: std::collections::BTreeSet<_> = f.relation.iter().collect();
        prop_assert!(
            s.relation.iter().all(|p| f_rel.contains(p)),
            "{context}: Gm relation at {} escapes the full subgraph",
            s.center
        );
    }
    // Bit-identity wherever the criterion holds.
    let mut scratch = BallScratch::new();
    for f in full_subs {
        if !within_gm_ball(gm, f, radius, &mut scratch) {
            continue;
        }
        let Some(s) = gm_by_center.get(&f.center) else {
            return Err(format!(
                "{context}: criterion holds at center {} but Gm extracted nothing",
                f.center
            ));
        };
        prop_assert!(s.radius == f.radius, "{context}: radii differ");
        prop_assert_eq!(&s.nodes, &f.nodes);
        prop_assert_eq!(&s.edges, &f.edges);
        prop_assert_eq!(&s.relation, &f.relation);
    }
    Ok(())
}

/// Asserts the substrate-independent work accounting agrees and compares the subgraphs
/// under the locality criterion.
fn assert_same_output(
    a: &MatchOutput,
    b: &MatchOutput,
    gm: &ExtractedSubgraph,
    radius: usize,
    context: &str,
) -> Result<(), String> {
    assert_substrate_subgraphs(&a.subgraphs, &b.subgraphs, gm, radius, context)?;
    prop_assert_eq!(a.stats.balls_considered, b.stats.balls_considered);
    prop_assert_eq!(a.stats.balls_processed, b.stats.balls_processed);
    prop_assert_eq!(a.stats.balls_skipped, b.stats.balls_skipped);
    prop_assert_eq!(a.stats.radius, b.stats.radius);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Extraction layer: the CSR-to-CSR extraction equals the builder-based
    /// `induced_subgraph` oracle for arbitrary membership sets.
    #[test]
    fn extraction_equals_builder_induced_subgraph(
        data in data_graph(),
        member_bits in proptest::collection::vec(any::<bool>(), 24),
    ) {
        let mut members = BitSet::new(data.node_count());
        for (i, &b) in member_bits.iter().take(data.node_count()).enumerate() {
            if b {
                members.insert(i);
            }
        }
        let sub = ExtractedSubgraph::induced(&data, &members);
        let member_ids: Vec<NodeId> = members.iter().map(NodeId::from_index).collect();
        let (oracle, mapping) = data.induced_subgraph(&member_ids);
        prop_assert_eq!(sub.node_count(), oracle.node_count());
        prop_assert_eq!(sub.edge_count(), oracle.edge_count());
        prop_assert_eq!(sub.to_outer(), mapping.as_slice());
        for v in oracle.nodes() {
            prop_assert!(sub.graph().label(v) == oracle.label(v), "label of {v}");
            let got: Vec<NodeId> = sub.graph().out_neighbors(v).collect();
            let want: Vec<NodeId> = oracle.out_neighbors(v).collect();
            prop_assert!(got == want, "out-adjacency of {v}: {got:?} vs {want:?}");
            let got: Vec<NodeId> = sub.graph().in_neighbors(v).collect();
            let want: Vec<NodeId> = oracle.in_neighbors(v).collect();
            prop_assert!(got == want, "in-adjacency of {v}: {got:?} vs {want:?}");
        }
        for label in 0..5u32 {
            prop_assert!(
                sub.graph().nodes_with_label(Label(label))
                    == oracle.nodes_with_label(Label(label)),
                "label index of {label}"
            );
        }
        // Id translation round-trips and non-members translate to nothing.
        for v in sub.graph().nodes() {
            prop_assert_eq!(sub.inner_of(sub.outer_of(v)), Some(v));
        }
        for outer in data.nodes() {
            prop_assert!(sub.inner_of(outer).is_some() == members.contains(outer.index()));
        }
    }

    /// Ball layer: balls built inside the extraction — the sliding pipeline's substrate —
    /// equal balls built on a materialized copy of `Gm`: members, distances and borders.
    #[test]
    fn gm_balls_equal_materialized_oracle(
        data in data_graph(),
        q in pattern(),
        radius in 0usize..4,
    ) {
        let Some(global) = dual_simulation(&q, &data) else {
            return Ok(()); // nothing matches: no Gm to compare
        };
        let matched = global.matched_data_nodes();
        let gm = ExtractedSubgraph::induced(&data, &matched);
        let member_ids: Vec<NodeId> = matched.iter().map(NodeId::from_index).collect();
        let (oracle_gm, _) = data.induced_subgraph(&member_ids);
        let mut scratch = BallScratch::new();
        for center in gm.graph().nodes() {
            let ball = CompactBall::build(gm.graph(), center, radius, &mut scratch);
            let oracle = Ball::new(&oracle_gm, center, radius);
            let mut got: Vec<NodeId> = ball.to_global().to_vec();
            got.sort_unstable();
            let mut want: Vec<NodeId> = oracle.members().to_vec();
            want.sort_unstable();
            prop_assert!(
                got == want,
                "members of gm-ball({center}, {radius}): {got:?} vs {want:?}"
            );
            for &m in oracle.members() {
                let local = ball.local_of(m).expect("member has a local id");
                // CompactBall lists members in BFS order with distances implied by
                // construction; re-derive via the border rule below and the oracle's
                // distance for the full check.
                let d = oracle.distance(m).expect("member has a distance");
                let on_border = ball.border().contains(&local);
                prop_assert!(
                    on_border == (d == radius),
                    "border of {} in gm-ball({}, {}): oracle distance {}",
                    m, center, radius, d
                );
            }
        }
    }

    /// Match layer: the substrates produce identical outputs for plain-with-filter and
    /// fully optimised `Match`, both refinement strategies, sequential and parallel, on
    /// the default (sliding + warm) engine.
    #[test]
    fn substrates_agree_on_match_output(data in data_graph(), q in pattern()) {
        let Some(global) = dual_simulation(&q, &data) else {
            // Nothing dual-simulates: both substrates skip every ball.
            let out = strong_simulation(&q, &data, &MatchConfig::optimized());
            prop_assert!(out.subgraphs.is_empty());
            prop_assert_eq!(out.stats.balls_skipped, data.node_count());
            return Ok(());
        };
        let gm_sub = ExtractedSubgraph::induced(&data, &global.matched_data_nodes());
        let radius = q.diameter();
        let bases = [
            MatchConfig {
                dual_filter: true,
                ..MatchConfig::basic()
            },
            MatchConfig::optimized(),
        ];
        for base in bases {
            for strategy in [RefineStrategy::Worklist, RefineStrategy::NaiveFixpoint] {
                let base = base.with_refine_strategy(strategy);
                let full = strong_simulation(
                    &q,
                    &data,
                    &base.sequential().with_ball_substrate(BallSubstrate::FullGraph),
                );
                let gm_seq = strong_simulation(
                    &q,
                    &data,
                    &base.sequential().with_ball_substrate(BallSubstrate::MatchGraph),
                );
                assert_same_output(&gm_seq, &full, &gm_sub, radius, "gm seq vs full")?;
                // The substrate-axis invariants: centers are the Gm nodes, and the
                // skipped/considered split is identical on both sides.
                prop_assert_eq!(gm_seq.stats.gm_nodes, gm_seq.stats.balls_processed);
                prop_assert_eq!(gm_seq.stats.gm_nodes, gm_sub.node_count());
                prop_assert_eq!(gm_seq.stats.gm_edges, gm_sub.edge_count());
                prop_assert_eq!(full.stats.gm_nodes, 0);
                prop_assert_eq!(
                    gm_seq.stats.balls_processed + gm_seq.stats.balls_skipped,
                    data.node_count()
                );
                for workers in [2usize, 5] {
                    let gm_par = strong_simulation(
                        &q,
                        &data,
                        &base
                            .with_thread_limit(workers)
                            .with_ball_substrate(BallSubstrate::MatchGraph),
                    );
                    assert_same_output(&gm_par, &full, &gm_sub, radius, "gm par vs full")?;
                    // Within the substrate, parallelism is exact: the parallel Gm run
                    // equals the sequential Gm run bit for bit.
                    prop_assert_eq!(gm_par.subgraphs.len(), gm_seq.subgraphs.len());
                    for (x, y) in gm_par.subgraphs.iter().zip(&gm_seq.subgraphs) {
                        prop_assert_eq!(&x.nodes, &y.nodes);
                        prop_assert_eq!(&x.edges, &y.edges);
                        prop_assert_eq!(&x.relation, &y.relation);
                    }
                }
            }
        }
    }

    /// The substrate axis composes with the other oracle axes: fresh-BFS balls,
    /// from-scratch seeding and the legacy `|V|`-sized engine agree across substrates.
    #[test]
    fn substrates_agree_with_other_axes_pinned_to_oracles(data in data_graph(), q in pattern()) {
        let Some(global) = dual_simulation(&q, &data) else {
            return Ok(());
        };
        let gm_sub = ExtractedSubgraph::induced(&data, &global.matched_data_nodes());
        let radius = q.diameter();
        let shapes = [
            MatchConfig {
                dual_filter: true,
                ..MatchConfig::basic()
            }
            .with_ball_strategy(BallStrategy::FreshBfs),
            MatchConfig {
                dual_filter: true,
                ..MatchConfig::basic()
            }
            .with_refine_seed(RefineSeed::FromScratch),
            MatchConfig {
                dual_filter: true,
                compact_balls: false,
                ..MatchConfig::basic()
            },
            MatchConfig {
                refine_strategy: RefineStrategy::NaiveFixpoint,
                compact_balls: false,
                ball_strategy: BallStrategy::FreshBfs,
                refine_seed: RefineSeed::FromScratch,
                dual_filter: true,
                ..MatchConfig::basic()
            },
        ];
        for shape in shapes {
            let full = strong_simulation(
                &q,
                &data,
                &shape.sequential().with_ball_substrate(BallSubstrate::FullGraph),
            );
            let gm = strong_simulation(
                &q,
                &data,
                &shape.sequential().with_ball_substrate(BallSubstrate::MatchGraph),
            );
            assert_same_output(&gm, &full, &gm_sub, radius, "axis-pinned gm vs full")?;
        }
    }

    /// The distributed runtime agrees across substrates under the dual filter, for every
    /// partition strategy and site count, and its skipped-vs-considered accounting sums
    /// to `|V|` on both substrates.
    #[test]
    fn substrates_agree_through_the_distributed_runtime(
        data in data_graph(),
        q in pattern(),
        sites in 1usize..5,
    ) {
        let Some(global) = dual_simulation(&q, &data) else {
            return Ok(());
        };
        let gm_sub = ExtractedSubgraph::induced(&data, &global.matched_data_nodes());
        let radius = q.diameter();
        // The config layer rejects sites > |V| now; the strategy may draw more sites
        // than the smallest graphs have nodes.
        let sites = sites.min(data.node_count());
        for strategy in [PartitionStrategy::Hash, PartitionStrategy::Range] {
            let base = DistributedConfig {
                sites,
                strategy,
                minimize_query: false,
                dual_filter: true,
                ..DistributedConfig::default()
            };
            let gm = distributed_strong_simulation(&q, &data, &base)
                .expect("valid distributed config");
            let full = distributed_strong_simulation(
                &q,
                &data,
                &DistributedConfig {
                    ball_substrate: BallSubstrate::FullGraph,
                    ..base
                },
            )
            .expect("valid distributed config");
            assert_substrate_subgraphs(
                &gm.subgraphs,
                &full.subgraphs,
                &gm_sub,
                radius,
                "distributed gm vs full",
            )?;
            for out in [&gm, &full] {
                let evaluated: usize = out.traffic.balls_per_site.iter().sum();
                prop_assert_eq!(out.traffic.considered_balls, data.node_count());
                prop_assert_eq!(out.traffic.skipped_balls + evaluated, data.node_count());
                prop_assert_eq!(out.traffic.built_balls + out.traffic.reused_balls, evaluated);
            }
            prop_assert_eq!(gm.traffic.skipped_balls, full.traffic.skipped_balls);
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic regressions.
// ---------------------------------------------------------------------------

/// Runs both substrates sequentially and asserts bit-identical outputs; returns the
/// match-graph-substrate output for extra assertions.
fn gm_equals_full(pattern: &Pattern, data: &Graph, config: MatchConfig) -> MatchOutput {
    let gm = strong_simulation(
        pattern,
        data,
        &config
            .sequential()
            .with_ball_substrate(BallSubstrate::MatchGraph),
    );
    let full = strong_simulation(
        pattern,
        data,
        &config
            .sequential()
            .with_ball_substrate(BallSubstrate::FullGraph),
    );
    assert_eq!(gm.subgraphs.len(), full.subgraphs.len(), "{config:?}");
    for (a, b) in gm.subgraphs.iter().zip(&full.subgraphs) {
        assert_eq!(a.center, b.center);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.relation, b.relation);
    }
    gm
}

/// A selective workload: a sparse matchable chain woven through a thick unmatchable
/// mesh — [`ssim_datasets::synthetic::selective_labels`], the same construction the
/// bench's `selective-labels` row runs at larger scale. The `Gm` fraction is below 10 %
/// and the matchable chain's `Gm` distances equal its data-graph distances, so the
/// substrates agree while the `Gm` balls are an order of magnitude smaller.
fn selective_chain(n: u32, stride: u32) -> (Graph, Pattern) {
    ssim_datasets::synthetic::selective_labels(n, stride, 3)
}

#[test]
fn selective_chain_agrees_and_extracts_a_small_gm() {
    let (data, pattern) = selective_chain(600, 12);
    let out = gm_equals_full(
        &pattern,
        &data,
        MatchConfig {
            dual_filter: true,
            ..MatchConfig::basic()
        },
    );
    assert!(out.is_match(), "the matchable chain must match");
    assert!(out.stats.gm_nodes > 0);
    assert!(
        out.stats.gm_nodes * 10 <= data.node_count(),
        "Gm fraction {}/{} is not selective",
        out.stats.gm_nodes,
        data.node_count()
    );
    assert_eq!(
        out.stats.balls_processed + out.stats.balls_skipped,
        data.node_count()
    );
    // The optimised configuration agrees too.
    let _ = gm_equals_full(&pattern, &data, MatchConfig::optimized());
}

#[test]
fn figure1_substrates_agree() {
    let fig = ssim_datasets::paper::figure1();
    for config in [
        MatchConfig {
            dual_filter: true,
            ..MatchConfig::basic()
        },
        MatchConfig::optimized(),
        MatchConfig::optimized().with_deduplication(),
    ] {
        let out = gm_equals_full(&fig.pattern, &fig.data, config);
        assert_eq!(out.stats.gm_nodes, out.stats.balls_processed);
    }
}

#[test]
fn substrate_is_inert_without_the_dual_filter() {
    // Without a global relation there is no Gm; both substrate settings must take the
    // identical full-graph path and record no extraction.
    let (data, pattern) = selective_chain(120, 12);
    let out = gm_equals_full(&pattern, &data, MatchConfig::basic());
    assert_eq!(out.stats.gm_nodes, 0);
    assert_eq!(out.stats.balls_skipped, 0);
}

/// The documented boundary of the oracle equivalence (see the module docs): two matched
/// clusters whose only *short* connection runs through unmatched shortcut nodes. Ball
/// membership w.r.t. `Gm` (Fig. 5) then localises harder than full-graph balls: the far
/// cluster sits within data-graph distance `dQ` of the center but beyond `Gm`-distance
/// `dQ`, so the full-graph ball keeps it while the `Gm` ball does not. Neither answer is
/// wrong — they realise different ball definitions — but the default substrate commits
/// to Fig. 5, and this regression pins the exact shape so the boundary stays visible.
#[test]
fn unmatched_shortcut_boundary_localises_harder_on_gm() {
    // Pattern: a(A) ⇄ b(B) ⇄ c(C); dQ = 2.
    let pattern = Pattern::from_edges(
        vec![Label(0), Label(1), Label(2)],
        &[(0, 1), (1, 0), (1, 2), (2, 1)],
    )
    .unwrap();
    // Data: matched chain w(A)=0 ⇄ x(B)=1 ⇄ y(C)=2 ⇄ x2(B)=3 ⇄ w2(A)=4 plus unmatched
    // shortcuts w -> u1(=5) -> x2 and w -> u2(=6) -> w2 that pull x2/w2 within
    // data-graph distance 2 of w; their Gm distances stay 3 and 4.
    let labels = vec![
        Label(0),
        Label(1),
        Label(2),
        Label(1),
        Label(0),
        Label(9),
        Label(9),
    ];
    let edges = [
        (0u32, 1u32),
        (1, 0),
        (1, 2),
        (2, 1),
        (2, 3),
        (3, 2),
        (3, 4),
        (4, 3),
        (0, 5),
        (5, 3),
        (0, 6),
        (6, 4),
    ];
    let data = Graph::from_edges(labels, &edges).unwrap();
    let config = MatchConfig {
        dual_filter: true,
        ..MatchConfig::basic()
    };
    let full = strong_simulation(
        &pattern,
        &data,
        &config
            .sequential()
            .with_ball_substrate(BallSubstrate::FullGraph),
    );
    let gm = strong_simulation(
        &pattern,
        &data,
        &config
            .sequential()
            .with_ball_substrate(BallSubstrate::MatchGraph),
    );
    // Every matched node survives the global filter; the divergence is per-ball.
    assert_eq!(gm.stats.balls_processed, 5);
    assert_eq!(full.stats.balls_processed, 5);
    let full_w = full
        .subgraphs
        .iter()
        .find(|s| s.center == NodeId(0))
        .unwrap();
    let gm_w = gm.subgraphs.iter().find(|s| s.center == NodeId(0)).unwrap();
    assert_eq!(
        full_w.nodes,
        vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)],
        "the full-graph ball reaches the far cluster through the shortcuts"
    );
    assert_eq!(
        gm_w.nodes,
        vec![NodeId(0), NodeId(1), NodeId(2)],
        "the Gm ball of radius dQ stops at the near cluster"
    );
    // On every center whose extracted subgraph stays within Gm-distance dQ, the outputs
    // coincide (the provable criterion): w2's ball sees only its own cluster either way.
    let full_w2 = full
        .subgraphs
        .iter()
        .find(|s| s.center == NodeId(4))
        .unwrap();
    let gm_w2 = gm.subgraphs.iter().find(|s| s.center == NodeId(4)).unwrap();
    assert_eq!(full_w2.nodes, gm_w2.nodes);
    assert_eq!(full_w2.relation, gm_w2.relation);
}

//! Differential properties of the incremental ball pipeline.
//!
//! The [`ssim_core::BallForest`] replaces a fresh BFS per ball center with an incremental
//! distance repair between nearby centers; these properties pin it to the fresh-BFS
//! oracle at both layers:
//!
//! * **ball layer** — after every `advance`, the forest's member set *and* per-member
//!   center distances equal a freshly built [`Ball`], for random graphs, radii and center
//!   sequences (locality walks and adversarial random jumps alike), and the materialised
//!   [`CompactBall`] carries the same border set;
//! * **match layer** — `strong_simulation` returns bit-identical [`MatchOutput`]s under
//!   [`BallStrategy::Incremental`] and [`BallStrategy::FreshBfs`], sequential and
//!   parallel, plain `Match` and `Match+`.

mod common;

use common::{center_sequence, data_graph, pattern};
use proptest::prelude::*;
use ssim_core::strong::{strong_simulation, MatchConfig, MatchOutput};
use ssim_core::{BallForest, BallStrategy, RefineSeed};
use ssim_graph::{Ball, BallScratch, Graph, NodeId};

/// Asserts the forest's current ball equals the fresh-BFS oracle for `center`, members,
/// distances and compact-ball border included.
fn assert_ball_matches_oracle(
    forest: &BallForest<'_>,
    graph: &Graph,
    center: NodeId,
    radius: usize,
    scratch: &mut BallScratch,
) -> Result<(), String> {
    let oracle = Ball::new(graph, center, radius);
    let mut got: Vec<NodeId> = forest.members().to_vec();
    got.sort_unstable();
    let mut want: Vec<NodeId> = oracle.members().to_vec();
    want.sort_unstable();
    prop_assert!(
        got == want,
        "members of ball({center}, {radius}): {got:?} vs {want:?}"
    );
    for &v in oracle.members() {
        prop_assert!(
            forest.distance(v) == oracle.distance(v),
            "distance of {v} in ball({center}, {radius}): {:?} vs {:?}",
            forest.distance(v),
            oracle.distance(v)
        );
    }
    let compact = forest.compact(scratch);
    prop_assert_eq!(compact.center_global(), center);
    prop_assert_eq!(compact.global_of(compact.center()), center);
    prop_assert_eq!(compact.node_count(), oracle.node_count());
    let mut got_border: Vec<NodeId> = compact
        .border()
        .iter()
        .map(|&l| compact.global_of(l))
        .collect();
    got_border.sort_unstable();
    let mut want_border = oracle.border_nodes();
    want_border.sort_unstable();
    prop_assert!(
        got_border == want_border,
        "border of ball({center}, {radius}): {got_border:?} vs {want_border:?}"
    );
    compact.recycle(scratch);
    Ok(())
}

/// Asserts two match outputs are bit-identical: every subgraph field and every
/// strategy-independent stat. (`balls_built`/`balls_reused` are the strategies'
/// instrumentation and differ by design.)
fn assert_same_output(a: &MatchOutput, b: &MatchOutput, context: &str) -> Result<(), String> {
    prop_assert!(
        a.subgraphs.len() == b.subgraphs.len(),
        "{context}: {} vs {} subgraphs",
        a.subgraphs.len(),
        b.subgraphs.len()
    );
    for (x, y) in a.subgraphs.iter().zip(&b.subgraphs) {
        prop_assert!(x.center == y.center, "{context}: centers differ");
        prop_assert!(x.radius == y.radius, "{context}: radii differ");
        prop_assert_eq!(&x.nodes, &y.nodes);
        prop_assert_eq!(&x.edges, &y.edges);
        prop_assert_eq!(&x.relation, &y.relation);
    }
    prop_assert_eq!(a.stats.balls_considered, b.stats.balls_considered);
    prop_assert_eq!(a.stats.balls_processed, b.stats.balls_processed);
    prop_assert_eq!(a.stats.balls_skipped, b.stats.balls_skipped);
    prop_assert_eq!(
        a.stats.balls_with_invalid_matches,
        b.stats.balls_with_invalid_matches
    );
    prop_assert_eq!(a.stats.filter_removed_pairs, b.stats.filter_removed_pairs);
    prop_assert_eq!(a.stats.perfect_subgraphs, b.stats.perfect_subgraphs);
    prop_assert_eq!(a.stats.radius, b.stats.radius);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ball layer: sliding/rebuilding along any center sequence reproduces the fresh-BFS
    /// ball exactly — members, distances and compact border.
    #[test]
    fn incremental_balls_equal_fresh_bfs_balls(
        data in data_graph(),
        radius in 0usize..4,
        jumps in proptest::collection::vec(0usize..1000, 0..24),
    ) {
        let centers = center_sequence(&data, &jumps);
        let mut forest = BallForest::new(&data, radius);
        let mut scratch = BallScratch::new();
        for center in centers {
            forest.advance(center);
            assert_ball_matches_oracle(&forest, &data, center, radius, &mut scratch)?;
        }
        // Every advance was charged exactly once.
        prop_assert_eq!(forest.built_fresh + forest.reused, data.node_count() + jumps.len());
    }

    /// Match layer: `BallStrategy::Incremental` and `BallStrategy::FreshBfs` produce
    /// bit-identical outputs, sequential and parallel, plain and optimised.
    ///
    /// Both sides run `RefineSeed::FromScratch` so this property isolates the *ball*
    /// axis: the fresh-BFS engine never warm-starts, and the dual-filter removal
    /// counters compared below are seed-dependent instrumentation. The seed axis has
    /// its own differential suite in `tests/refine_warm_equivalence.rs`.
    #[test]
    fn ball_strategies_agree_on_match_output(data in data_graph(), q in pattern()) {
        for base in [MatchConfig::basic(), MatchConfig::optimized()] {
            let base = base.with_refine_seed(RefineSeed::FromScratch);
            let fresh = strong_simulation(
                &q,
                &data,
                &base.sequential().with_ball_strategy(BallStrategy::FreshBfs),
            );
            for config in [
                base.sequential(),
                base.with_thread_limit(2),
                base.with_thread_limit(5),
            ] {
                let incremental = strong_simulation(
                    &q,
                    &data,
                    &config.with_ball_strategy(BallStrategy::Incremental),
                );
                prop_assert_eq!(
                    incremental.stats.balls_built + incremental.stats.balls_reused,
                    incremental.stats.balls_processed
                );
                assert_same_output(&incremental, &fresh, "incremental vs fresh")?;
            }
        }
    }

    /// Radius overrides (radius 0 and 1 balls hit the rebuild-only and slide-heavy edges
    /// of the forest) preserve the equivalence too.
    #[test]
    fn ball_strategies_agree_under_radius_override(
        data in data_graph(),
        q in pattern(),
        radius in 0usize..3,
    ) {
        let base = MatchConfig::basic()
            .with_radius(radius)
            .with_deduplication()
            .with_refine_seed(RefineSeed::FromScratch);
        let fresh = strong_simulation(
            &q,
            &data,
            &base.sequential().with_ball_strategy(BallStrategy::FreshBfs),
        );
        let incremental = strong_simulation(&q, &data, &base.sequential());
        assert_same_output(&incremental, &fresh, "radius override")?;
    }
}

//! Integration tests reproducing the worked examples of the paper (Fig. 1 and Fig. 2).
//!
//! Each test checks the exact qualitative claims the paper makes about which nodes are
//! matched by subgraph isomorphism, graph simulation, dual simulation and strong simulation.

use ssim_baselines::vf2::{find_embeddings, is_subgraph_isomorphic, Vf2Limits};
use ssim_core::dual::dual_simulation;
use ssim_core::simulation::graph_simulation;
use ssim_core::strong::{strong_simulation, MatchConfig};
use ssim_core::topology::TopologyReport;
use ssim_datasets::paper;
use ssim_graph::NodeId;
use std::collections::BTreeSet;

/// Example 1 / Example 2(3): on Fig. 1, subgraph isomorphism finds nothing, simulation
/// matches all four biologists, strong simulation returns only Bio4.
#[test]
fn figure1_only_bio4_is_a_strong_match() {
    let fig = paper::figure1();
    let bio = NodeId(2);

    // (1) No subgraph of G1 is isomorphic to Q1.
    assert!(!is_subgraph_isomorphic(&fig.pattern, &fig.data));

    // (2) Graph simulation matches every biologist.
    let sim = graph_simulation(&fig.pattern, &fig.data).expect("Q1 ≺ G1");
    let bio_label = fig.pattern.label(bio);
    let sim_bios: BTreeSet<NodeId> = sim.candidates(bio).iter().map(NodeId::from_index).collect();
    let all_bios: BTreeSet<NodeId> = fig
        .data
        .nodes()
        .filter(|&v| fig.data.label(v) == bio_label)
        .collect();
    assert_eq!(sim_bios, all_bios, "simulation keeps all four biologists");
    assert_eq!(all_bios.len(), 4);

    // (3) Strong simulation returns exactly Bio4.
    let strong = strong_simulation(&fig.pattern, &fig.data, &MatchConfig::basic());
    let strong_bios: Vec<NodeId> = strong.matches_of(bio).into_iter().collect();
    assert_eq!(strong_bios, fig.expected_matches);

    // The long AI/DM cycle is not part of any perfect subgraph (Example 2(3)).
    let cycle_nodes: Vec<NodeId> = (5..=10).map(NodeId).collect();
    let matched = strong.matched_nodes();
    assert!(
        cycle_nodes.iter().all(|v| !matched.contains(v)),
        "the k-cycle must be excluded"
    );

    // Strong simulation satisfies every Table 2 criterion on this instance.
    assert!(TopologyReport::evaluate(&fig.pattern, &fig.data, &strong).all_preserved());
}

/// Example 2(4): the book recommended by both a student and a teacher.
#[test]
fn figure2_books_dualiy_filters_book1() {
    let fig = paper::figure2_books();
    let book_pattern = NodeId(2);
    let book1 = NodeId(2);
    let book2 = NodeId(3);

    // Simulation keeps both books.
    let sim = graph_simulation(&fig.pattern, &fig.data).unwrap();
    assert!(sim.contains(book_pattern, book1));
    assert!(sim.contains(book_pattern, book2));

    // Dual and strong simulation keep only book2.
    let dual = dual_simulation(&fig.pattern, &fig.data).unwrap();
    assert!(!dual.contains(book_pattern, book1));
    assert!(dual.contains(book_pattern, book2));

    let strong = strong_simulation(&fig.pattern, &fig.data, &MatchConfig::basic());
    let books: Vec<NodeId> = strong.matches_of(book_pattern).into_iter().collect();
    assert_eq!(books, fig.expected_matches);

    // Subgraph isomorphism also finds book2 (in separate match graphs, per the paper).
    let vf2 = find_embeddings(&fig.pattern, &fig.data, Vf2Limits::default());
    assert!(vf2.is_match());
    assert!(vf2
        .embeddings
        .iter()
        .all(|e| e[book_pattern.index()] == book2));
}

/// Example 2(5): people who recommend each other; P4 only recommends and is excluded.
#[test]
fn figure3_mutual_recommendation_excludes_p4() {
    let fig = paper::figure3_mutual();
    let strong = strong_simulation(&fig.pattern, &fig.data, &MatchConfig::basic());
    let matched = strong.matched_nodes();
    let expected: BTreeSet<NodeId> = fig.expected_matches.iter().copied().collect();
    assert_eq!(
        matched, expected,
        "P1, P2, P3 are the only strong-simulation matches"
    );

    // Plain simulation still matches P4 (node 3): it has a child to mimic but no parent is
    // required.
    let sim = graph_simulation(&fig.pattern, &fig.data).unwrap();
    assert!(sim.matched_data_nodes().contains(3));

    // Subgraph isomorphism agrees with strong simulation on the matched people.
    let vf2 = find_embeddings(&fig.pattern, &fig.data, Vf2Limits::default());
    let vf2_nodes = ssim_baselines::matched_node_union(&vf2.matched_subgraphs());
    assert!(vf2_nodes.iter().all(|v| expected.contains(v)));
}

/// Example 2(6): the citation pattern; SN3/SN4 are excessive matches of simulation that
/// dual and strong simulation remove.
#[test]
fn figure4_citations_filters_excessive_sn_matches() {
    let fig = paper::figure4_citations();
    let sn_pattern = NodeId(1);

    let sim = graph_simulation(&fig.pattern, &fig.data).unwrap();
    let sim_sns: BTreeSet<NodeId> = sim
        .candidates(sn_pattern)
        .iter()
        .map(NodeId::from_index)
        .collect();
    assert!(
        sim_sns.contains(&NodeId(7)) && sim_sns.contains(&NodeId(8)),
        "Sim over-matches"
    );

    let strong = strong_simulation(&fig.pattern, &fig.data, &MatchConfig::basic());
    let strong_sns: Vec<NodeId> = strong.matches_of(sn_pattern).into_iter().collect();
    assert_eq!(strong_sns, fig.expected_matches);

    // VF2 finds the same SN papers, spread across several match graphs.
    let vf2 = find_embeddings(&fig.pattern, &fig.data, Vf2Limits::default());
    let vf2_sns: BTreeSet<NodeId> = vf2
        .embeddings
        .iter()
        .map(|e| e[sn_pattern.index()])
        .collect();
    assert_eq!(
        vf2_sns.into_iter().collect::<Vec<_>>(),
        fig.expected_matches
    );
    assert!(vf2.matched_subgraphs().len() >= strong.distinct_subgraphs().len());
}

/// The QA / QY patterns of Fig. 7 are valid connected patterns with the structure the paper
/// describes (QA contains a 2-cycle; QY is a 4-node diamond).
#[test]
fn real_life_patterns_have_the_described_shape() {
    let (qa, _) = paper::pattern_qa();
    assert_eq!(qa.node_count(), 4);
    assert!(ssim_graph::cycles::has_directed_cycle(qa.graph()));
    let (qy, _) = paper::pattern_qy();
    assert_eq!(qy.node_count(), 4);
    assert!(!ssim_graph::cycles::has_directed_cycle(qy.graph()));
    assert!(ssim_graph::cycles::has_undirected_cycle(qy.graph()));
}

//! Differential properties of warm-started refinement ([`ssim_core::warm`]).
//!
//! [`RefineSeed::WarmStart`] carries the previous ball's converged dual-simulation
//! relation across a [`ssim_core::BallForest`] slide instead of refining every ball from
//! scratch. The maximum relation inside a ball is unique, so the warm engine must be
//! *bit-identical* to the [`RefineSeed::FromScratch`] oracle; these properties pin it at
//! both layers:
//!
//! * **relation layer** — after every ball, the warm matcher's converged per-node
//!   candidate bitsets equal a from-scratch refinement of the same ball, with and
//!   without the dual-filter base, across locality walks and adversarial jumps;
//! * **match layer** — `strong_simulation` returns identical `MatchOutput`s under both
//!   seeds, for plain `Match` and `Match+`, both `RefineStrategy` variants, sequential
//!   and parallel, and through the distributed runtime.
//!
//! Seed-*dependent* instrumentation (`seeded_pairs`, `balls_warm_started`,
//! `match_graphs_reused`, and the dual-filter removal counters, which count removals
//! against differently sized starts) is excluded from the comparison by design; the
//! three-axis oracle matrix is documented in the README.

mod common;

use common::{center_sequence, data_graph, pattern};
use proptest::prelude::*;
use ssim_core::dual::{dual_simulation, refine_dual_with};
use ssim_core::simulation::initial_candidates;
use ssim_core::strong::{strong_simulation, MatchConfig, MatchOutput};
use ssim_core::{
    BallForest, RefineSeed, RefineStrategy, RepetitionMode, RepetitionSemantics, WarmMatcher,
};
use ssim_distributed::{distributed_strong_simulation, DistributedConfig, PartitionStrategy};
use ssim_graph::{BallScratch, Graph, Label, Pattern};

/// Asserts two match outputs agree on every subgraph bit and every seed-independent
/// stat. The ball strategy is identical on both sides, so the built/reused split must
/// agree too whenever both runs are sequential (`compare_ball_split`).
fn assert_same_output(
    a: &MatchOutput,
    b: &MatchOutput,
    compare_ball_split: bool,
    context: &str,
) -> Result<(), String> {
    prop_assert!(
        a.subgraphs.len() == b.subgraphs.len(),
        "{context}: {} vs {} subgraphs",
        a.subgraphs.len(),
        b.subgraphs.len()
    );
    for (x, y) in a.subgraphs.iter().zip(&b.subgraphs) {
        prop_assert!(x.center == y.center, "{context}: centers differ");
        prop_assert!(x.radius == y.radius, "{context}: radii differ");
        prop_assert_eq!(&x.nodes, &y.nodes);
        prop_assert_eq!(&x.edges, &y.edges);
        prop_assert_eq!(&x.relation, &y.relation);
    }
    prop_assert_eq!(a.stats.balls_considered, b.stats.balls_considered);
    prop_assert_eq!(a.stats.balls_processed, b.stats.balls_processed);
    prop_assert_eq!(a.stats.balls_skipped, b.stats.balls_skipped);
    prop_assert_eq!(a.stats.perfect_subgraphs, b.stats.perfect_subgraphs);
    prop_assert_eq!(a.stats.radius, b.stats.radius);
    if compare_ball_split {
        prop_assert_eq!(a.stats.balls_built, b.stats.balls_built);
        prop_assert_eq!(a.stats.balls_reused, b.stats.balls_reused);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Relation layer: after every ball of a slide/jump sequence, the warm matcher's
    /// carried candidate bitsets equal a from-scratch refinement of the same ball —
    /// with the label-candidate base and with the dual-filter-projected base.
    #[test]
    fn warm_relations_equal_scratch_relations_per_ball(
        data in data_graph(),
        q in pattern(),
        radius in 0usize..4,
        jumps in proptest::collection::vec(0usize..1000, 0..16),
    ) {
        let centers = center_sequence(&data, &jumps);
        // The label-candidate base always runs; the projected base only when the whole
        // graph dual-simulates the pattern (otherwise every ball is skipped upstream).
        let global = dual_simulation(&q, &data);
        let mut bases = vec![None];
        bases.extend(global.as_ref().map(Some));
        for global_base in bases {
            let mut forest = BallForest::new(&data, radius);
            let mut warm = WarmMatcher::new(&q);
            let mut scratch = BallScratch::new();
            let mut fresh_checked = 0usize;
            for &center in &centers {
                forest.advance(center);
                let ball = forest.compact(&mut scratch);
                warm.match_ball(
                    &q,
                    &data,
                    &ball,
                    forest.last_move(),
                    forest.entered(),
                    forest.left(),
                    global_base,
                    false,
                    RefineStrategy::Worklist,
                    RepetitionSemantics::Free,
                    RepetitionMode::Integrated,
                );
                if !warm.carry_is_fresh() {
                    // Inside a bail back-off window the matcher legitimately leaves the
                    // carry stale (nothing will consume it before the next probe); the
                    // exactness contract only covers maintained carries.
                    ball.recycle(&mut scratch);
                    continue;
                }
                let (members, got) = warm.carried_relation().expect("carry set after a ball");
                fresh_checked += 1;
                let view = ball.view(&data);
                let start = match global_base {
                    Some(g) => g.project_compact(&ball),
                    None => initial_candidates(&q, &view),
                };
                let oracle = refine_dual_with(&q, &view, start, RefineStrategy::NaiveFixpoint);
                // `None` and `Some(empty)` both record the exact empty fixpoint (the
                // drain clears on an emptied row; an all-empty translate never drains).
                let got_pairs = got.map(|r| r.to_sorted_pairs()).unwrap_or_default();
                match oracle {
                    Some(oracle) => {
                        // A fresh non-empty carry is keyed on this very ball.
                        prop_assert!(members == ball.to_global(), "carry on the wrong ball");
                        prop_assert!(
                            got_pairs == oracle.to_sorted_pairs(),
                            "ball({center}, {radius}) relation diverged"
                        );
                    }
                    // Connected patterns: a non-total fixpoint cascades to empty, and
                    // the warm drain must have converged all the way there (an empty
                    // carry may keep stale members by design — nothing translates it).
                    None => prop_assert!(
                        got_pairs.is_empty(),
                        "ball({center}, {radius}): warm kept pairs in an unmatchable ball"
                    ),
                }
                ball.recycle(&mut scratch);
            }
            prop_assert!(
                fresh_checked > 0,
                "the matcher never maintained a fresh carry to verify"
            );
        }
    }

    /// Match layer: `RefineSeed::WarmStart` and `RefineSeed::FromScratch` produce
    /// identical outputs — plain and optimised, both refinement strategies, sequential
    /// and parallel.
    #[test]
    fn refine_seeds_agree_on_match_output(data in data_graph(), q in pattern()) {
        for base in [MatchConfig::basic(), MatchConfig::optimized()] {
            for strategy in [RefineStrategy::Worklist, RefineStrategy::NaiveFixpoint] {
                let base = base.with_refine_strategy(strategy);
                let scratch = strong_simulation(
                    &q,
                    &data,
                    &base.sequential().with_refine_seed(RefineSeed::FromScratch),
                );
                let warm_seq = strong_simulation(&q, &data, &base.sequential());
                assert_same_output(&warm_seq, &scratch, true, "warm seq vs scratch")?;
                prop_assert!(
                    warm_seq.stats.balls_warm_started <= warm_seq.stats.balls_processed
                );
                prop_assert_eq!(scratch.stats.balls_warm_started, 0);
                for workers in [2usize, 5] {
                    let warm_par =
                        strong_simulation(&q, &data, &base.with_thread_limit(workers));
                    assert_same_output(&warm_par, &scratch, false, "warm par vs scratch")?;
                }
            }
        }
    }

    /// Radius overrides (rebuild-only radius-0 and slide-heavy radius-1 forests) and
    /// deduplication preserve the seed equivalence too.
    #[test]
    fn refine_seeds_agree_under_radius_override(
        data in data_graph(),
        q in pattern(),
        radius in 0usize..3,
    ) {
        let base = MatchConfig::basic().with_radius(radius).with_deduplication();
        let scratch = strong_simulation(
            &q,
            &data,
            &base.sequential().with_refine_seed(RefineSeed::FromScratch),
        );
        let warm = strong_simulation(&q, &data, &base.sequential());
        assert_same_output(&warm, &scratch, true, "radius override")?;
    }

    /// The distributed runtime returns bit-identical subgraphs under both seeds, for
    /// every partition strategy and site count.
    #[test]
    fn refine_seeds_agree_through_the_distributed_runtime(
        data in data_graph(),
        q in pattern(),
        sites in 1usize..5,
    ) {
        // The config layer rejects sites > |V| now; the strategy may draw more sites
        // than the smallest graphs have nodes.
        let sites = sites.min(data.node_count());
        for strategy in [PartitionStrategy::Hash, PartitionStrategy::Range] {
            let base = DistributedConfig {
                sites,
                strategy,
                minimize_query: false,
                ..DistributedConfig::default()
            };
            let warm = distributed_strong_simulation(&q, &data, &base)
                .expect("valid distributed config");
            let scratch = distributed_strong_simulation(
                &q,
                &data,
                &DistributedConfig {
                    refine_seed: RefineSeed::FromScratch,
                    ..base
                },
            )
            .expect("valid distributed config");
            prop_assert_eq!(warm.subgraphs.len(), scratch.subgraphs.len());
            for (a, b) in warm.subgraphs.iter().zip(&scratch.subgraphs) {
                prop_assert!(a.center == b.center, "distributed centers differ");
                prop_assert_eq!(&a.nodes, &b.nodes);
                prop_assert_eq!(&a.edges, &b.edges);
                prop_assert_eq!(&a.relation, &b.relation);
            }
            prop_assert_eq!(scratch.traffic.warm_started_balls, 0);
        }
    }
}

// ---------------------------------------------------------------------------
// Incremental match-graph edge cases (deterministic regressions).
// ---------------------------------------------------------------------------

/// Runs warm and scratch sequentially on the same workload and asserts bit-identical
/// outputs; returns the warm output for extra stat assertions.
fn warm_equals_scratch(pattern: &Pattern, data: &Graph, config: MatchConfig) -> MatchOutput {
    let warm = strong_simulation(pattern, data, &config.sequential());
    let scratch = strong_simulation(
        pattern,
        data,
        &config
            .sequential()
            .with_refine_seed(RefineSeed::FromScratch),
    );
    assert_eq!(warm.subgraphs.len(), scratch.subgraphs.len(), "{config:?}");
    for (a, b) in warm.subgraphs.iter().zip(&scratch.subgraphs) {
        assert_eq!(a.center, b.center);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.relation, b.relation);
    }
    assert_eq!(scratch.stats.balls_warm_started, 0);
    warm
}

/// A delta node entering with zero base candidates (filler label) must neither open
/// gains nor disturb the carried rows.
#[test]
fn entered_delta_node_with_zero_candidates() {
    // A(0) -> B(1) pattern over a chain whose tail is unmatchable filler.
    let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
    let labels = vec![
        Label(0),
        Label(1),
        Label(0),
        Label(9), // filler: enters the sliding ball with no candidates
        Label(9),
        Label(0),
        Label(1),
    ];
    let edges: Vec<(u32, u32)> = (0..6).map(|i| (i, i + 1)).collect();
    let data = Graph::from_edges(labels, &edges).unwrap();
    let out = warm_equals_scratch(&pattern, &data, MatchConfig::basic().with_radius(1));
    assert!(out.stats.balls_warm_started > 0, "chain never warm-started");
}

/// A departing delta node that was the last support of the carried matches: the
/// left-seeded suspects must cascade the carried pairs (and match-graph rows) away.
#[test]
fn departing_delta_node_removes_last_match() {
    // Pattern A -> B. Data: B(0) <- A(1), A(2) -> B(3), then filler; sliding right
    // first gains support through entering nodes, then loses it as the A/B prefix
    // leaves the ball.
    let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
    let labels = vec![
        Label(1), // 0: B
        Label(0), // 1: A
        Label(0), // 2: A
        Label(1), // 3: B
        Label(9), // 4: filler
        Label(9), // 5: filler
    ];
    // Matching edges 1->0 and 2->3 plus plain chain links for ball membership.
    let data = Graph::from_edges(labels, &[(1, 0), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
    let out = warm_equals_scratch(&pattern, &data, MatchConfig::basic().with_radius(1));
    // The filler centers at the end must not match: their balls lost the A support.
    assert!(out.subgraphs.iter().all(|s| s.center.0 <= 3));
    assert!(out.stats.balls_warm_started > 0);
}

/// Sliding from a hub to a leaf shrinks the ball to (nearly) the center alone; the
/// carried relation and match graph must shrink with it.
#[test]
fn ball_shrinks_towards_center_only() {
    // Star: hub 0 (A) with leaves 1..=5 (B), plus an isolated node 6 the engine jumps
    // to (radius-1 ball of a loner is center-only).
    let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
    let labels = vec![
        Label(0),
        Label(1),
        Label(1),
        Label(1),
        Label(1),
        Label(1),
        Label(1), // 6: isolated B — a center-only ball, reached by a rebuild
    ];
    let edges: Vec<(u32, u32)> = (1..=5).map(|l| (0, l)).collect();
    let data = Graph::from_edges(labels, &edges).unwrap();
    let out = warm_equals_scratch(&pattern, &data, MatchConfig::basic().with_radius(1));
    // The isolated B alone cannot match A -> B.
    assert!(out.subgraphs.iter().all(|s| s.center.0 != 6));
}

/// Forces the adaptive back-off between overlapping centers: the rebuilt forest
/// invalidates its slide delta, and the warm matcher must fall back to the membership
/// diff (or scratch) instead of translating through stale state — the regression the
/// back-off fix guards.
#[test]
fn backoff_between_overlapping_centers_stays_exact() {
    // A dense complete graph over alternating labels makes every slide degenerate, so
    // the forest backs off to rebuilds while consecutive balls still overlap almost
    // entirely.
    let n = 12u32;
    let labels: Vec<Label> = (0..n).map(|i| Label(i % 2)).collect();
    let mut edges = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                edges.push((i, j));
            }
        }
    }
    let data = Graph::from_edges(labels, &edges).unwrap();
    let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
    let out = warm_equals_scratch(&pattern, &data, MatchConfig::basic().with_radius(1));
    assert!(
        out.stats.balls_built > 1,
        "dense graph never backed off to rebuilds"
    );
    // Despite the rebuilds, overlapping memberships keep the carry alive via the diff.
    assert!(
        out.stats.balls_warm_started > 0,
        "back-off permanently killed the warm chain"
    );
}

/// A long fully matchable thick chain with wide balls: every ball extracts and the
/// membership delta stays a small fraction of the ball, so the incremental match graph
/// is exercised on the slides (rows spliced, not rebuilt).
#[test]
fn matchable_chain_reuses_match_graphs() {
    let n = 80u32;
    let labels: Vec<Label> = (0..n).map(|i| Label(i % 2)).collect();
    let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    edges.extend((0..n - 2).map(|i| (i, i + 2)));
    let data = Graph::from_edges(labels, &edges).unwrap();
    let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
    let out = warm_equals_scratch(&pattern, &data, MatchConfig::basic().with_radius(8));
    assert!(out.is_match());
    assert!(
        out.stats.match_graphs_reused > 0,
        "matchable chain never reused a match graph"
    );
    assert!(out.stats.balls_warm_started > out.stats.balls_processed / 2);
}

//! Differential properties of the multi-pattern query service
//! ([`ssim_core::service`]) against independent sessions.
//!
//! The service's whole premise is that shared work is *pure* — the edge-ball sweeps,
//! the flat materialisation and the region extractions it shares across registered
//! patterns are values every private [`IncrementalMatcher`] session would compute for
//! itself — so sharing must be observationally invisible. The independent-sessions
//! oracle pins exactly that: after every delta, every registered query's `MatchOutput`
//! (rows AND stats) and `UpdateStats` must be bit-identical to a private
//! `IncrementalMatcher` constructed on the same initial graph with the same
//! configuration and fed the same deltas. On top of the differential core:
//!
//! * **registry lifecycle** — queries registered mid-stream start from the current
//!   graph (their oracle is a fresh private session on it); deregistered queries stop
//!   being updated without disturbing the rest;
//! * **batch parity** — `QueryService::apply_batch` equals the same deltas applied one
//!   by one, per query (rows), sequential and distributed;
//! * **sharing accounting** — same-radius full-graph-sweep patterns collapse to one
//!   sweep per radius, and the shared substrate cache reports real reuse;
//! * **distributed twin** — `DistributedQueryService` tracks independent
//!   `IncrementalDistributed` sessions row for row.

mod common;

use common::{assert_bit_identical, random_delta};
use proptest::prelude::*;
use ssim_core::incremental::IncrementalMatcher;
use ssim_core::service::{PatternBuilder, QueryId, QueryService};
use ssim_core::strong::MatchConfig;
use ssim_core::UpdatePlan;
use ssim_distributed::service::DistributedQueryService;
use ssim_distributed::{DistributedConfig, IncrementalDistributed, PartitionStrategy};
use ssim_experiments::workloads::{experiment_pattern, DatasetKind};
use ssim_graph::{Label, Pattern};

/// The configuration shapes queries register under: the poles that exercise every
/// service code path — shared data-edge sweeps (basic: no dual filter), the `Gm`
/// substrate (optimized: private extraction sweeps), the splice/dedup path, a radius
/// override (distinct sweep radius) and a pinned thread count.
fn service_config(bits: u64) -> MatchConfig {
    match bits % 5 {
        0 => MatchConfig::basic(),
        1 => MatchConfig::optimized(),
        2 => MatchConfig::optimized().with_deduplication(),
        3 => MatchConfig::basic().with_radius(1),
        _ => MatchConfig::basic().with_thread_limit(2),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The core differential property: a service with N standing queries tracks N
    /// independent incremental sessions bit for bit — rows, match stats and update
    /// accounting — along a random delta stream, for every registered query, across
    /// mixed configuration shapes.
    #[test]
    fn service_is_bit_identical_to_independent_sessions(
        seed in any::<u64>(),
        nodes in 24usize..56,
        kind in 0usize..3,
        shapes in proptest::collection::vec(any::<u64>(), 2..5),
        stream in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 1..6), 1..4),
    ) {
        let kind = DatasetKind::all()[kind];
        let data = kind.generate(nodes, seed);
        let mut service = QueryService::new(data.clone());
        let mut oracles: Vec<(QueryId, IncrementalMatcher)> = Vec::new();
        for (i, &bits) in shapes.iter().enumerate() {
            let q = experiment_pattern(
                &data,
                2 + (bits % 3) as usize,
                seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1)),
            );
            let config = service_config(bits);
            let id = service.register(&q, config);
            let oracle = IncrementalMatcher::new(
                &q,
                data.clone(),
                config.with_update_plan(UpdatePlan::Incremental),
            );
            assert_bit_identical(
                service.output(id).unwrap(),
                oracle.output(),
                &format!("query {i}: initial"),
            )?;
            oracles.push((id, oracle));
        }
        let mut graph = data;
        for (step, picks) in stream.iter().enumerate() {
            let delta = random_delta(&graph, picks);
            graph = graph.apply_delta(&delta).expect("random_delta validates");
            let update = service.apply(&delta).expect("delta validates");
            prop_assert_eq!(update.queries.len(), oracles.len());
            for (i, (id, oracle)) in oracles.iter_mut().enumerate() {
                oracle.apply(&delta).expect("delta validates");
                assert_bit_identical(
                    service.output(*id).unwrap(),
                    oracle.output(),
                    &format!("query {i}: step {step}"),
                )?;
                prop_assert!(
                    service.last_update(*id).unwrap() == oracle.last_update(),
                    "query {}: step {}: update stats {:?} vs {:?}",
                    i, step, service.last_update(*id).unwrap(), oracle.last_update()
                );
            }
            prop_assert!(service.data() == graph, "step {}: substrate diverged", step);
        }
    }

    /// Registry lifecycle under churn: a query registered mid-stream equals a fresh
    /// private session on the current graph, deregistering stops updates for that id
    /// only, and the survivors keep tracking their oracles.
    #[test]
    fn mid_stream_registration_and_deregistration(
        seed in any::<u64>(),
        nodes in 24usize..48,
        kind in 0usize..3,
        picks_a in proptest::collection::vec(any::<u64>(), 1..6),
        picks_b in proptest::collection::vec(any::<u64>(), 1..6),
    ) {
        let kind = DatasetKind::all()[kind];
        let data = kind.generate(nodes, seed);
        let qa = experiment_pattern(&data, 3, seed ^ 0x9e3779b97f4a7c15);
        let qb = experiment_pattern(&data, 2, seed ^ 0x51afd44d);
        let config = MatchConfig::optimized();
        let mut service = QueryService::new(data.clone());
        let a = service.register(&qa, config);
        let mut oracle_a = IncrementalMatcher::new(&qa, data.clone(), config);

        let d1 = random_delta(&data, &picks_a);
        let graph1 = data.apply_delta(&d1).expect("random_delta validates");
        service.apply(&d1).expect("delta validates");
        oracle_a.apply(&d1).expect("delta validates");

        // Late registration: the new query's oracle is a fresh session on the
        // *current* graph — including its initial full-pass accounting.
        let b = service.register(&qb, config);
        let mut oracle_b = IncrementalMatcher::new(&qb, graph1.clone(), config);
        assert_bit_identical(
            service.output(b).unwrap(),
            oracle_b.output(),
            "late registration",
        )?;
        prop_assert!(service.last_update(b).unwrap() == oracle_b.last_update());

        // Deregister the first: its handle goes dark, the second keeps tracking.
        prop_assert!(service.deregister(a));
        prop_assert!(service.output(a).is_none());
        let d2 = random_delta(&graph1, &picks_b);
        let update = service.apply(&d2).expect("delta validates");
        oracle_b.apply(&d2).expect("delta validates");
        prop_assert!(update.queries.len() == 1, "only the live query is updated");
        prop_assert_eq!(update.queries[0].id, b);
        assert_bit_identical(
            service.output(b).unwrap(),
            oracle_b.output(),
            "survivor post-churn",
        )?;
    }

    /// Service batch parity: `apply_batch` over a stream equals the same deltas applied
    /// one by one, per registered query, and an empty batch is a no-op.
    #[test]
    fn service_apply_batch_equals_sequential(
        seed in any::<u64>(),
        nodes in 24usize..48,
        kind in 0usize..3,
        shapes in proptest::collection::vec(any::<u64>(), 2..4),
        stream in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 1..6), 2..4),
    ) {
        let kind = DatasetKind::all()[kind];
        let data = kind.generate(nodes, seed);
        let mut deltas = Vec::new();
        let mut evolved = data.clone();
        for picks in &stream {
            let delta = random_delta(&evolved, picks);
            evolved = evolved.apply_delta(&delta).expect("random_delta validates");
            deltas.push(delta);
        }
        let mut batched = QueryService::new(data.clone());
        let mut sequential = QueryService::new(data.clone());
        let mut ids = Vec::new();
        for (i, &bits) in shapes.iter().enumerate() {
            let q = experiment_pattern(
                &data,
                2 + (bits % 3) as usize,
                seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1)),
            );
            let config = service_config(bits);
            let id_b = batched.register(&q, config);
            let id_s = sequential.register(&q, config);
            prop_assert_eq!(id_b, id_s);
            ids.push(id_b);
        }
        batched.apply_batch(&deltas).expect("staged stream validates");
        for d in &deltas {
            sequential.apply(d).expect("delta validates in sequence");
        }
        for (i, id) in ids.iter().enumerate() {
            prop_assert!(
                batched.output(*id).unwrap().subgraphs
                    == sequential.output(*id).unwrap().subgraphs,
                "query {}: batch rows diverged", i
            );
        }
        prop_assert!(batched.data() == sequential.data());
        // Empty batch: no epoch movement, no query updates.
        let epoch = batched.epoch();
        let update = batched.apply_batch(&[]).expect("empty batch");
        prop_assert_eq!(batched.epoch(), epoch);
        prop_assert!(update.queries.is_empty());
    }

    /// Distributed twin: the distributed service tracks independent
    /// `IncrementalDistributed` sessions row for row along a delta stream.
    #[test]
    fn distributed_service_tracks_independent_sessions(
        seed in any::<u64>(),
        nodes in 24usize..48,
        kind in 0usize..3,
        sites in 1usize..4,
        n_patterns in 2usize..4,
        stream in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 1..6), 1..3),
    ) {
        let kind = DatasetKind::all()[kind];
        let data = kind.generate(nodes, seed);
        let config = DistributedConfig {
            sites,
            strategy: PartitionStrategy::Range,
            minimize_query: false,
            ..DistributedConfig::default()
        };
        let mut service = DistributedQueryService::new(data.clone());
        let mut oracles = Vec::new();
        for i in 0..n_patterns {
            let q = experiment_pattern(
                &data,
                2 + i % 3,
                seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1)),
            );
            let id = service.register(&q, config).expect("valid config");
            let oracle = IncrementalDistributed::new(&q, data.clone(), config)
                .expect("valid config");
            prop_assert!(
                service.output(id).unwrap().subgraphs == oracle.output().subgraphs,
                "query {}: initial distributed rows", i
            );
            oracles.push((id, oracle));
        }
        let mut graph = data;
        for (step, picks) in stream.iter().enumerate() {
            let delta = random_delta(&graph, picks);
            graph = graph.apply_delta(&delta).expect("random_delta validates");
            service.apply(&delta).expect("delta validates");
            for (i, (id, oracle)) in oracles.iter_mut().enumerate() {
                oracle.apply(&delta).expect("delta validates");
                prop_assert!(
                    service.output(*id).unwrap().subgraphs == oracle.output().subgraphs,
                    "query {}: step {}: distributed rows diverged", i, step
                );
            }
        }
    }
}

/// Deterministic sharing and builder coverage that needs no generator.
mod deterministic {
    use super::*;
    use ssim_graph::{Graph, GraphDelta, NodeId};

    fn chain(n: u32) -> Graph {
        let labels: Vec<Label> = (0..n).map(|i| Label(i % 2)).collect();
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(labels, &edges).unwrap()
    }

    fn path(labels: &[u32]) -> Pattern {
        let edges: Vec<(u32, u32)> = (0..labels.len() as u32 - 1).map(|i| (i, i + 1)).collect();
        Pattern::from_edges(labels.iter().map(|&l| Label(l)).collect(), &edges).unwrap()
    }

    /// Four same-radius patterns without the dual filter all consume the shared
    /// data-edge sweep: one sweep radius serves four consumers, and the substrate
    /// cache reports genuine cross-pattern reuse.
    #[test]
    fn overlapping_signatures_share_sweeps_and_substrate() {
        let data = chain(64);
        let patterns = [
            path(&[0, 1, 0]),
            path(&[1, 0, 1]),
            path(&[0, 1, 1]),
            path(&[1, 0, 0]),
        ];
        let mut service = QueryService::new(data);
        for q in &patterns {
            service.register(q, MatchConfig::basic());
        }
        assert_eq!(
            service.signature_groups().len(),
            1,
            "all four overlap on labels {{0, 1}}"
        );
        let mut delta = GraphDelta::new();
        delta.delete_edge(NodeId(30), NodeId(31));
        delta.insert_edge(NodeId(31), NodeId(30));
        let update = service.apply(&delta).unwrap();
        assert_eq!(update.sharing.sessions, 4);
        assert_eq!(
            update.sharing.edge_sweep_radii, 1,
            "same radius → one sweep pair"
        );
        assert_eq!(update.sharing.edge_sweep_consumers, 4);
        assert!(
            update.sharing.substrate_reuses >= update.sharing.substrate_builds,
            "four identical dirty regions must mostly hit the shared cache: {:?}",
            update.sharing
        );
        assert!(update.sharing.substrate_builds >= 1);
    }

    /// Disjoint-label patterns form separate signature groups but still share the
    /// substrate: one apply, one epoch bump, every query updated.
    #[test]
    fn disjoint_signatures_still_share_the_substrate() {
        let labels: Vec<Label> = (0..40u32).map(|i| Label(i % 4)).collect();
        let edges: Vec<(u32, u32)> = (0..39u32).map(|i| (i, i + 1)).collect();
        let data = Graph::from_edges(labels, &edges).unwrap();
        let mut service = QueryService::new(data);
        let a = service.register(&path(&[0, 1]), MatchConfig::basic());
        let b = service.register(&path(&[2, 3]), MatchConfig::basic());
        assert_eq!(service.signature_groups(), vec![vec![a], vec![b]]);
        let epoch = service.epoch();
        let mut delta = GraphDelta::new();
        delta.delete_edge(NodeId(10), NodeId(11));
        let update = service.apply(&delta).unwrap();
        assert_eq!(update.queries.len(), 2);
        assert_ne!(
            service.epoch(),
            epoch,
            "one delta, one epoch bump for everyone"
        );
    }

    /// The fluent builder wired end to end: built pattern registered, matched,
    /// updated — against a hand-checkable graph.
    #[test]
    fn builder_to_service_end_to_end() {
        // student -> book <- teacher, the paper's Q2 shape.
        let q = PatternBuilder::new()
            .component("student", Label(0))
            .component("teacher", Label(1))
            .component("book", Label(2))
            .one_way_direction("student", "book")
            .one_way_direction("teacher", "book")
            .build()
            .unwrap();
        // book 3 is recommended by both, book 4 only by the student.
        let data = Graph::from_edges(
            vec![Label(0), Label(1), Label(2), Label(2)],
            &[(0, 2), (1, 2), (0, 3)],
        )
        .unwrap();
        let mut service = QueryService::new(data);
        let id = service.register(&q, MatchConfig::optimized());
        let out = service.output(id).unwrap();
        assert!(out.is_match());
        assert!(out.subgraphs.iter().all(|s| s.nodes.contains(&NodeId(2))));
        assert!(out.subgraphs.iter().all(|s| !s.nodes.contains(&NodeId(3))));
        // Delete the teacher's recommendation: the match dies.
        let mut delta = GraphDelta::new();
        delta.delete_edge(NodeId(1), NodeId(2));
        service.apply(&delta).unwrap();
        assert!(!service.output(id).unwrap().is_match());
        // Restore it: the match returns.
        service.apply(&delta.inverse()).unwrap();
        assert!(service.output(id).unwrap().is_match());
    }
}

//! Property-based equivalence of the engine's performance layers.
//!
//! The matching engine has three layers that must be *observationally invisible*: worklist
//! refinement vs the seed's naive fixpoint, ball-local compact indexing vs `|V|`-sized
//! relations, and parallel vs sequential ball processing. Each property pits the fast path
//! against its seed-compatible oracle on random graph/pattern pairs.

use proptest::prelude::*;
use ssim_core::dual::dual_simulation_with;
use ssim_core::simulation::graph_simulation_with;
use ssim_core::strong::{strong_simulation, MatchConfig, MatchOutput};
use ssim_core::RefineStrategy;
use ssim_datasets::patterns::{random_pattern, PatternGenConfig};
use ssim_graph::{Graph, Label, Pattern};

/// Strategy: a random data graph with `n ∈ [3, 28]` nodes, up to `3n` random edges and
/// labels drawn from a 4-symbol alphabet.
fn data_graph() -> impl Strategy<Value = Graph> {
    (3usize..28).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u32..4, n);
        let edges = proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 0..(3 * n));
        (labels, edges).prop_map(|(labels, edges)| {
            Graph::from_edges(labels.into_iter().map(Label).collect(), &edges)
                .expect("endpoints are in range by construction")
        })
    })
}

/// Strategy: a random connected pattern with 2–6 nodes over the same 4-symbol alphabet.
fn pattern() -> impl Strategy<Value = Pattern> {
    (2usize..7, any::<u64>(), 1.05f64..1.4).prop_map(|(nodes, seed, alpha)| {
        random_pattern(&PatternGenConfig {
            nodes,
            alpha,
            labels: 4,
            seed,
        })
    })
}

/// Asserts two match outputs carry identical subgraph sets (centers, nodes, edges and
/// relations) and consistent top-level stats.
fn assert_same_output(a: &MatchOutput, b: &MatchOutput, context: &str) -> Result<(), String> {
    prop_assert_eq!(a.subgraphs.len(), b.subgraphs.len());
    for (x, y) in a.subgraphs.iter().zip(&b.subgraphs) {
        prop_assert!(
            x.center == y.center,
            "{context}: centers {} vs {}",
            x.center,
            y.center
        );
        prop_assert_eq!(&x.nodes, &y.nodes);
        prop_assert_eq!(&x.edges, &y.edges);
        prop_assert_eq!(&x.relation, &y.relation);
        prop_assert!(x.radius == y.radius, "{context}: radii differ");
    }
    prop_assert_eq!(a.stats.balls_considered, b.stats.balls_considered);
    prop_assert_eq!(a.stats.balls_processed, b.stats.balls_processed);
    prop_assert_eq!(a.stats.balls_skipped, b.stats.balls_skipped);
    prop_assert_eq!(a.stats.perfect_subgraphs, b.stats.perfect_subgraphs);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The worklist engine and the naive fixpoint compute the same maximum
    /// dual-simulation relation (and the same maximum plain-simulation relation).
    #[test]
    fn worklist_and_naive_refinement_agree(data in data_graph(), q in pattern()) {
        let fast = dual_simulation_with(&q, &data, RefineStrategy::Worklist);
        let naive = dual_simulation_with(&q, &data, RefineStrategy::NaiveFixpoint);
        match (fast, naive) {
            (None, None) => {}
            (Some(a), Some(b)) => prop_assert_eq!(a.to_sorted_pairs(), b.to_sorted_pairs()),
            (a, b) => prop_assert!(
                false,
                "worklist and naive disagree on matchability: {:?} vs {:?}",
                a.is_some(), b.is_some()
            ),
        }
        let fast_sim = graph_simulation_with(&q, &data, RefineStrategy::Worklist);
        let naive_sim = graph_simulation_with(&q, &data, RefineStrategy::NaiveFixpoint);
        match (fast_sim, naive_sim) {
            (None, None) => {}
            (Some(a), Some(b)) => prop_assert_eq!(a.to_sorted_pairs(), b.to_sorted_pairs()),
            (a, b) => prop_assert!(
                false,
                "worklist and naive disagree on plain simulation: {:?} vs {:?}",
                a.is_some(), b.is_some()
            ),
        }
    }

    /// Parallel and sequential strong simulation return identical `MatchOutput`s, for both
    /// the plain and the fully optimised configuration. `with_thread_limit` forces a real
    /// multi-worker fan-out even on small inputs (and on single-core machines), so the
    /// striped split + deterministic merge path is genuinely exercised.
    #[test]
    fn parallel_and_sequential_strong_simulation_agree(data in data_graph(), q in pattern()) {
        for base in [MatchConfig::basic(), MatchConfig::optimized()] {
            let sequential = strong_simulation(&q, &data, &base.sequential());
            for workers in [2usize, 5] {
                let parallel =
                    strong_simulation(&q, &data, &base.with_thread_limit(workers));
                assert_same_output(&parallel, &sequential, "parallel vs sequential")?;
            }
            let auto = strong_simulation(&q, &data, &base);
            assert_same_output(&auto, &sequential, "auto vs sequential")?;
        }
    }

    /// The compact (ball-local ids) engine agrees with the seed's `|V|`-sized path, and the
    /// full fast engine agrees with the full seed-reference engine.
    #[test]
    fn compact_and_seed_engines_agree(data in data_graph(), q in pattern()) {
        for base in [MatchConfig::basic(), MatchConfig::optimized()] {
            let compact = strong_simulation(&q, &data, &base);
            let legacy = strong_simulation(
                &q,
                &data,
                &MatchConfig { compact_balls: false, ..base },
            );
            assert_same_output(&compact, &legacy, "compact vs legacy")?;
            let seed = strong_simulation(
                &q,
                &data,
                &MatchConfig {
                    refine_strategy: RefineStrategy::NaiveFixpoint,
                    parallel: false,
                    compact_balls: false,
                    ..base
                },
            );
            assert_same_output(&compact, &seed, "fast engine vs seed engine")?;
        }
    }
}

//! Property-based equivalence of the engine's performance layers.
//!
//! The matching engine has three layers that must be *observationally invisible*: worklist
//! refinement vs the seed's naive fixpoint, ball-local compact indexing vs `|V|`-sized
//! relations, and parallel vs sequential ball processing. Each property pits the fast path
//! against its seed-compatible oracle on random graph/pattern pairs.
//!
//! The parallel layer's contract is the strongest: the work-stealing chunk scheduler must
//! keep `MatchOutput` — subgraphs *and* every stat except the scheduling-dependent
//! `chunks_stolen` — bit-identical across thread counts on every oracle axis, and the
//! partition helpers it is built from must cover `0..len` exactly for any `(len, threads)`.

mod common;

use common::{assert_bit_identical, random_delta};
use proptest::prelude::*;
use ssim_core::dual::dual_simulation_with;
use ssim_core::parallel::{chunk_plan, contiguous, stripe};
use ssim_core::simulation::graph_simulation_with;
use ssim_core::strong::{strong_simulation, MatchConfig, MatchOutput};
use ssim_core::{
    BallStrategy, BallSubstrate, IncrementalMatcher, RefineSeed, RefineStrategy, UpdatePlan,
};
use ssim_graph::{Graph, Pattern};

/// This suite stretches the shared generators a little wider than the default ranges:
/// `n ∈ [3, 28)` data nodes and 2–6 pattern nodes.
fn data_graph() -> impl Strategy<Value = Graph> {
    common::data_graph_sized(28, 4)
}

fn pattern() -> impl Strategy<Value = Pattern> {
    common::pattern_sized(7, 4)
}

/// Asserts two match outputs carry identical subgraph sets (centers, nodes, edges and
/// relations) and consistent top-level stats.
fn assert_same_output(a: &MatchOutput, b: &MatchOutput, context: &str) -> Result<(), String> {
    prop_assert_eq!(a.subgraphs.len(), b.subgraphs.len());
    for (x, y) in a.subgraphs.iter().zip(&b.subgraphs) {
        prop_assert!(
            x.center == y.center,
            "{context}: centers {} vs {}",
            x.center,
            y.center
        );
        prop_assert_eq!(&x.nodes, &y.nodes);
        prop_assert_eq!(&x.edges, &y.edges);
        prop_assert_eq!(&x.relation, &y.relation);
        prop_assert!(x.radius == y.radius, "{context}: radii differ");
    }
    prop_assert_eq!(a.stats.balls_considered, b.stats.balls_considered);
    prop_assert_eq!(a.stats.balls_processed, b.stats.balls_processed);
    prop_assert_eq!(a.stats.balls_skipped, b.stats.balls_skipped);
    prop_assert_eq!(a.stats.perfect_subgraphs, b.stats.perfect_subgraphs);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The worklist engine and the naive fixpoint compute the same maximum
    /// dual-simulation relation (and the same maximum plain-simulation relation).
    #[test]
    fn worklist_and_naive_refinement_agree(data in data_graph(), q in pattern()) {
        let fast = dual_simulation_with(&q, &data, RefineStrategy::Worklist);
        let naive = dual_simulation_with(&q, &data, RefineStrategy::NaiveFixpoint);
        match (fast, naive) {
            (None, None) => {}
            (Some(a), Some(b)) => prop_assert_eq!(a.to_sorted_pairs(), b.to_sorted_pairs()),
            (a, b) => prop_assert!(
                false,
                "worklist and naive disagree on matchability: {:?} vs {:?}",
                a.is_some(), b.is_some()
            ),
        }
        let fast_sim = graph_simulation_with(&q, &data, RefineStrategy::Worklist);
        let naive_sim = graph_simulation_with(&q, &data, RefineStrategy::NaiveFixpoint);
        match (fast_sim, naive_sim) {
            (None, None) => {}
            (Some(a), Some(b)) => prop_assert_eq!(a.to_sorted_pairs(), b.to_sorted_pairs()),
            (a, b) => prop_assert!(
                false,
                "worklist and naive disagree on plain simulation: {:?} vs {:?}",
                a.is_some(), b.is_some()
            ),
        }
    }

    /// Parallel and sequential strong simulation return identical `MatchOutput`s, for both
    /// the plain and the fully optimised configuration. `with_thread_limit` forces a real
    /// multi-worker fan-out even on small inputs (and on single-core machines), so the
    /// striped split + deterministic merge path is genuinely exercised.
    #[test]
    fn parallel_and_sequential_strong_simulation_agree(data in data_graph(), q in pattern()) {
        for base in [MatchConfig::basic(), MatchConfig::optimized()] {
            let sequential = strong_simulation(&q, &data, &base.sequential());
            for workers in [2usize, 5] {
                let parallel =
                    strong_simulation(&q, &data, &base.with_thread_limit(workers));
                assert_same_output(&parallel, &sequential, "parallel vs sequential")?;
            }
            let auto = strong_simulation(&q, &data, &base);
            assert_same_output(&auto, &sequential, "auto vs sequential")?;
        }
    }

    /// The compact (ball-local ids) engine agrees with the seed's `|V|`-sized path, and the
    /// full fast engine agrees with the full seed-reference engine.
    #[test]
    fn compact_and_seed_engines_agree(data in data_graph(), q in pattern()) {
        for base in [MatchConfig::basic(), MatchConfig::optimized()] {
            let compact = strong_simulation(&q, &data, &base);
            let legacy = strong_simulation(
                &q,
                &data,
                &MatchConfig { compact_balls: false, ..base },
            );
            assert_same_output(&compact, &legacy, "compact vs legacy")?;
            let seed = strong_simulation(
                &q,
                &data,
                &MatchConfig {
                    refine_strategy: RefineStrategy::NaiveFixpoint,
                    parallel: false,
                    compact_balls: false,
                    ..base
                },
            );
            assert_same_output(&compact, &seed, "fast engine vs seed engine")?;
        }
    }
}

/// One configuration per oracle axis (both poles where they differ from the bases):
/// `RefineStrategy`, `BallStrategy`, `RefineSeed` and `BallSubstrate` on top of the
/// plain and fully optimised bases. The fifth axis (`UpdatePlan`) only acts through the
/// incremental session and is covered by `updated_output_is_bit_identical_across_threads`.
fn axis_configs() -> Vec<MatchConfig> {
    vec![
        MatchConfig::basic(),
        MatchConfig::optimized(),
        MatchConfig::basic().with_refine_strategy(RefineStrategy::NaiveFixpoint),
        MatchConfig::basic().with_ball_strategy(BallStrategy::FreshBfs),
        MatchConfig::basic().with_refine_seed(RefineSeed::FromScratch),
        MatchConfig::optimized().with_ball_substrate(BallSubstrate::FullGraph),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `stripe`, `contiguous` and `chunk_plan` are exact partitions of `0..len` for
    /// arbitrary `(len, threads)` — no index dropped, none duplicated. The chunk plan
    /// additionally never emits an empty chunk (the scheduler's items are all real work).
    #[test]
    fn partition_helpers_cover_the_range_exactly(len in 0usize..4096, threads in 1usize..17) {
        let expected: Vec<usize> = (0..len).collect();
        let mut striped: Vec<usize> =
            (0..threads).flat_map(|t| stripe(len, threads, t)).collect();
        striped.sort_unstable();
        prop_assert!(striped == expected, "stripe gaps at len={len} threads={threads}");
        let contig: Vec<usize> =
            (0..threads).flat_map(|t| contiguous(len, threads, t)).collect();
        prop_assert!(contig == expected, "contiguous gaps at len={len} threads={threads}");
        let plan = chunk_plan(len);
        for chunk in &plan {
            prop_assert!(!chunk.is_empty(), "empty chunk for len={}", len);
        }
        let chunked: Vec<usize> = plan.iter().flat_map(|r| r.clone()).collect();
        prop_assert!(chunked == expected, "chunk_plan gaps at len={len}");
    }

    /// `MatchOutput` is bit-identical across thread counts 1/2/4/8 on every oracle axis,
    /// and the sequential engine agrees too: the chunk plan and the per-chunk state
    /// resets are functions of the input alone, so only steal attribution may vary.
    #[test]
    fn output_is_bit_identical_across_thread_counts(data in data_graph(), q in pattern()) {
        for base in axis_configs() {
            let reference = strong_simulation(&q, &data, &base.with_thread_limit(1));
            for threads in [2usize, 4, 8] {
                let out = strong_simulation(&q, &data, &base.with_thread_limit(threads));
                assert_bit_identical(&out, &reference, "thread-count bit-identity")?;
            }
            let sequential = strong_simulation(&q, &data, &base.sequential());
            assert_bit_identical(&sequential, &reference, "sequential vs one worker")?;
        }
    }

    /// The fifth oracle axis (`UpdatePlan`): incremental sessions inherit the chunk
    /// scheduler through the prepared entry points, so the post-update output is
    /// bit-identical across thread counts for both the incremental plan and the
    /// recompute oracle.
    #[test]
    fn updated_output_is_bit_identical_across_threads(
        data in data_graph(),
        q in pattern(),
        picks in proptest::collection::vec(any::<u64>(), 1..6),
    ) {
        let delta = random_delta(&data, &picks);
        for plan in [UpdatePlan::Incremental, UpdatePlan::Recompute] {
            let base = MatchConfig::optimized().with_update_plan(plan);
            let mut reference =
                IncrementalMatcher::new(&q, data.clone(), base.with_thread_limit(1));
            reference.apply(&delta).expect("delta validates");
            for threads in [2usize, 4, 8] {
                let mut session =
                    IncrementalMatcher::new(&q, data.clone(), base.with_thread_limit(threads));
                session.apply(&delta).expect("delta validates");
                assert_bit_identical(
                    session.output(),
                    reference.output(),
                    "post-update thread-count bit-identity",
                )?;
            }
        }
    }
}

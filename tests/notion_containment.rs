//! Proposition 1: the matching notions form a containment hierarchy.
//!
//! If `Q ⋐ G` (subgraph isomorphism) then `Q ≺LD G` (strong simulation); if `Q ≺LD G` then
//! `Q ≺D G` (dual simulation); and if `Q ≺D G` then `Q ≺ G` (graph simulation). On the level
//! of matched nodes this means VF2 ⊆ Match ⊆ DualSim ⊆ Sim.

use ssim_baselines::vf2::{find_embeddings, Vf2Limits};
use ssim_core::dual::dual_simulation;
use ssim_core::simulation::graph_simulation;
use ssim_core::strong::{strong_simulation, MatchConfig};
use ssim_datasets::paper;
use ssim_datasets::patterns::extract_pattern;
use ssim_datasets::reallike::amazon_like;
use ssim_datasets::synthetic::{synthetic, SyntheticConfig};
use ssim_graph::{Graph, NodeId, Pattern};
use std::collections::BTreeSet;

fn matched_nodes_by_notion(pattern: &Pattern, data: &Graph) -> [BTreeSet<NodeId>; 4] {
    let vf2 = find_embeddings(pattern, data, Vf2Limits::default());
    let vf2_nodes: BTreeSet<NodeId> = vf2
        .embeddings
        .iter()
        .flat_map(|e| e.iter().copied())
        .collect();
    let strong = strong_simulation(pattern, data, &MatchConfig::basic());
    let strong_nodes = strong.matched_nodes();
    let dual_nodes: BTreeSet<NodeId> = dual_simulation(pattern, data)
        .map(|r| {
            r.matched_data_nodes()
                .iter()
                .map(NodeId::from_index)
                .collect()
        })
        .unwrap_or_default();
    let sim_nodes: BTreeSet<NodeId> = graph_simulation(pattern, data)
        .map(|r| {
            r.matched_data_nodes()
                .iter()
                .map(NodeId::from_index)
                .collect()
        })
        .unwrap_or_default();
    [vf2_nodes, strong_nodes, dual_nodes, sim_nodes]
}

fn assert_hierarchy(pattern: &Pattern, data: &Graph, context: &str) {
    let [vf2, strong, dual, sim] = matched_nodes_by_notion(pattern, data);
    assert!(vf2.is_subset(&strong), "{context}: VF2 ⊄ strong simulation");
    assert!(
        strong.is_subset(&dual),
        "{context}: strong ⊄ dual simulation"
    );
    assert!(dual.is_subset(&sim), "{context}: dual ⊄ simulation");
    // Boolean implications of Proposition 1.
    if !vf2.is_empty() {
        assert!(!strong.is_empty(), "{context}: Q⋐G must imply Q≺LD G");
    }
    if !strong.is_empty() {
        assert!(!dual.is_empty(), "{context}: Q≺LD G must imply Q≺D G");
    }
    if !dual.is_empty() {
        assert!(!sim.is_empty(), "{context}: Q≺D G must imply Q≺G");
    }
}

#[test]
fn hierarchy_holds_on_the_paper_figures() {
    for fig in paper::all_figures() {
        assert_hierarchy(&fig.pattern, &fig.data, fig.name);
    }
}

#[test]
fn hierarchy_holds_on_synthetic_graphs() {
    for seed in 0..6u64 {
        let data = synthetic(&SyntheticConfig {
            nodes: 150,
            alpha: 1.2,
            labels: 8,
            seed,
        });
        for size in [2usize, 3, 4] {
            if let Some(pattern) = extract_pattern(&data, size, seed.wrapping_add(17)) {
                assert_hierarchy(
                    &pattern,
                    &data,
                    &format!("synthetic seed={seed} |Vq|={size}"),
                );
            }
        }
    }
}

#[test]
fn hierarchy_holds_on_amazon_like_graphs() {
    for seed in 0..3u64 {
        let data = amazon_like(200, seed);
        if let Some(pattern) = extract_pattern(&data, 4, seed) {
            assert_hierarchy(&pattern, &data, &format!("amazon seed={seed}"));
        }
    }
}

#[test]
fn closeness_ordering_matches_the_paper() {
    // Because of the containment hierarchy, closeness(Match) ≥ closeness(Sim) always holds
    // (Match matches no more nodes than Sim). Check it on a mid-size workload.
    let data = amazon_like(300, 5);
    let pattern = extract_pattern(&data, 5, 9).expect("extraction succeeds");
    let [vf2, strong, _, sim] = matched_nodes_by_notion(&pattern, &data);
    if !strong.is_empty() && !sim.is_empty() {
        let closeness_match = vf2.len() as f64 / strong.len() as f64;
        let closeness_sim = vf2.len() as f64 / sim.len() as f64;
        assert!(closeness_match >= closeness_sim);
    }
}

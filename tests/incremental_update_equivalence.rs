//! Differential properties of incremental matching under graph updates
//! ([`ssim_core::incremental`]).
//!
//! [`UpdatePlan::Incremental`] maintains the global dual-simulation fixpoint across a
//! [`GraphDelta`], invalidates only the balls within substrate distance `dQ` of a
//! touched node (Prop. 3 locality) and splices their fresh rows into the cached output.
//! The maximum relation and every per-ball result are unique, so the plan must be
//! *bit-identical* to the [`UpdatePlan::Recompute`] oracle. These properties pin it at
//! three layers:
//!
//! * **relation layer** — after every delta, the maintained global fixpoint (deletion
//!   suspect cascades + insertion re-admission closure) equals a from-scratch fixpoint
//!   over the updated graph, on arbitrary edge-soup graphs;
//! * **match layer** — along random delta streams over the workload generators, the
//!   incremental session's `MatchOutput` rows are bit-identical to the recompute
//!   oracle's and to a one-shot `strong_simulation` on the updated graph, with the
//!   other four engine axes (`RefineStrategy × BallStrategy × RefineSeed ×
//!   BallSubstrate`) pinned at their defaults AND composed into every oracle shape;
//! * **distributed layer** — the coordinator's per-site dirty-ball routing returns the
//!   same rows as a distributed recompute, and `dirty_balls + clean_balls == |V|`.
//!
//! Plus the contractual edge cases: an empty delta is a no-op (zero dirty balls), a
//! delete-then-reinsert stream round-trips to the original output, and the
//! `ExtractedSubgraph` boundary shapes (empty, all-matched, single-node, emptied-by-
//! delta `Gm`) behave.

mod common;

use common::{data_graph, pattern, random_delta};
use proptest::prelude::*;
use ssim_core::ball::{BallStrategy, BallSubstrate};
use ssim_core::incremental::{global_fixpoint, update_global_fixpoint, IncrementalMatcher};
use ssim_core::simulation::{RefineSeed, RefineStrategy};
use ssim_core::strong::{strong_simulation, MatchConfig, MatchOutput};
use ssim_core::UpdatePlan;
use ssim_distributed::{DistributedConfig, IncrementalDistributed, PartitionStrategy};
use ssim_experiments::workloads::{experiment_pattern, DatasetKind};
use ssim_graph::{Graph, GraphDelta, Label, NodeId, Pattern};

/// Asserts two match outputs agree on every subgraph bit. Work stats are excluded by
/// design: the incremental plan processes only dirty balls, so the ball counters differ
/// from a full pass — that difference is the feature.
fn assert_same_rows(a: &MatchOutput, b: &MatchOutput, context: &str) -> Result<(), String> {
    prop_assert!(
        a.subgraphs.len() == b.subgraphs.len(),
        "{context}: {} vs {} subgraphs",
        a.subgraphs.len(),
        b.subgraphs.len()
    );
    for (x, y) in a.subgraphs.iter().zip(&b.subgraphs) {
        // Derived PartialEq covers every field (center, radius, nodes, edges, relation).
        prop_assert!(x == y, "{context}: row {:?} != {:?}", x, y);
    }
    Ok(())
}

/// The oracle-matrix shapes the update axis is composed with: the four other axes
/// pinned at their defaults, each flipped to its oracle, the full seed shape, and the
/// paper-level toggles (dedup, radius override) that interact with row splicing.
fn config_matrix() -> Vec<(&'static str, MatchConfig)> {
    vec![
        ("basic", MatchConfig::basic()),
        ("optimized", MatchConfig::optimized()),
        (
            "naive-fixpoint",
            MatchConfig::basic().with_refine_strategy(RefineStrategy::NaiveFixpoint),
        ),
        (
            "fresh-balls",
            MatchConfig::basic().with_ball_strategy(BallStrategy::FreshBfs),
        ),
        (
            "scratch-seed",
            MatchConfig::basic().with_refine_seed(RefineSeed::FromScratch),
        ),
        (
            "full-substrate",
            MatchConfig::optimized().with_ball_substrate(BallSubstrate::FullGraph),
        ),
        (
            "legacy-balls",
            MatchConfig {
                compact_balls: false,
                ..MatchConfig::optimized()
            },
        ),
        (
            "seed-shape",
            MatchConfig {
                update_plan: UpdatePlan::Incremental,
                ..MatchConfig::seed_reference()
            },
        ),
        ("sequential", MatchConfig::optimized().sequential()),
        ("threads-3", MatchConfig::basic().with_thread_limit(3)),
        ("dedup", MatchConfig::optimized().with_deduplication()),
        ("radius-1", MatchConfig::basic().with_radius(1)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Relation layer: the maintained global fixpoint equals a from-scratch fixpoint
    /// after every delta of a stream, on arbitrary edge soup (the harshest shapes for
    /// the re-admission closure and the suspect cascade).
    #[test]
    fn maintained_fixpoint_equals_scratch(
        data in data_graph(),
        q in pattern(),
        stream in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 1..8), 1..5),
    ) {
        let mut graph = data;
        let mut fix = global_fixpoint(&q, &graph, RefineStrategy::Worklist);
        for (i, picks) in stream.iter().enumerate() {
            let delta = random_delta(&graph, picks);
            let new_graph = graph.apply_delta(&delta).expect("random_delta validates");
            let up = update_global_fixpoint(&q, &new_graph, &delta, &fix, RefineStrategy::Worklist);
            let scratch = global_fixpoint(&q, &new_graph, RefineStrategy::Worklist);
            prop_assert!(
                up.relation.to_sorted_pairs() == scratch.to_sorted_pairs(),
                "step {} ({} ops): maintained {:?} vs scratch {:?}",
                i,
                delta.op_count(),
                up.relation.to_sorted_pairs(),
                scratch.to_sorted_pairs()
            );
            // The changed-node set covers every data node whose candidacy flipped.
            for u in q.nodes() {
                for v in new_graph.nodes() {
                    if fix.contains(u, v) != scratch.contains(u, v) {
                        prop_assert!(
                            up.changed_nodes.contains(v.index()),
                            "step {}: unreported change at {}", i, v
                        );
                    }
                }
            }
            fix = scratch;
            graph = new_graph;
        }
    }

    /// Match layer, pinned axes: along a delta stream over the workload generators the
    /// incremental session equals the recompute oracle and the one-shot matcher, for
    /// every shape of the engine-oracle matrix.
    #[test]
    fn incremental_equals_recompute_across_the_matrix(
        seed in any::<u64>(),
        nodes in 24usize..56,
        kind in 0usize..3,
        pattern_nodes in 2usize..5,
        stream in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 1..6), 1..4),
    ) {
        let kind = DatasetKind::all()[kind];
        let data = kind.generate(nodes, seed);
        let q = experiment_pattern(&data, pattern_nodes, seed ^ 0x9e3779b97f4a7c15);
        for (name, config) in config_matrix() {
            let incremental_cfg = config.with_update_plan(UpdatePlan::Incremental);
            let oracle_cfg = config.with_update_plan(UpdatePlan::Recompute);
            let mut inc = IncrementalMatcher::new(&q, data.clone(), incremental_cfg);
            let mut oracle = IncrementalMatcher::new(&q, data.clone(), oracle_cfg);
            assert_same_rows(inc.output(), oracle.output(), &format!("{name}: initial"))?;
            for (i, picks) in stream.iter().enumerate() {
                let delta = random_delta(&inc.data(), picks);
                inc.apply(&delta).expect("delta validates");
                oracle.apply(&delta).expect("delta validates");
                assert_same_rows(
                    inc.output(),
                    oracle.output(),
                    &format!("{name}: step {i} ({} ops)", delta.op_count()),
                )?;
                // The dirty/clean split covers the graph exactly.
                let up = inc.last_update();
                prop_assert!(
                    up.dirty_balls + up.clean_balls == inc.data().node_count(),
                    "{}: step {}: dirty {} + clean {} != |V|",
                    name,
                    i,
                    up.dirty_balls,
                    up.clean_balls
                );
            }
            // One-shot cross-check on the final graph (bit-identical rows again).
            let oneshot = strong_simulation(&q, &inc.data(), &incremental_cfg);
            assert_same_rows(inc.output(), &oneshot, &format!("{name}: vs one-shot"))?;
        }
    }

    /// Distributed layer: coordinator-side maintenance with per-site dirty-ball routing
    /// equals a distributed recompute, across sites, partition strategies, the dual
    /// filter and both ball substrates.
    #[test]
    fn distributed_incremental_equals_recompute(
        seed in any::<u64>(),
        nodes in 24usize..56,
        kind in 0usize..3,
        pattern_nodes in 2usize..5,
        sites in 1usize..5,
        strategy in 0usize..2,
        stream in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 1..6), 1..3),
    ) {
        let kind = DatasetKind::all()[kind];
        let data = kind.generate(nodes, seed);
        let q = experiment_pattern(&data, pattern_nodes, seed ^ 0x9e3779b97f4a7c15);
        let strategy = [PartitionStrategy::Hash, PartitionStrategy::Range][strategy];
        for (dual_filter, substrate) in [
            (false, BallSubstrate::MatchGraph),
            (true, BallSubstrate::MatchGraph),
            (true, BallSubstrate::FullGraph),
        ] {
            let base = DistributedConfig {
                sites,
                strategy,
                minimize_query: false,
                dual_filter,
                ball_substrate: substrate,
                ..DistributedConfig::default()
            };
            let mut inc = IncrementalDistributed::new(&q, data.clone(), base)
                .expect("valid distributed config");
            let mut oracle = IncrementalDistributed::new(
                &q,
                data.clone(),
                DistributedConfig { update_plan: UpdatePlan::Recompute, ..base },
            )
            .expect("valid distributed config");
            for (i, picks) in stream.iter().enumerate() {
                let delta = random_delta(&inc.data(), picks);
                inc.apply(&delta).expect("delta validates");
                oracle.apply(&delta).expect("delta validates");
                let ctx = format!(
                    "sites={sites} {strategy:?} dual={dual_filter} {substrate:?} step {i}"
                );
                prop_assert!(
                    inc.output().subgraphs == oracle.output().subgraphs,
                    "{}: distributed rows diverged", ctx
                );
                let traffic = &inc.output().traffic;
                prop_assert!(
                    traffic.dirty_balls + traffic.clean_balls == inc.data().node_count(),
                    "{}: dirty {} + clean {} != |V|",
                    ctx,
                    traffic.dirty_balls,
                    traffic.clean_balls
                );
            }
        }
    }

    /// An empty delta is a no-op: zero dirty balls, identical rows, untouched graph.
    #[test]
    fn empty_delta_is_a_no_op(
        seed in any::<u64>(),
        nodes in 24usize..56,
        kind in 0usize..3,
        pattern_nodes in 2usize..5,
    ) {
        let kind = DatasetKind::all()[kind];
        let data = kind.generate(nodes, seed);
        let q = experiment_pattern(&data, pattern_nodes, seed ^ 0x9e3779b97f4a7c15);
        for config in [MatchConfig::basic(), MatchConfig::optimized()] {
            let mut inc = IncrementalMatcher::new(&q, data.clone(), config);
            let before = inc.output().clone();
            inc.apply(&GraphDelta::new()).expect("empty deltas validate");
            assert_same_rows(&before, inc.output(), "empty delta")?;
            prop_assert_eq!(inc.last_update().dirty_balls, 0);
            prop_assert_eq!(inc.last_update().clean_balls, data.node_count());
            prop_assert_eq!(inc.last_update().pairs_gained, 0);
            prop_assert_eq!(inc.last_update().pairs_lost, 0);
        }
    }

    /// Batch parity: `apply_batch` over a delta stream equals the same deltas applied
    /// one by one — identical rows and identical final graph — across both update plans
    /// (splice path included via dedup), sequential and distributed. Plus the
    /// contractual edges: an empty batch is a no-op and a single-delta batch equals
    /// `apply`.
    #[test]
    fn apply_batch_equals_sequential_applies(
        seed in any::<u64>(),
        nodes in 24usize..56,
        kind in 0usize..3,
        pattern_nodes in 2usize..5,
        stream in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 1..6), 2..4),
    ) {
        let kind = DatasetKind::all()[kind];
        let data = kind.generate(nodes, seed);
        let q = experiment_pattern(&data, pattern_nodes, seed ^ 0x9e3779b97f4a7c15);
        // Build the stream against the evolving graph, so every delta validates at its
        // position (and only there — later deltas may touch edges earlier ones made).
        let mut deltas = Vec::new();
        let mut evolved = data.clone();
        for picks in &stream {
            let delta = random_delta(&evolved, picks);
            evolved = evolved.apply_delta(&delta).expect("random_delta validates");
            deltas.push(delta);
        }
        for (name, config) in [
            ("basic", MatchConfig::basic()),
            ("optimized", MatchConfig::optimized()),
            ("dedup", MatchConfig::optimized().with_deduplication()),
        ] {
            for plan in [UpdatePlan::Incremental, UpdatePlan::Recompute] {
                let cfg = config.with_update_plan(plan);
                let mut batch = IncrementalMatcher::new(&q, data.clone(), cfg);
                let mut seq = IncrementalMatcher::new(&q, data.clone(), cfg);
                for d in &deltas {
                    seq.apply(d).expect("delta validates in sequence");
                }
                batch.apply_batch(&deltas).expect("staged stream validates");
                let ctx = format!("{name} {plan:?}");
                assert_same_rows(batch.output(), seq.output(), &format!("{ctx}: batch"))?;
                prop_assert!(batch.data() == seq.data(), "{ctx}: final graphs differ");
                // Empty batch: a no-op that touches nothing.
                let before = batch.output().clone();
                batch.apply_batch(&[]).expect("empty batch");
                assert_same_rows(&before, batch.output(), &format!("{ctx}: empty batch"))?;
                // Single-delta batch == plain apply, bit for bit including stats.
                let mut via_batch = IncrementalMatcher::new(&q, data.clone(), cfg);
                let mut via_apply = IncrementalMatcher::new(&q, data.clone(), cfg);
                via_batch.apply_batch(&deltas[..1]).expect("delta validates");
                via_apply.apply(&deltas[0]).expect("delta validates");
                common::assert_bit_identical(
                    via_batch.output(),
                    via_apply.output(),
                    &format!("{ctx}: single-delta batch"),
                )?;
                prop_assert!(
                    via_batch.last_update() == via_apply.last_update(),
                    "{ctx}: single-delta batch update stats differ"
                );
            }
        }
        // Distributed: same parity through the coordinator, both plans.
        for plan in [UpdatePlan::Incremental, UpdatePlan::Recompute] {
            let cfg = DistributedConfig {
                sites: 3,
                strategy: PartitionStrategy::Range,
                minimize_query: false,
                update_plan: plan,
                ..DistributedConfig::default()
            };
            let mut batch = IncrementalDistributed::new(&q, data.clone(), cfg)
                .expect("valid distributed config");
            let mut seq = IncrementalDistributed::new(&q, data.clone(), cfg)
                .expect("valid distributed config");
            for d in &deltas {
                seq.apply(d).expect("delta validates in sequence");
            }
            batch.apply_batch(&deltas).expect("staged stream validates");
            prop_assert!(
                batch.output().subgraphs == seq.output().subgraphs,
                "distributed {plan:?}: batch rows diverged"
            );
            prop_assert!(batch.data() == seq.data(), "distributed {plan:?}: graphs differ");
        }
    }

    /// Delete-then-reinsert round-trips: applying a deletion batch and then its inverse
    /// restores the graph and the output bit-for-bit.
    #[test]
    fn delete_then_reinsert_round_trips(
        seed in any::<u64>(),
        nodes in 24usize..56,
        kind in 0usize..3,
        pattern_nodes in 2usize..5,
        picks in proptest::collection::vec(any::<u64>(), 1..8),
    ) {
        let kind = DatasetKind::all()[kind];
        let data = kind.generate(nodes, seed);
        let q = experiment_pattern(&data, pattern_nodes, seed ^ 0x9e3779b97f4a7c15);
        // Deletions only: force every pick odd.
        let dels: Vec<u64> = picks.iter().map(|p| p | 1).collect();
        for config in [MatchConfig::basic(), MatchConfig::optimized()] {
            let mut inc = IncrementalMatcher::new(&q, data.clone(), config);
            let before = inc.output().clone();
            let delta = random_delta(&inc.data(), &dels);
            inc.apply(&delta).expect("delta validates");
            inc.apply(&delta.inverse()).expect("inverse validates");
            prop_assert!(inc.data() == data, "graph round-trips");
            assert_same_rows(&before, inc.output(), "delete-then-reinsert")?;
        }
    }
}

/// Regression coverage for label-pin validation across `apply_batch`'s then-fold:
/// `apply_batch` folds the stream into one net delta, so a pin that is only meaningful
/// against an *intermediate* state (its edge appears earlier in the same batch) never
/// reaches `GraphDelta::validate` against the initial graph — the staged sequential
/// pre-validation is what keeps batch semantics identical to sequential `apply`.
mod apply_batch_label_pins {
    use super::*;

    fn fixture() -> (Pattern, Graph) {
        let q = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let data =
            Graph::from_edges(vec![Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]).unwrap();
        (q, data)
    }

    /// A pinned deletion of an edge that only exists mid-batch (inserted by the
    /// previous delta): invalid against the initial graph, valid at its position.
    /// Batch and sequential must agree on rows and final graph.
    #[test]
    fn pin_valid_only_at_an_intermediate_state_matches_sequential() {
        let (q, data) = fixture();
        let mut d1 = GraphDelta::new();
        d1.insert_edge(NodeId(2), NodeId(0));
        let mut d2 = GraphDelta::new();
        d2.delete_edge_labeled(NodeId(2), NodeId(0), Label(2), Label(0));
        // Sanity: the net effect cancels, and d2 alone is invalid at the start.
        assert!(data.clone().apply_delta(&d2).is_err());
        for plan in [UpdatePlan::Incremental, UpdatePlan::Recompute] {
            for config in [MatchConfig::basic(), MatchConfig::optimized()] {
                let cfg = config.with_update_plan(plan);
                let mut batch = IncrementalMatcher::new(&q, data.clone(), cfg);
                let mut seq = IncrementalMatcher::new(&q, data.clone(), cfg);
                seq.apply(&d1).unwrap();
                seq.apply(&d2).unwrap();
                batch
                    .apply_batch(&[d1.clone(), d2.clone()])
                    .expect("the staged stream validates at every position");
                assert_eq!(batch.data(), seq.data(), "{plan:?}: final graphs");
                assert_eq!(batch.data(), data, "the batch nets out to a no-op");
                assert_eq!(
                    batch.output().subgraphs,
                    seq.output().subgraphs,
                    "{plan:?}: rows"
                );
            }
        }
    }

    /// The mirror stream: a pinned deletion first, then reinsertion of the same edge.
    /// The fold cancels the pair; sequential pays two applies. Rows and graphs agree.
    #[test]
    fn pinned_delete_then_reinsert_folds_to_a_no_op() {
        let (q, data) = fixture();
        let mut d1 = GraphDelta::new();
        d1.delete_edge_labeled(NodeId(0), NodeId(1), Label(0), Label(1));
        let mut d2 = GraphDelta::new();
        d2.insert_edge(NodeId(0), NodeId(1));
        for plan in [UpdatePlan::Incremental, UpdatePlan::Recompute] {
            let cfg = MatchConfig::optimized().with_update_plan(plan);
            let mut batch = IncrementalMatcher::new(&q, data.clone(), cfg);
            let mut seq = IncrementalMatcher::new(&q, data.clone(), cfg);
            let before = batch.output().clone();
            seq.apply(&d1).unwrap();
            seq.apply(&d2).unwrap();
            batch.apply_batch(&[d1.clone(), d2.clone()]).unwrap();
            assert_eq!(batch.data(), seq.data(), "{plan:?}: final graphs");
            assert_eq!(batch.output().subgraphs, seq.output().subgraphs, "{plan:?}");
            assert_eq!(
                batch.output().subgraphs,
                before.subgraphs,
                "{plan:?}: net no-op restores the original rows"
            );
        }
    }

    /// A mid-stream pin that is wrong at its own position must reject the whole batch
    /// up front and leave the session untouched — graph, rows and update accounting.
    #[test]
    fn mid_stream_invalid_pin_rejects_the_whole_batch() {
        let (q, data) = fixture();
        let mut d1 = GraphDelta::new();
        d1.insert_edge(NodeId(2), NodeId(0));
        let mut bad = GraphDelta::new();
        // The edge exists after d1, but the target-label pin is wrong everywhere.
        bad.delete_edge_labeled(NodeId(2), NodeId(0), Label(2), Label(5));
        for plan in [UpdatePlan::Incremental, UpdatePlan::Recompute] {
            let cfg = MatchConfig::optimized().with_update_plan(plan);
            let mut m = IncrementalMatcher::new(&q, data.clone(), cfg);
            let before = m.output().clone();
            let stats_before = m.last_update().clone();
            assert!(
                m.apply_batch(&[d1.clone(), bad.clone()]).is_err(),
                "{plan:?}: the wrong pin must fail staging"
            );
            assert_eq!(m.data(), data, "{plan:?}: graph untouched");
            assert_eq!(
                m.output().subgraphs,
                before.subgraphs,
                "{plan:?}: rows untouched"
            );
            assert_eq!(
                m.last_update(),
                &stats_before,
                "{plan:?}: accounting untouched"
            );
        }
    }
}

/// `ExtractedSubgraph` boundary shapes, exercised through the matcher pipeline rather
/// than the extraction API alone.
mod gm_edge_cases {
    use super::*;

    /// Empty matched set: the pattern's label is absent, the global relation is empty,
    /// and no `Gm` is ever extracted (the engine returns before extraction).
    #[test]
    fn empty_matched_set_skips_extraction() {
        let pattern = Pattern::from_edges(vec![Label(9), Label(8)], &[(0, 1)]).unwrap();
        let data = Graph::from_edges(vec![Label(0); 6], &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let out = strong_simulation(&pattern, &data, &MatchConfig::optimized());
        assert!(!out.is_match());
        assert_eq!(out.stats.gm_nodes, 0);
        assert_eq!(out.stats.gm_edges, 0);
        assert_eq!(out.stats.balls_skipped, data.node_count());
        // The incremental session agrees and keeps agreeing over a delta.
        let mut inc = IncrementalMatcher::new(&pattern, data.clone(), MatchConfig::optimized());
        assert!(inc.output().subgraphs.is_empty());
        let mut delta = GraphDelta::new();
        delta.insert_edge(NodeId(2), NodeId(0));
        inc.apply(&delta).unwrap();
        assert!(inc.output().subgraphs.is_empty());
    }

    /// All-matched: every data node survives the dual filter, so `Gm == G` and the
    /// substrates must agree bit-for-bit.
    fn all_matched_ring() -> (Pattern, Graph) {
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1), (1, 0)]).unwrap();
        let n = 8u32;
        let labels: Vec<Label> = (0..n).map(|i| Label(i % 2)).collect();
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        (pattern, Graph::from_edges(labels, &edges).unwrap())
    }

    #[test]
    fn all_matched_gm_equals_g() {
        let (pattern, data) = all_matched_ring();
        let gm = strong_simulation(&pattern, &data, &MatchConfig::optimized());
        assert_eq!(gm.stats.gm_nodes, data.node_count(), "Gm == G");
        assert_eq!(gm.stats.gm_edges, data.edge_count());
        assert_eq!(gm.stats.balls_skipped, 0);
        let full = strong_simulation(
            &pattern,
            &data,
            &MatchConfig::optimized().with_ball_substrate(BallSubstrate::FullGraph),
        );
        assert_eq!(gm.subgraphs.len(), full.subgraphs.len());
        for (a, b) in gm.subgraphs.iter().zip(&full.subgraphs) {
            assert_eq!(a.center, b.center);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.edges, b.edges);
            assert_eq!(a.relation, b.relation);
        }
    }

    /// Single-node `Gm`: exactly one data node matches a single-node pattern.
    #[test]
    fn single_node_gm() {
        let pattern = Pattern::from_edges(vec![Label(7)], &[]).unwrap();
        let data =
            Graph::from_edges(vec![Label(0), Label(7), Label(0)], &[(0, 1), (1, 2)]).unwrap();
        let out = strong_simulation(&pattern, &data, &MatchConfig::optimized());
        assert_eq!(out.stats.gm_nodes, 1);
        assert_eq!(out.stats.gm_edges, 0, "a single member induces no edge");
        assert_eq!(out.subgraphs.len(), 1);
        assert_eq!(out.subgraphs[0].nodes, vec![NodeId(1)]);
    }

    /// A delta that empties `Gm` entirely: deleting the supporting edge makes the
    /// global relation non-total (hence empty), the cached extraction is dropped, and
    /// re-inserting restores everything bit-for-bit.
    #[test]
    fn delta_that_empties_gm() {
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let data =
            Graph::from_edges(vec![Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]).unwrap();
        let mut inc = IncrementalMatcher::new(&pattern, data, MatchConfig::optimized());
        let before = inc.output().clone();
        assert!(inc.output().is_match());
        assert_eq!(inc.output().stats.gm_nodes, 2);
        let mut kill = GraphDelta::new();
        kill.delete_edge(NodeId(0), NodeId(1));
        inc.apply(&kill).unwrap();
        assert!(!inc.output().is_match(), "the only match is gone");
        assert!(inc.output().subgraphs.is_empty());
        assert_eq!(inc.output().stats.gm_nodes, 0, "Gm emptied");
        assert_eq!(inc.last_update().pairs_lost, 2);
        // The oracle agrees on the emptied graph.
        let oneshot = strong_simulation(&pattern, &inc.data(), &MatchConfig::optimized());
        assert!(oneshot.subgraphs.is_empty());
        // Round-trip: reinsertion restores the original output.
        inc.apply(&kill.inverse()).unwrap();
        assert_eq!(inc.output().subgraphs.len(), before.subgraphs.len());
        for (a, b) in inc.output().subgraphs.iter().zip(&before.subgraphs) {
            assert_eq!(a.center, b.center);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.edges, b.edges);
            assert_eq!(a.relation, b.relation);
        }
        assert_eq!(inc.output().stats.gm_nodes, 2, "Gm restored");
    }
}

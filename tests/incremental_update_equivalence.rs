//! Differential properties of incremental matching under graph updates
//! ([`ssim_core::incremental`]).
//!
//! [`UpdatePlan::Incremental`] maintains the global dual-simulation fixpoint across a
//! [`GraphDelta`], invalidates only the balls within substrate distance `dQ` of a
//! touched node (Prop. 3 locality) and splices their fresh rows into the cached output.
//! The maximum relation and every per-ball result are unique, so the plan must be
//! *bit-identical* to the [`UpdatePlan::Recompute`] oracle. These properties pin it at
//! three layers:
//!
//! * **relation layer** — after every delta, the maintained global fixpoint (deletion
//!   suspect cascades + insertion re-admission closure) equals a from-scratch fixpoint
//!   over the updated graph, on arbitrary edge-soup graphs;
//! * **match layer** — along random delta streams over the workload generators, the
//!   incremental session's `MatchOutput` rows are bit-identical to the recompute
//!   oracle's and to a one-shot `strong_simulation` on the updated graph, with the
//!   other four engine axes (`RefineStrategy × BallStrategy × RefineSeed ×
//!   BallSubstrate`) pinned at their defaults AND composed into every oracle shape;
//! * **distributed layer** — the coordinator's per-site dirty-ball routing returns the
//!   same rows as a distributed recompute, and `dirty_balls + clean_balls == |V|`.
//!
//! Plus the contractual edge cases: an empty delta is a no-op (zero dirty balls), a
//! delete-then-reinsert stream round-trips to the original output, and the
//! `ExtractedSubgraph` boundary shapes (empty, all-matched, single-node, emptied-by-
//! delta `Gm`) behave.

mod common;

use common::{data_graph, pattern, random_delta};
use proptest::prelude::*;
use ssim_core::ball::{BallStrategy, BallSubstrate};
use ssim_core::incremental::{global_fixpoint, update_global_fixpoint, IncrementalMatcher};
use ssim_core::simulation::{RefineSeed, RefineStrategy};
use ssim_core::strong::{strong_simulation, MatchConfig, MatchOutput};
use ssim_core::UpdatePlan;
use ssim_distributed::{DistributedConfig, IncrementalDistributed, PartitionStrategy};
use ssim_experiments::workloads::{experiment_pattern, DatasetKind};
use ssim_graph::{Graph, GraphDelta, Label, NodeId, Pattern};

/// Asserts two match outputs agree on every subgraph bit. Work stats are excluded by
/// design: the incremental plan processes only dirty balls, so the ball counters differ
/// from a full pass — that difference is the feature.
fn assert_same_rows(a: &MatchOutput, b: &MatchOutput, context: &str) -> Result<(), String> {
    prop_assert!(
        a.subgraphs.len() == b.subgraphs.len(),
        "{context}: {} vs {} subgraphs",
        a.subgraphs.len(),
        b.subgraphs.len()
    );
    for (x, y) in a.subgraphs.iter().zip(&b.subgraphs) {
        // Derived PartialEq covers every field (center, radius, nodes, edges, relation).
        prop_assert!(x == y, "{context}: row {:?} != {:?}", x, y);
    }
    Ok(())
}

/// The oracle-matrix shapes the update axis is composed with: the four other axes
/// pinned at their defaults, each flipped to its oracle, the full seed shape, and the
/// paper-level toggles (dedup, radius override) that interact with row splicing.
fn config_matrix() -> Vec<(&'static str, MatchConfig)> {
    vec![
        ("basic", MatchConfig::basic()),
        ("optimized", MatchConfig::optimized()),
        (
            "naive-fixpoint",
            MatchConfig::basic().with_refine_strategy(RefineStrategy::NaiveFixpoint),
        ),
        (
            "fresh-balls",
            MatchConfig::basic().with_ball_strategy(BallStrategy::FreshBfs),
        ),
        (
            "scratch-seed",
            MatchConfig::basic().with_refine_seed(RefineSeed::FromScratch),
        ),
        (
            "full-substrate",
            MatchConfig::optimized().with_ball_substrate(BallSubstrate::FullGraph),
        ),
        (
            "legacy-balls",
            MatchConfig {
                compact_balls: false,
                ..MatchConfig::optimized()
            },
        ),
        (
            "seed-shape",
            MatchConfig {
                update_plan: UpdatePlan::Incremental,
                ..MatchConfig::seed_reference()
            },
        ),
        ("sequential", MatchConfig::optimized().sequential()),
        ("threads-3", MatchConfig::basic().with_thread_limit(3)),
        ("dedup", MatchConfig::optimized().with_deduplication()),
        ("radius-1", MatchConfig::basic().with_radius(1)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Relation layer: the maintained global fixpoint equals a from-scratch fixpoint
    /// after every delta of a stream, on arbitrary edge soup (the harshest shapes for
    /// the re-admission closure and the suspect cascade).
    #[test]
    fn maintained_fixpoint_equals_scratch(
        data in data_graph(),
        q in pattern(),
        stream in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 1..8), 1..5),
    ) {
        let mut graph = data;
        let mut fix = global_fixpoint(&q, &graph, RefineStrategy::Worklist);
        for (i, picks) in stream.iter().enumerate() {
            let delta = random_delta(&graph, picks);
            let new_graph = graph.apply_delta(&delta).expect("random_delta validates");
            let up = update_global_fixpoint(&q, &new_graph, &delta, &fix, RefineStrategy::Worklist);
            let scratch = global_fixpoint(&q, &new_graph, RefineStrategy::Worklist);
            prop_assert!(
                up.relation.to_sorted_pairs() == scratch.to_sorted_pairs(),
                "step {} ({} ops): maintained {:?} vs scratch {:?}",
                i,
                delta.op_count(),
                up.relation.to_sorted_pairs(),
                scratch.to_sorted_pairs()
            );
            // The changed-node set covers every data node whose candidacy flipped.
            for u in q.nodes() {
                for v in new_graph.nodes() {
                    if fix.contains(u, v) != scratch.contains(u, v) {
                        prop_assert!(
                            up.changed_nodes.contains(v.index()),
                            "step {}: unreported change at {}", i, v
                        );
                    }
                }
            }
            fix = scratch;
            graph = new_graph;
        }
    }

    /// Match layer, pinned axes: along a delta stream over the workload generators the
    /// incremental session equals the recompute oracle and the one-shot matcher, for
    /// every shape of the engine-oracle matrix.
    #[test]
    fn incremental_equals_recompute_across_the_matrix(
        seed in any::<u64>(),
        nodes in 24usize..56,
        kind in 0usize..3,
        pattern_nodes in 2usize..5,
        stream in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 1..6), 1..4),
    ) {
        let kind = DatasetKind::all()[kind];
        let data = kind.generate(nodes, seed);
        let q = experiment_pattern(&data, pattern_nodes, seed ^ 0x9e3779b97f4a7c15);
        for (name, config) in config_matrix() {
            let incremental_cfg = config.with_update_plan(UpdatePlan::Incremental);
            let oracle_cfg = config.with_update_plan(UpdatePlan::Recompute);
            let mut inc = IncrementalMatcher::new(&q, data.clone(), incremental_cfg);
            let mut oracle = IncrementalMatcher::new(&q, data.clone(), oracle_cfg);
            assert_same_rows(inc.output(), oracle.output(), &format!("{name}: initial"))?;
            for (i, picks) in stream.iter().enumerate() {
                let delta = random_delta(&inc.data(), picks);
                inc.apply(&delta).expect("delta validates");
                oracle.apply(&delta).expect("delta validates");
                assert_same_rows(
                    inc.output(),
                    oracle.output(),
                    &format!("{name}: step {i} ({} ops)", delta.op_count()),
                )?;
                // The dirty/clean split covers the graph exactly.
                let up = inc.last_update();
                prop_assert!(
                    up.dirty_balls + up.clean_balls == inc.data().node_count(),
                    "{}: step {}: dirty {} + clean {} != |V|",
                    name,
                    i,
                    up.dirty_balls,
                    up.clean_balls
                );
            }
            // One-shot cross-check on the final graph (bit-identical rows again).
            let oneshot = strong_simulation(&q, &inc.data(), &incremental_cfg);
            assert_same_rows(inc.output(), &oneshot, &format!("{name}: vs one-shot"))?;
        }
    }

    /// Distributed layer: coordinator-side maintenance with per-site dirty-ball routing
    /// equals a distributed recompute, across sites, partition strategies, the dual
    /// filter and both ball substrates.
    #[test]
    fn distributed_incremental_equals_recompute(
        seed in any::<u64>(),
        nodes in 24usize..56,
        kind in 0usize..3,
        pattern_nodes in 2usize..5,
        sites in 1usize..5,
        strategy in 0usize..2,
        stream in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 1..6), 1..3),
    ) {
        let kind = DatasetKind::all()[kind];
        let data = kind.generate(nodes, seed);
        let q = experiment_pattern(&data, pattern_nodes, seed ^ 0x9e3779b97f4a7c15);
        let strategy = [PartitionStrategy::Hash, PartitionStrategy::Range][strategy];
        for (dual_filter, substrate) in [
            (false, BallSubstrate::MatchGraph),
            (true, BallSubstrate::MatchGraph),
            (true, BallSubstrate::FullGraph),
        ] {
            let base = DistributedConfig {
                sites,
                strategy,
                minimize_query: false,
                dual_filter,
                ball_substrate: substrate,
                ..DistributedConfig::default()
            };
            let mut inc = IncrementalDistributed::new(&q, data.clone(), base)
                .expect("valid distributed config");
            let mut oracle = IncrementalDistributed::new(
                &q,
                data.clone(),
                DistributedConfig { update_plan: UpdatePlan::Recompute, ..base },
            )
            .expect("valid distributed config");
            for (i, picks) in stream.iter().enumerate() {
                let delta = random_delta(&inc.data(), picks);
                inc.apply(&delta).expect("delta validates");
                oracle.apply(&delta).expect("delta validates");
                let ctx = format!(
                    "sites={sites} {strategy:?} dual={dual_filter} {substrate:?} step {i}"
                );
                prop_assert!(
                    inc.output().subgraphs == oracle.output().subgraphs,
                    "{}: distributed rows diverged", ctx
                );
                let traffic = &inc.output().traffic;
                prop_assert!(
                    traffic.dirty_balls + traffic.clean_balls == inc.data().node_count(),
                    "{}: dirty {} + clean {} != |V|",
                    ctx,
                    traffic.dirty_balls,
                    traffic.clean_balls
                );
            }
        }
    }

    /// An empty delta is a no-op: zero dirty balls, identical rows, untouched graph.
    #[test]
    fn empty_delta_is_a_no_op(
        seed in any::<u64>(),
        nodes in 24usize..56,
        kind in 0usize..3,
        pattern_nodes in 2usize..5,
    ) {
        let kind = DatasetKind::all()[kind];
        let data = kind.generate(nodes, seed);
        let q = experiment_pattern(&data, pattern_nodes, seed ^ 0x9e3779b97f4a7c15);
        for config in [MatchConfig::basic(), MatchConfig::optimized()] {
            let mut inc = IncrementalMatcher::new(&q, data.clone(), config);
            let before = inc.output().clone();
            inc.apply(&GraphDelta::new()).expect("empty deltas validate");
            assert_same_rows(&before, inc.output(), "empty delta")?;
            prop_assert_eq!(inc.last_update().dirty_balls, 0);
            prop_assert_eq!(inc.last_update().clean_balls, data.node_count());
            prop_assert_eq!(inc.last_update().pairs_gained, 0);
            prop_assert_eq!(inc.last_update().pairs_lost, 0);
        }
    }

    /// Delete-then-reinsert round-trips: applying a deletion batch and then its inverse
    /// restores the graph and the output bit-for-bit.
    #[test]
    fn delete_then_reinsert_round_trips(
        seed in any::<u64>(),
        nodes in 24usize..56,
        kind in 0usize..3,
        pattern_nodes in 2usize..5,
        picks in proptest::collection::vec(any::<u64>(), 1..8),
    ) {
        let kind = DatasetKind::all()[kind];
        let data = kind.generate(nodes, seed);
        let q = experiment_pattern(&data, pattern_nodes, seed ^ 0x9e3779b97f4a7c15);
        // Deletions only: force every pick odd.
        let dels: Vec<u64> = picks.iter().map(|p| p | 1).collect();
        for config in [MatchConfig::basic(), MatchConfig::optimized()] {
            let mut inc = IncrementalMatcher::new(&q, data.clone(), config);
            let before = inc.output().clone();
            let delta = random_delta(&inc.data(), &dels);
            inc.apply(&delta).expect("delta validates");
            inc.apply(&delta.inverse()).expect("inverse validates");
            prop_assert!(inc.data() == data, "graph round-trips");
            assert_same_rows(&before, inc.output(), "delete-then-reinsert")?;
        }
    }
}

/// `ExtractedSubgraph` boundary shapes, exercised through the matcher pipeline rather
/// than the extraction API alone.
mod gm_edge_cases {
    use super::*;

    /// Empty matched set: the pattern's label is absent, the global relation is empty,
    /// and no `Gm` is ever extracted (the engine returns before extraction).
    #[test]
    fn empty_matched_set_skips_extraction() {
        let pattern = Pattern::from_edges(vec![Label(9), Label(8)], &[(0, 1)]).unwrap();
        let data = Graph::from_edges(vec![Label(0); 6], &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let out = strong_simulation(&pattern, &data, &MatchConfig::optimized());
        assert!(!out.is_match());
        assert_eq!(out.stats.gm_nodes, 0);
        assert_eq!(out.stats.gm_edges, 0);
        assert_eq!(out.stats.balls_skipped, data.node_count());
        // The incremental session agrees and keeps agreeing over a delta.
        let mut inc = IncrementalMatcher::new(&pattern, data.clone(), MatchConfig::optimized());
        assert!(inc.output().subgraphs.is_empty());
        let mut delta = GraphDelta::new();
        delta.insert_edge(NodeId(2), NodeId(0));
        inc.apply(&delta).unwrap();
        assert!(inc.output().subgraphs.is_empty());
    }

    /// All-matched: every data node survives the dual filter, so `Gm == G` and the
    /// substrates must agree bit-for-bit.
    fn all_matched_ring() -> (Pattern, Graph) {
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1), (1, 0)]).unwrap();
        let n = 8u32;
        let labels: Vec<Label> = (0..n).map(|i| Label(i % 2)).collect();
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        (pattern, Graph::from_edges(labels, &edges).unwrap())
    }

    #[test]
    fn all_matched_gm_equals_g() {
        let (pattern, data) = all_matched_ring();
        let gm = strong_simulation(&pattern, &data, &MatchConfig::optimized());
        assert_eq!(gm.stats.gm_nodes, data.node_count(), "Gm == G");
        assert_eq!(gm.stats.gm_edges, data.edge_count());
        assert_eq!(gm.stats.balls_skipped, 0);
        let full = strong_simulation(
            &pattern,
            &data,
            &MatchConfig::optimized().with_ball_substrate(BallSubstrate::FullGraph),
        );
        assert_eq!(gm.subgraphs.len(), full.subgraphs.len());
        for (a, b) in gm.subgraphs.iter().zip(&full.subgraphs) {
            assert_eq!(a.center, b.center);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.edges, b.edges);
            assert_eq!(a.relation, b.relation);
        }
    }

    /// Single-node `Gm`: exactly one data node matches a single-node pattern.
    #[test]
    fn single_node_gm() {
        let pattern = Pattern::from_edges(vec![Label(7)], &[]).unwrap();
        let data =
            Graph::from_edges(vec![Label(0), Label(7), Label(0)], &[(0, 1), (1, 2)]).unwrap();
        let out = strong_simulation(&pattern, &data, &MatchConfig::optimized());
        assert_eq!(out.stats.gm_nodes, 1);
        assert_eq!(out.stats.gm_edges, 0, "a single member induces no edge");
        assert_eq!(out.subgraphs.len(), 1);
        assert_eq!(out.subgraphs[0].nodes, vec![NodeId(1)]);
    }

    /// A delta that empties `Gm` entirely: deleting the supporting edge makes the
    /// global relation non-total (hence empty), the cached extraction is dropped, and
    /// re-inserting restores everything bit-for-bit.
    #[test]
    fn delta_that_empties_gm() {
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let data =
            Graph::from_edges(vec![Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]).unwrap();
        let mut inc = IncrementalMatcher::new(&pattern, data, MatchConfig::optimized());
        let before = inc.output().clone();
        assert!(inc.output().is_match());
        assert_eq!(inc.output().stats.gm_nodes, 2);
        let mut kill = GraphDelta::new();
        kill.delete_edge(NodeId(0), NodeId(1));
        inc.apply(&kill).unwrap();
        assert!(!inc.output().is_match(), "the only match is gone");
        assert!(inc.output().subgraphs.is_empty());
        assert_eq!(inc.output().stats.gm_nodes, 0, "Gm emptied");
        assert_eq!(inc.last_update().pairs_lost, 2);
        // The oracle agrees on the emptied graph.
        let oneshot = strong_simulation(&pattern, &inc.data(), &MatchConfig::optimized());
        assert!(oneshot.subgraphs.is_empty());
        // Round-trip: reinsertion restores the original output.
        inc.apply(&kill.inverse()).unwrap();
        assert_eq!(inc.output().subgraphs.len(), before.subgraphs.len());
        for (a, b) in inc.output().subgraphs.iter().zip(&before.subgraphs) {
            assert_eq!(a.center, b.center);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.edges, b.edges);
            assert_eq!(a.relation, b.relation);
        }
        assert_eq!(inc.output().stats.gm_nodes, 2, "Gm restored");
    }
}

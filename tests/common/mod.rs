//! Shared generators, assertion helpers and the six-axis oracle-matrix driver for the
//! workspace equivalence suites.
//!
//! Every `tests/*_equivalence.rs` suite used to carry its own copy of the edge-soup
//! data-graph strategy, the connected-pattern strategy, the raw-word delta builder and
//! the locality center sequence; they live here once now, parameterised where the
//! suites' ranges differed. The matrix driver below is the sixth axis's differential
//! harness: it decodes a *random point* of the full oracle matrix
//! (`RefineStrategy` × `BallStrategy` × `RefineSeed` × `BallSubstrate` × `UpdatePlan` ×
//! `RepetitionSemantics`) from raw generator words and pits the integrated repetition
//! path against the naive per-ball oracle at that point — sequential, parallel and
//! distributed, before and after a `GraphDelta`.

// Each integration test compiles this module separately and uses its own subset.
#![allow(dead_code)]

use proptest::prelude::*;
use ssim_core::incremental::IncrementalMatcher;
use ssim_core::strong::{strong_simulation, MatchConfig, MatchOutput};
use ssim_core::{
    locality_center_order, BallStrategy, BallSubstrate, RefineSeed, RefineStrategy, RepetitionMode,
    RepetitionSemantics, UpdatePlan,
};
use ssim_datasets::patterns::{random_pattern, PatternGenConfig};
use ssim_distributed::{
    distributed_strong_simulation, DistributedConfig, IncrementalDistributed, PartitionStrategy,
};
use ssim_graph::{Graph, GraphDelta, Label, NodeId, Pattern};

/// Strategy: a random data graph with `n ∈ [3, max_nodes)` nodes, up to `3n` random
/// edges and labels drawn from a `labels`-symbol alphabet — the edge-soup generator
/// shared by every equivalence suite.
pub fn data_graph_sized(max_nodes: usize, labels: u32) -> impl Strategy<Value = Graph> {
    (3usize..max_nodes).prop_flat_map(move |n| {
        let labels = proptest::collection::vec(0u32..labels, n);
        let edges = proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 0..(3 * n));
        (labels, edges).prop_map(|(labels, edges)| {
            Graph::from_edges(labels.into_iter().map(Label).collect(), &edges)
                .expect("endpoints are in range by construction")
        })
    })
}

/// The suites' default data-graph strategy: `n ∈ [3, 24)` over a 4-symbol alphabet.
pub fn data_graph() -> impl Strategy<Value = Graph> {
    data_graph_sized(24, 4)
}

/// Strategy: a random connected pattern with `2..max_nodes` nodes over a
/// `labels`-symbol alphabet.
pub fn pattern_sized(max_nodes: usize, labels: usize) -> impl Strategy<Value = Pattern> {
    (2usize..max_nodes, any::<u64>(), 1.05f64..1.4).prop_map(move |(nodes, seed, alpha)| {
        random_pattern(&PatternGenConfig {
            nodes,
            alpha,
            labels,
            seed,
        })
    })
}

/// The suites' default pattern strategy: 2–5 nodes over a 4-symbol alphabet. Small
/// alphabet + small patterns make repeated labels frequent, which is exactly what the
/// repetition axis needs exercised.
pub fn pattern() -> impl Strategy<Value = Pattern> {
    pattern_sized(6, 4)
}

/// Builds a valid random delta against `graph` from raw generator words: odd words try
/// to delete an existing edge, even words try to insert an absent one; ops that would
/// conflict with an earlier pick are skipped, so the result always validates.
pub fn random_delta(graph: &Graph, picks: &[u64]) -> GraphDelta {
    let n = graph.node_count() as u64;
    let edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
    let mut delta = GraphDelta::new();
    let mut mentioned: Vec<(NodeId, NodeId)> = Vec::new();
    for &pick in picks {
        if n == 0 {
            break;
        }
        if pick % 2 == 1 {
            if edges.is_empty() {
                continue;
            }
            let (s, t) = edges[((pick / 2) % edges.len() as u64) as usize];
            if !mentioned.contains(&(s, t)) {
                mentioned.push((s, t));
                delta.delete_edge_labeled(s, t, graph.label(s), graph.label(t));
            }
        } else {
            let v = pick / 2;
            let (s, t) = (NodeId((v % n) as u32), NodeId(((v / n) % n) as u32));
            if !graph.has_edge(s, t) && !mentioned.contains(&(s, t)) {
                mentioned.push((s, t));
                delta.insert_edge(s, t);
            }
        }
    }
    delta
}

/// A center sequence for a graph: one locality-ordered sweep (maximising slides)
/// followed by random jumps (maximising rebuild/slide boundary crossings).
pub fn center_sequence(graph: &Graph, jumps: &[usize]) -> Vec<NodeId> {
    let all: Vec<NodeId> = graph.nodes().collect();
    let mut seq = locality_center_order(graph, &all);
    seq.extend(
        jumps
            .iter()
            .map(|&j| NodeId((j % graph.node_count()) as u32)),
    );
    seq
}

/// Asserts two match outputs are bit-identical: identical subgraph sets and identical
/// stats up to `chunks_stolen`, the one counter that depends on steal timing.
pub fn assert_bit_identical(a: &MatchOutput, b: &MatchOutput, context: &str) -> Result<(), String> {
    prop_assert!(
        a.subgraphs.len() == b.subgraphs.len(),
        "{context}: {} vs {} subgraphs",
        a.subgraphs.len(),
        b.subgraphs.len()
    );
    for (x, y) in a.subgraphs.iter().zip(&b.subgraphs) {
        prop_assert!(x == y, "{context}: subgraph {:?} != {:?}", x, y);
    }
    let mut sa = a.stats.clone();
    let mut sb = b.stats.clone();
    sa.chunks_stolen = 0;
    sb.chunks_stolen = 0;
    prop_assert!(sa == sb, "{context}: stats differ: {sa:?} vs {sb:?}");
    Ok(())
}

/// Decodes one point of the five *shape* axes from a raw generator word: refine
/// strategy, ball strategy, refine seed, ball substrate (with the dual filter it rides
/// on) and thread count. The sixth axis (repetition) and the update plan are supplied
/// by the caller — the matrix driver runs both repetition modes at the decoded point.
pub fn matrix_config(bits: u64) -> MatchConfig {
    let mut config = if bits & 1 == 0 {
        MatchConfig::basic()
    } else {
        MatchConfig::optimized()
    };
    if bits & 2 != 0 {
        config = config.with_refine_strategy(RefineStrategy::NaiveFixpoint);
    }
    if bits & 4 != 0 {
        config = config.with_ball_strategy(BallStrategy::FreshBfs);
    }
    if bits & 8 != 0 {
        config = config.with_refine_seed(RefineSeed::FromScratch);
    }
    if bits & 16 != 0 {
        config = config.with_ball_substrate(BallSubstrate::FullGraph);
    }
    match (bits >> 5) & 3 {
        0 => config.sequential(),
        1 => config.with_thread_limit(2),
        _ => config.with_thread_limit(4),
    }
}

/// Decodes the repetition semantics pole from a raw generator word, biased towards the
/// two non-`Free` poles (the axis under test; `Free` keeps a presence as the
/// no-op/regression pole).
pub fn matrix_semantics(bits: u64) -> RepetitionSemantics {
    match bits % 4 {
        0 => RepetitionSemantics::Free,
        1 | 2 => RepetitionSemantics::Distinct,
        _ => RepetitionSemantics::Equal,
    }
}

/// The sixth axis's differential harness at one sampled matrix point: the integrated
/// repetition path and the naive per-ball oracle must produce bit-identical
/// `MatchOutput`s — one-shot and through an incremental session across `delta` — and
/// bit-identical distributed subgraph sets. `Free` points double as a regression check
/// (both modes must equal the axis-less output bit for bit).
pub fn check_matrix_point(
    q: &Pattern,
    data: &Graph,
    delta: &GraphDelta,
    shape_bits: u64,
    semantics: RepetitionSemantics,
    sites: usize,
) -> Result<(), String> {
    let base = matrix_config(shape_bits).with_repetition(semantics);
    let integrated = base.with_repetition_mode(RepetitionMode::Integrated);
    let naive = base.with_repetition_mode(RepetitionMode::NaiveOracle);
    let context = format!("shape bits {shape_bits:#b}, {semantics:?}, {sites} sites");

    // One-shot (pre-delta).
    let a = strong_simulation(q, data, &integrated);
    let b = strong_simulation(q, data, &naive);
    assert_bit_identical(&a, &b, &format!("{context}: one-shot"))?;

    // Incremental session across the delta, both update plans.
    for plan in [UpdatePlan::Incremental, UpdatePlan::Recompute] {
        let mut ia = IncrementalMatcher::new(q, data.clone(), integrated.with_update_plan(plan));
        let mut ib = IncrementalMatcher::new(q, data.clone(), naive.with_update_plan(plan));
        assert_bit_identical(
            ia.output(),
            ib.output(),
            &format!("{context}: {plan:?} pre-delta"),
        )?;
        ia.apply(delta).expect("delta validates");
        ib.apply(delta).expect("delta validates");
        assert_bit_identical(
            ia.output(),
            ib.output(),
            &format!("{context}: {plan:?} post-delta"),
        )?;
    }

    // Distributed runtime: identical subgraph sets and traffic (minus steal timing).
    let dist = DistributedConfig {
        sites,
        strategy: if shape_bits & 64 != 0 {
            PartitionStrategy::Hash
        } else {
            PartitionStrategy::Range
        },
        refine_seed: if shape_bits & 8 != 0 {
            RefineSeed::FromScratch
        } else {
            RefineSeed::WarmStart
        },
        dual_filter: shape_bits & 1 != 0,
        ball_substrate: if shape_bits & 16 != 0 {
            BallSubstrate::FullGraph
        } else {
            BallSubstrate::MatchGraph
        },
        repetition: semantics,
        ..DistributedConfig::default()
    };
    let da = distributed_strong_simulation(q, data, &dist).expect("valid distributed config");
    let db = distributed_strong_simulation(
        q,
        data,
        &DistributedConfig {
            repetition_mode: RepetitionMode::NaiveOracle,
            ..dist
        },
    )
    .expect("valid distributed config");
    prop_assert!(
        da.subgraphs == db.subgraphs,
        "{context}: distributed subgraphs differ"
    );
    let mut ta = da.traffic.clone();
    let mut tb = db.traffic.clone();
    ta.chunks_stolen = 0;
    tb.chunks_stolen = 0;
    prop_assert!(ta == tb, "{context}: distributed traffic differs");

    // Distributed incremental session across the same delta.
    let mut dia =
        IncrementalDistributed::new(q, data.clone(), dist).expect("valid distributed config");
    let mut dib = IncrementalDistributed::new(
        q,
        data.clone(),
        DistributedConfig {
            repetition_mode: RepetitionMode::NaiveOracle,
            ..dist
        },
    )
    .expect("valid distributed config");
    dia.apply(delta).expect("delta validates");
    dib.apply(delta).expect("delta validates");
    prop_assert!(
        dia.output().subgraphs == dib.output().subgraphs,
        "{context}: distributed post-delta subgraphs differ"
    );
    Ok(())
}

//! Query minimization (Algorithm minQ, Fig. 4 / Fig. 6(a)).
//!
//! Builds the Q5 pattern of the paper — a root with two structurally identical branches —
//! minimises it, and shows that the minimised pattern produces the same strong-simulation
//! result on a data graph while the matcher does measurably less work.
//!
//! Run with: `cargo run --release --example query_minimization`

use ssim_core::minimize::minimize_pattern;
use ssim_core::strong::{strong_simulation, MatchConfig};
use ssim_datasets::synthetic::{synthetic, SyntheticConfig};
use ssim_graph::{Label, Pattern};
use std::time::Instant;

fn main() {
    // Q5 of Fig. 6(a): R -> A, R -> B1 -> C1 -> D1, R -> B2 -> C2 -> D2.
    let pattern = Pattern::from_edges(
        vec![
            Label(0), // R
            Label(1), // A
            Label(2), // B1
            Label(2), // B2
            Label(3), // C1
            Label(3), // C2
            Label(4), // D1
            Label(4), // D2
        ],
        &[(0, 1), (0, 2), (0, 3), (2, 4), (3, 5), (4, 6), (5, 7)],
    )
    .expect("Q5 is connected");

    let minimized = minimize_pattern(&pattern);
    println!(
        "Q5:  {} nodes, {} edges (size {})",
        pattern.node_count(),
        pattern.edge_count(),
        pattern.size()
    );
    println!(
        "Q5m: {} nodes, {} edges (size {})  — the two branches collapse into one",
        minimized.pattern.node_count(),
        minimized.pattern.edge_count(),
        minimized.pattern.size()
    );
    println!("equivalence classes: {:?}\n", minimized.class_of);

    // Same result on a data graph, with and without minimization.
    let data = synthetic(&SyntheticConfig {
        nodes: 2_000,
        alpha: 1.2,
        labels: 5,
        seed: 1,
    });
    let start = Instant::now();
    let plain = strong_simulation(&pattern, &data, &MatchConfig::basic());
    let plain_time = start.elapsed();
    let start = Instant::now();
    let with_minq = strong_simulation(
        &pattern,
        &data,
        &MatchConfig {
            minimize_query: true,
            ..MatchConfig::basic()
        },
    );
    let minq_time = start.elapsed();

    println!(
        "plain Match   : {} perfect subgraphs in {plain_time:?}",
        plain.subgraphs.len()
    );
    println!(
        "Match + minQ  : {} perfect subgraphs in {minq_time:?}",
        with_minq.subgraphs.len()
    );
    assert_eq!(
        plain.matched_nodes(),
        with_minq.matched_nodes(),
        "minQ must preserve the result"
    );
    println!("\nresults identical: true (Theorem 6 / Lemmas 2-3)");
    if let Some((original, reduced)) = with_minq.stats.pattern_sizes {
        println!("pattern size used by the matcher: {original} -> {reduced}");
    }
}

//! Distributed strong simulation (Section 4.3) over a partitioned co-purchase graph.
//!
//! Partitions an Amazon-like graph across simulated sites, evaluates the pattern in
//! parallel, and reports the shipped data — demonstrating the data-locality property that
//! makes strong simulation (unlike plain simulation) suitable for distributed evaluation.
//!
//! Run with: `cargo run --release --example distributed_matching`

use ssim_core::strong::{strong_simulation, MatchConfig};
use ssim_datasets::patterns::extract_pattern;
use ssim_datasets::reallike::amazon_like;
use ssim_distributed::{distributed_strong_simulation, DistributedConfig, PartitionStrategy};

fn main() {
    let data = amazon_like(1_500, 7);
    let pattern = extract_pattern(&data, 5, 3).expect("pattern extraction succeeds");
    println!(
        "data: {} nodes, {} edges   pattern: {} nodes, diameter {}\n",
        data.node_count(),
        data.edge_count(),
        pattern.node_count(),
        pattern.diameter()
    );

    let centralized = strong_simulation(&pattern, &data, &MatchConfig::basic());
    println!(
        "centralized Match: {} perfect subgraphs, {} matched nodes\n",
        centralized.subgraphs.len(),
        centralized.matched_node_count()
    );

    println!(
        "{:>6} {:>8} {:>14} {:>14} {:>14} {:>10}",
        "sites", "part.", "border balls", "shipped balls", "shipped nodes", "correct"
    );
    for sites in [2usize, 4, 8] {
        for (name, strategy) in [
            ("range", PartitionStrategy::Range),
            ("hash", PartitionStrategy::Hash),
        ] {
            let out = distributed_strong_simulation(
                &pattern,
                &data,
                &DistributedConfig {
                    sites,
                    strategy,
                    minimize_query: true,
                    ..DistributedConfig::default()
                },
            )
            .expect("valid distributed config");
            let correct = out.matched_nodes() == centralized.matched_nodes();
            println!(
                "{:>6} {:>8} {:>14} {:>14} {:>14} {:>10}",
                sites,
                name,
                out.traffic.border_balls,
                out.traffic.shipped_balls,
                out.traffic.shipped_nodes,
                correct
            );
            assert!(
                correct,
                "distributed evaluation must agree with the centralized result"
            );
        }
    }
    println!("\nEvery configuration reproduces the centralized result; the shipped data is");
    println!("bounded by the balls that straddle fragment boundaries (Section 4.3).");
}

//! Quickstart: build a pattern and a data graph, run every matching notion, print results.
//!
//! Run with: `cargo run --release --example quickstart`

use ssim_core::bisimulation::bisimilar;
use ssim_core::dual::dual_simulation;
use ssim_core::simulation::graph_simulation;
use ssim_core::strong::{strong_simulation, MatchConfig};
use ssim_graph::{GraphBuilder, NodeId, Pattern};

fn main() {
    // Pattern: a project manager (PM) who manages a developer (DEV) and a tester (QA),
    // where the tester also reports to the developer.
    let mut qb = GraphBuilder::new();
    let pm = qb.add_node("PM");
    let dev = qb.add_node("DEV");
    let qa = qb.add_node("QA");
    qb.add_edge(pm, dev);
    qb.add_edge(pm, qa);
    qb.add_edge(qa, dev);
    let (pattern_graph, labels) = qb.build_with_interner();
    let pattern = Pattern::new(pattern_graph).expect("pattern is connected");

    // Data graph: two teams. Team 1 matches the pattern exactly; team 2 has a QA person who
    // does not report to the developer.
    let mut gb = GraphBuilder::new();
    let pm1 = gb.add_node("PM");
    let dev1 = gb.add_node("DEV");
    let qa1 = gb.add_node("QA");
    gb.add_edge(pm1, dev1);
    gb.add_edge(pm1, qa1);
    gb.add_edge(qa1, dev1);
    let pm2 = gb.add_node("PM");
    let dev2 = gb.add_node("DEV");
    let qa2 = gb.add_node("QA");
    gb.add_edge(pm2, dev2);
    gb.add_edge(pm2, qa2); // qa2 -> dev2 edge is missing
    let data = gb.build();

    println!(
        "pattern: {} nodes, {} edges, diameter {}",
        pattern.node_count(),
        pattern.edge_count(),
        pattern.diameter()
    );
    println!(
        "data:    {} nodes, {} edges\n",
        data.node_count(),
        data.edge_count()
    );

    // Graph simulation: keeps both teams (it only checks children).
    let sim = graph_simulation(&pattern, &data).expect("simulation match exists");
    println!(
        "graph simulation matched nodes:  {:?}",
        sim.matched_data_nodes().to_vec()
    );

    // Dual simulation: still both teams' PM/DEV but drops qa2 (no parent check fails here —
    // the missing edge hurts the child side of qa2).
    let dual = dual_simulation(&pattern, &data).expect("dual simulation match exists");
    println!(
        "dual simulation matched nodes:   {:?}",
        dual.matched_data_nodes().to_vec()
    );

    // Strong simulation: perfect subgraphs inside balls of radius d_Q.
    let strong = strong_simulation(&pattern, &data, &MatchConfig::optimized());
    println!(
        "strong simulation perfect subgraphs: {}",
        strong.subgraphs.len()
    );
    for s in &strong.subgraphs {
        let names: Vec<String> = s
            .nodes
            .iter()
            .map(|&v| format!("{}:{}", v, labels.display(data.label(v))))
            .collect();
        println!("  ball center {} -> {{{}}}", s.center, names.join(", "));
    }
    println!();
    println!(
        "team 1 tester (qa1 = {}) matched: {}",
        qa1,
        strong.matched_nodes().contains(&qa1)
    );
    println!(
        "team 2 tester (qa2 = {}) matched: {}",
        qa2,
        strong.matched_nodes().contains(&qa2)
    );
    println!("pattern bisimilar to data: {}", bisimilar(&pattern, &data));

    // The matches of each pattern node across all perfect subgraphs.
    for u in pattern.nodes() {
        let matches: Vec<NodeId> = strong.matches_of(u).into_iter().collect();
        println!(
            "pattern node {} ({}) matches {:?}",
            u,
            labels.display(pattern.label(u)),
            matches
        );
    }
}

//! The running example of the paper (Fig. 1): a headhunter looking for a biologist.
//!
//! Reproduces Example 1 and Example 2(3): subgraph isomorphism finds nothing, graph
//! simulation matches every biologist, and strong simulation returns exactly `Bio4`.
//!
//! Run with: `cargo run --release --example social_recommendation`

use ssim_baselines::vf2::{find_embeddings, Vf2Limits};
use ssim_core::simulation::graph_simulation;
use ssim_core::strong::{strong_simulation, MatchConfig};
use ssim_core::topology::TopologyReport;
use ssim_datasets::paper::figure1;
use ssim_graph::NodeId;

fn main() {
    let fig = figure1();
    let bio = NodeId(2); // the Bio node of pattern Q1
    println!(
        "pattern Q1: {} nodes, {} edges, diameter {}",
        fig.pattern.node_count(),
        fig.pattern.edge_count(),
        fig.pattern.diameter()
    );
    println!(
        "data G1:    {} nodes, {} edges\n",
        fig.data.node_count(),
        fig.data.edge_count()
    );

    // Subgraph isomorphism: no match (the DM/AI 2-cycle has no isomorphic image).
    let vf2 = find_embeddings(&fig.pattern, &fig.data, Vf2Limits::default());
    println!(
        "VF2 embeddings: {}  (the paper: none — too strict)",
        vf2.embeddings.len()
    );

    // Graph simulation: every biologist matches.
    let sim = graph_simulation(&fig.pattern, &fig.data).expect("Q1 ≺ G1 holds");
    let sim_bios: Vec<String> = sim
        .candidates(bio)
        .iter()
        .map(|i| format!("node {i}"))
        .collect();
    println!(
        "graph simulation matches for Bio: {} ({})",
        sim_bios.len(),
        sim_bios.join(", ")
    );

    // Strong simulation: only Bio4.
    let strong = strong_simulation(&fig.pattern, &fig.data, &MatchConfig::optimized());
    let strong_bios: Vec<NodeId> = strong.matches_of(bio).into_iter().collect();
    println!("strong simulation matches for Bio: {:?}", strong_bios);
    println!("expected (paper): {:?}", fig.expected_matches);
    assert_eq!(
        strong_bios, fig.expected_matches,
        "strong simulation must single out Bio4"
    );

    println!("\nperfect subgraphs found: {}", strong.subgraphs.len());
    for s in strong.distinct_subgraphs() {
        let labels: Vec<String> = s
            .nodes
            .iter()
            .map(|&v| format!("{}:{}", v.0, fig.interner.display(fig.data.label(v))))
            .collect();
        println!("  center {} -> {{{}}}", s.center, labels.join(", "));
    }

    // Topology report: strong simulation ticks every column of Table 2.
    let report = TopologyReport::evaluate(&fig.pattern, &fig.data, &strong);
    println!("\ntopology preservation (Table 2 criteria): {report:#?}");
    assert!(report.all_preserved());
    println!("\nwork statistics: {:#?}", strong.stats);
}

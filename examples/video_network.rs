//! The YouTube case study (Fig. 7(b)): pattern QY over a related-video network.
//!
//! Generates a YouTube-like graph, plants one exact occurrence of QY (the paper's pattern
//! was chosen because it occurs in the real data), and compares the matches reported by
//! VF2, strong simulation and graph simulation — reproducing the qualitative claim that
//! strong simulation reduces the number and size of matches without losing the sensible
//! ones.
//!
//! Run with: `cargo run --release --example video_network`

use ssim_experiments::algorithms::AlgorithmKind;
use ssim_experiments::quality::{render, youtube_case};

fn main() {
    let case = youtube_case(800, 2024);
    println!("{}", render(&case));

    let vf2 = case.run_of(AlgorithmKind::Vf2);
    let strong = case.run_of(AlgorithmKind::Match);
    let sim = case.run_of(AlgorithmKind::Sim);

    println!("pattern QY: an Entertainment video related to Film&Animation and Music videos,");
    println!(
        "            with a Sports video related to the same Film&Animation and Music videos.\n"
    );

    println!(
        "VF2    : {:>5} matched nodes in {:>5} matched subgraphs ({:?})",
        vf2.matched_node_count(),
        vf2.subgraph_count,
        vf2.elapsed
    );
    println!(
        "Match  : {:>5} matched nodes in {:>5} perfect subgraphs ({:?})",
        strong.matched_node_count(),
        strong.subgraph_count,
        strong.elapsed
    );
    println!(
        "Sim    : {:>5} matched nodes in a single match relation   ({:?})",
        sim.matched_node_count(),
        sim.elapsed
    );

    // The paper's reading of Fig. 7(b): every node VF2 matches is also matched by strong
    // simulation, but strong simulation groups them into far fewer, smaller subgraphs.
    let vf2_subset = vf2.matched_nodes.is_subset(&strong.matched_nodes);
    println!("\nVF2 matches ⊆ strong-simulation matches: {vf2_subset}");
    let closeness_match = ssim_experiments::closeness_metric(vf2, strong);
    let closeness_sim = ssim_experiments::closeness_metric(vf2, sim);
    println!("closeness(Match) = {closeness_match:.3}   closeness(Sim) = {closeness_sim:.3}");
}

//! Ablation of the Section 4.2 optimisations.
//!
//! The paper reports that the optimisations reduce `Match`'s running time by roughly one
//! third ("the running time of Match+ is consistently about 2/3 of the time taken by
//! Match"). This experiment times the plain matcher, each optimisation in isolation and the
//! full `Match+`, and also reports how many balls the dual-simulation filter skips.

use crate::report::Figure;
use crate::scale::ExperimentScale;
use crate::workloads::{experiment_pattern, DatasetKind};
use ssim_core::strong::{strong_simulation, MatchConfig};
use std::time::Instant;

/// One ablation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AblationVariant {
    /// Display name.
    pub name: &'static str,
    /// Matcher configuration.
    pub config: MatchConfig,
}

/// The configurations compared by the ablation bench.
pub fn variants() -> Vec<AblationVariant> {
    vec![
        AblationVariant {
            name: "Match",
            config: MatchConfig::basic(),
        },
        AblationVariant {
            name: "Match+minQ",
            config: MatchConfig {
                minimize_query: true,
                ..MatchConfig::basic()
            },
        },
        AblationVariant {
            name: "Match+filter",
            config: MatchConfig {
                dual_filter: true,
                ..MatchConfig::basic()
            },
        },
        AblationVariant {
            name: "Match+prune",
            config: MatchConfig {
                connectivity_pruning: true,
                ..MatchConfig::basic()
            },
        },
        AblationVariant {
            name: "Match+",
            config: MatchConfig::optimized(),
        },
    ]
}

/// One measured row of the ablation report.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant name.
    pub variant: &'static str,
    /// Average wall-clock seconds per run.
    pub seconds: f64,
    /// Average number of balls actually refined.
    pub balls_processed: f64,
    /// Average number of balls skipped by the global filter.
    pub balls_skipped: f64,
    /// Average number of perfect subgraphs (identical across variants — a sanity check).
    pub subgraphs: f64,
    /// Engine-layer summary of the last repetition (ball reuse, warm starts, `Gm`
    /// extraction selectivity) — see [`crate::report::engine_stats_line`].
    pub engine: String,
}

/// Runs the ablation on one dataset family.
pub fn optimization_ablation(dataset: DatasetKind, scale: &ExperimentScale) -> Vec<AblationRow> {
    let data = dataset.generate(scale.data_nodes, scale.seed);
    let mut rows = Vec::new();
    for variant in variants() {
        let mut seconds = 0.0;
        let mut processed = 0usize;
        let mut skipped = 0usize;
        let mut subgraphs = 0usize;
        let mut engine = String::new();
        let reps = scale.patterns_per_point.max(1);
        for rep in 0..reps {
            let pattern =
                experiment_pattern(&data, scale.fixed_pattern_size, scale.point_seed(500, rep));
            let start = Instant::now();
            let output = strong_simulation(&pattern, &data, &variant.config);
            seconds += start.elapsed().as_secs_f64();
            processed += output.stats.balls_processed;
            skipped += output.stats.balls_skipped;
            subgraphs += output.subgraphs.len();
            engine = crate::report::engine_stats_line(&output.stats);
        }
        rows.push(AblationRow {
            variant: variant.name,
            seconds: seconds / reps as f64,
            balls_processed: processed as f64 / reps as f64,
            balls_skipped: skipped as f64 / reps as f64,
            subgraphs: subgraphs as f64 / reps as f64,
            engine,
        });
    }
    rows
}

/// Renders the ablation rows as a text table compatible with the `reproduce` binary.
pub fn render(rows: &[AblationRow], dataset: DatasetKind) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== opt — optimisation ablation ({}) ==",
        dataset.name()
    );
    let _ = writeln!(
        out,
        "{:>14}{:>12}{:>16}{:>14}{:>12}",
        "variant", "seconds", "balls refined", "balls skipped", "subgraphs"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>14}{:>12.4}{:>16.1}{:>14.1}{:>12.1}",
            r.variant, r.seconds, r.balls_processed, r.balls_skipped, r.subgraphs
        );
        let _ = writeln!(out, "{:>14}  {}", "", r.engine);
    }
    out
}

/// Convenience wrapper turning the ablation into a [`Figure`] keyed by variant index, for
/// consumers that want the generic figure format.
pub fn as_figure(rows: &[AblationRow], dataset: DatasetKind) -> Figure {
    use crate::algorithms::AlgorithmKind;
    let mut fig = Figure::new(
        "opt",
        &format!("optimisation ablation ({})", dataset.name()),
        "variant index",
        "seconds",
    );
    for (i, r) in rows.iter().enumerate() {
        // Reuse Match/MatchPlus markers for the two endpoints; intermediate variants are
        // recorded under Match as repetitions at distinct x positions.
        let marker = if r.variant == "Match+" {
            AlgorithmKind::MatchPlus
        } else {
            AlgorithmKind::Match
        };
        fig.push(i as f64, marker, r.seconds);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_preserves_results_across_variants() {
        let scale = ExperimentScale::tiny();
        let rows = optimization_ablation(DatasetKind::Synthetic, &scale);
        assert_eq!(rows.len(), 5);
        let reference = rows[0].subgraphs;
        for r in &rows {
            assert!(
                (r.subgraphs - reference).abs() < 1e-9,
                "variant {} changed the number of perfect subgraphs",
                r.variant
            );
            assert!(r.seconds >= 0.0);
        }
    }

    #[test]
    fn filter_variants_skip_balls() {
        let scale = ExperimentScale::tiny();
        let rows = optimization_ablation(DatasetKind::AmazonLike, &scale);
        let filter_row = rows.iter().find(|r| r.variant == "Match+filter").unwrap();
        let base_row = rows.iter().find(|r| r.variant == "Match").unwrap();
        assert!(filter_row.balls_processed <= base_row.balls_processed);
    }

    #[test]
    fn rendering_and_figure_conversion() {
        let scale = ExperimentScale::tiny();
        let rows = optimization_ablation(DatasetKind::Synthetic, &scale);
        let text = render(&rows, DatasetKind::Synthetic);
        assert!(text.contains("Match+"));
        assert!(text.contains("balls refined"));
        let fig = as_figure(&rows, DatasetKind::Synthetic);
        assert_eq!(fig.points.len(), rows.len());
    }
}

//! Exp-1, Figures 7(c)–7(h): closeness of each algorithm to subgraph isomorphism.
//!
//! Paper findings being reproduced: the closeness of `Match` stays in the 70–80% band across
//! pattern and data sizes, `Sim` in 25–38%, `TALE` in 35–42% and `MCS` in 46–57%; none of
//! the algorithms is very sensitive to the sweep variable.

use crate::algorithms::{run_algorithm, AlgorithmKind};
use crate::metrics::closeness;
use crate::report::Figure;
use crate::scale::ExperimentScale;
use crate::workloads::{experiment_pattern, DatasetKind};

/// Figures 7(c)/(d)/(e): closeness while varying the pattern size `|Vq|` on a fixed graph.
pub fn closeness_vs_pattern_size(dataset: DatasetKind, scale: &ExperimentScale) -> Figure {
    let mut fig = Figure::new(
        match dataset {
            DatasetKind::AmazonLike => "fig7c",
            DatasetKind::YouTubeLike => "fig7d",
            DatasetKind::Synthetic => "fig7e",
        },
        &format!("closeness vs |Vq| ({})", dataset.name()),
        "|Vq|",
        "closeness",
    );
    let data = dataset.generate(scale.data_nodes, scale.seed);
    for (point, &size) in scale.pattern_sizes.iter().enumerate() {
        for rep in 0..scale.patterns_per_point {
            let pattern = experiment_pattern(&data, size, scale.point_seed(point, rep));
            let vf2 = run_algorithm(AlgorithmKind::Vf2, &pattern, &data);
            for kind in AlgorithmKind::quality_set() {
                let run = if kind == AlgorithmKind::Vf2 {
                    vf2.clone()
                } else {
                    run_algorithm(kind, &pattern, &data)
                };
                fig.push(size as f64, kind, closeness(&vf2, &run));
            }
        }
    }
    fig
}

/// Figures 7(f)/(g)/(h): closeness while varying the data size `|V|` with `|Vq|` fixed.
pub fn closeness_vs_data_size(dataset: DatasetKind, scale: &ExperimentScale) -> Figure {
    let mut fig = Figure::new(
        match dataset {
            DatasetKind::AmazonLike => "fig7f",
            DatasetKind::YouTubeLike => "fig7g",
            DatasetKind::Synthetic => "fig7h",
        },
        &format!("closeness vs |V| ({})", dataset.name()),
        "|V|",
        "closeness",
    );
    for (point, &nodes) in scale.data_sweep.iter().enumerate() {
        let data = dataset.generate(nodes, scale.seed.wrapping_add(point as u64));
        for rep in 0..scale.patterns_per_point {
            let pattern = experiment_pattern(
                &data,
                scale.fixed_pattern_size,
                scale.point_seed(point, rep),
            );
            let vf2 = run_algorithm(AlgorithmKind::Vf2, &pattern, &data);
            for kind in AlgorithmKind::quality_set() {
                let run = if kind == AlgorithmKind::Vf2 {
                    vf2.clone()
                } else {
                    run_algorithm(kind, &pattern, &data)
                };
                fig.push(nodes as f64, kind, closeness(&vf2, &run));
            }
        }
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closeness_sweep_has_all_algorithms_and_sane_values() {
        let scale = ExperimentScale::tiny();
        let fig = closeness_vs_pattern_size(DatasetKind::Synthetic, &scale);
        assert_eq!(fig.id, "fig7e");
        assert_eq!(fig.algorithms().len(), 5);
        assert_eq!(fig.xs().len(), scale.pattern_sizes.len());
        for p in &fig.points {
            assert!(
                p.value >= 0.0 && p.value <= 1.0 + 1e-9,
                "closeness {} out of range",
                p.value
            );
        }
        // VF2's closeness to itself is 1 by definition.
        for x in fig.xs() {
            assert!((fig.value_at(x, AlgorithmKind::Vf2).unwrap() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn match_is_closer_to_vf2_than_sim() {
        // The headline quality claim of the paper, at tiny scale.
        let scale = ExperimentScale::tiny();
        let fig = closeness_vs_pattern_size(DatasetKind::AmazonLike, &scale);
        let mut match_total = 0.0;
        let mut sim_total = 0.0;
        let mut n = 0.0;
        for x in fig.xs() {
            if let (Some(m), Some(s)) = (
                fig.value_at(x, AlgorithmKind::Match),
                fig.value_at(x, AlgorithmKind::Sim),
            ) {
                match_total += m;
                sim_total += s;
                n += 1.0;
            }
        }
        assert!(n > 0.0);
        assert!(
            match_total / n >= sim_total / n,
            "Match average closeness {} should not be below Sim {}",
            match_total / n,
            sim_total / n
        );
    }

    #[test]
    fn data_size_sweep_produces_one_row_per_size() {
        let scale = ExperimentScale::tiny();
        let fig = closeness_vs_data_size(DatasetKind::YouTubeLike, &scale);
        assert_eq!(fig.id, "fig7g");
        assert_eq!(fig.xs().len(), scale.data_sweep.len());
    }
}

//! Exp-2, Figures 8(a)–8(h): running time of `Sim`, `Match`, `Match+` and `VF2`.
//!
//! Paper findings being reproduced: VF2 is orders of magnitude slower than the simulation
//! family and stops scaling quickly; `Match` and `Match+` scale with both pattern and data
//! size; `Match+` runs in about two thirds of the time of `Match`; `Sim` is the fastest
//! (the price of its poor match quality).

use crate::algorithms::{run_algorithm, AlgorithmKind};
use crate::report::Figure;
use crate::scale::ExperimentScale;
use crate::workloads::{density_pattern, experiment_pattern, DatasetKind};

/// Figures 8(a)/(b)/(c): running time while varying the pattern size `|Vq|`.
pub fn time_vs_pattern_size(dataset: DatasetKind, scale: &ExperimentScale) -> Figure {
    let mut fig = Figure::new(
        match dataset {
            DatasetKind::AmazonLike => "fig8a",
            DatasetKind::YouTubeLike => "fig8b",
            DatasetKind::Synthetic => "fig8c",
        },
        &format!("running time vs |Vq| ({})", dataset.name()),
        "|Vq|",
        "seconds",
    );
    let data = dataset.generate(scale.data_nodes, scale.seed);
    let algorithms = AlgorithmKind::performance_set(scale.include_vf2);
    for (point, &size) in scale.pattern_sizes.iter().enumerate() {
        for rep in 0..scale.patterns_per_point {
            let pattern = experiment_pattern(&data, size, scale.point_seed(point, rep));
            for &kind in &algorithms {
                let run = run_algorithm(kind, &pattern, &data);
                fig.push(size as f64, kind, run.elapsed.as_secs_f64());
            }
        }
    }
    fig
}

/// Figure 8(d): running time while varying the pattern density `αq` (synthetic data).
pub fn time_vs_pattern_density(scale: &ExperimentScale) -> Figure {
    let mut fig = Figure::new(
        "fig8d",
        "running time vs pattern density αq (synthetic)",
        "alpha_q",
        "seconds",
    );
    let data = DatasetKind::Synthetic.generate(scale.data_nodes, scale.seed);
    // The paper omits VF2 here (it cannot finish); follow suit.
    let algorithms = AlgorithmKind::performance_set(false);
    for (point, &alpha) in scale.pattern_densities.iter().enumerate() {
        for rep in 0..scale.patterns_per_point {
            let pattern = density_pattern(
                &data,
                scale.fixed_pattern_size,
                alpha,
                scale.point_seed(point, rep),
            );
            for &kind in &algorithms {
                let run = run_algorithm(kind, &pattern, &data);
                fig.push(alpha, kind, run.elapsed.as_secs_f64());
            }
        }
    }
    fig
}

/// Figures 8(e)/(f)/(g): running time while varying the data size `|V|`.
pub fn time_vs_data_size(dataset: DatasetKind, scale: &ExperimentScale) -> Figure {
    let mut fig = Figure::new(
        match dataset {
            DatasetKind::AmazonLike => "fig8e",
            DatasetKind::YouTubeLike => "fig8f",
            DatasetKind::Synthetic => "fig8g",
        },
        &format!("running time vs |V| ({})", dataset.name()),
        "|V|",
        "seconds",
    );
    // The paper only runs VF2 on the (small) real-life graphs.
    let include_vf2 = scale.include_vf2 && dataset != DatasetKind::Synthetic;
    let algorithms = AlgorithmKind::performance_set(include_vf2);
    for (point, &nodes) in scale.data_sweep.iter().enumerate() {
        let data = dataset.generate(nodes, scale.seed.wrapping_add(point as u64));
        for rep in 0..scale.patterns_per_point {
            let pattern = experiment_pattern(
                &data,
                scale.fixed_pattern_size,
                scale.point_seed(point, rep),
            );
            for &kind in &algorithms {
                let run = run_algorithm(kind, &pattern, &data);
                fig.push(nodes as f64, kind, run.elapsed.as_secs_f64());
            }
        }
    }
    fig
}

/// Figure 8(h): running time while varying the data density `α` (synthetic data).
pub fn time_vs_data_density(scale: &ExperimentScale) -> Figure {
    let mut fig = Figure::new(
        "fig8h",
        "running time vs data density α (synthetic)",
        "alpha",
        "seconds",
    );
    let algorithms = AlgorithmKind::performance_set(false);
    for (point, &alpha) in scale.data_densities.iter().enumerate() {
        let data = DatasetKind::Synthetic.generate_with_density(
            scale.data_nodes,
            alpha,
            scale.seed.wrapping_add(point as u64),
        );
        for rep in 0..scale.patterns_per_point {
            let pattern = experiment_pattern(
                &data,
                scale.fixed_pattern_size,
                scale.point_seed(point, rep),
            );
            for &kind in &algorithms {
                let run = run_algorithm(kind, &pattern, &data);
                fig.push(alpha, kind, run.elapsed.as_secs_f64());
            }
        }
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_size_sweep_times_every_algorithm() {
        let scale = ExperimentScale::tiny();
        let fig = time_vs_pattern_size(DatasetKind::AmazonLike, &scale);
        assert_eq!(fig.id, "fig8a");
        assert_eq!(fig.algorithms().len(), 4);
        assert!(fig.points.iter().all(|p| p.value >= 0.0));
    }

    #[test]
    fn density_sweeps_exclude_vf2() {
        let scale = ExperimentScale::tiny();
        let d = time_vs_pattern_density(&scale);
        assert!(!d.algorithms().contains(&AlgorithmKind::Vf2));
        let h = time_vs_data_density(&scale);
        assert_eq!(h.id, "fig8h");
        assert_eq!(h.xs().len(), scale.data_densities.len());
    }

    #[test]
    fn synthetic_data_size_sweep_excludes_vf2() {
        let scale = ExperimentScale::tiny();
        let fig = time_vs_data_size(DatasetKind::Synthetic, &scale);
        assert_eq!(fig.id, "fig8g");
        assert!(!fig.algorithms().contains(&AlgorithmKind::Vf2));
        let amazon = time_vs_data_size(DatasetKind::AmazonLike, &scale);
        assert!(amazon.algorithms().contains(&AlgorithmKind::Vf2));
    }
}

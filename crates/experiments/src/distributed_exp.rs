//! Distributed evaluation experiment (Section 4.3).
//!
//! The paper's distributed algorithm ships only the balls that straddle fragment
//! boundaries. This experiment measures the shipped data while varying the number of sites
//! and the partition strategy, and verifies that the distributed result equals the
//! centralized one.

use crate::scale::ExperimentScale;
use crate::workloads::{experiment_pattern, DatasetKind};
use ssim_core::strong::{strong_simulation, MatchConfig};
use ssim_distributed::{
    distributed_strong_simulation, DistributedConfig, PartitionStrategy, TrafficStats,
};

/// One measured row of the distributed experiment.
#[derive(Debug, Clone)]
pub struct DistributedRow {
    /// Number of simulated sites.
    pub sites: usize,
    /// Partition strategy used.
    pub strategy: PartitionStrategy,
    /// Traffic counters of the run.
    pub traffic: TrafficStats,
    /// Whether the distributed result matched the centralized result exactly.
    pub matches_centralized: bool,
    /// Wall-clock seconds of the distributed run.
    pub seconds: f64,
}

/// Runs the experiment on one dataset family, sweeping the number of sites.
pub fn traffic_vs_sites(dataset: DatasetKind, scale: &ExperimentScale) -> Vec<DistributedRow> {
    let data = dataset.generate(scale.data_nodes, scale.seed);
    let pattern = experiment_pattern(&data, scale.fixed_pattern_size, scale.point_seed(900, 0));
    let centralized = strong_simulation(&pattern, &data, &MatchConfig::basic());
    let mut rows = Vec::new();
    for sites in [1usize, 2, 4, 8] {
        for strategy in [PartitionStrategy::Range, PartitionStrategy::Hash] {
            let start = std::time::Instant::now();
            let out = distributed_strong_simulation(
                &pattern,
                &data,
                &DistributedConfig {
                    sites,
                    strategy,
                    minimize_query: false,
                    ..DistributedConfig::default()
                },
            )
            .expect("experiment sweeps use valid site counts");
            let seconds = start.elapsed().as_secs_f64();
            rows.push(DistributedRow {
                sites,
                strategy,
                matches_centralized: out.matched_nodes() == centralized.matched_nodes()
                    && out.subgraphs.len() == centralized.subgraphs.len(),
                traffic: out.traffic,
                seconds,
            });
        }
    }
    rows
}

/// Renders the distributed rows as a text table.
pub fn render(rows: &[DistributedRow], dataset: DatasetKind) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== dist — distributed evaluation ({}) ==",
        dataset.name()
    );
    let _ = writeln!(
        out,
        "{:>7}{:>9}{:>15}{:>15}{:>15}{:>10}{:>10}",
        "sites", "part.", "border balls", "shipped balls", "shipped nodes", "correct", "seconds"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>7}{:>9}{:>15}{:>15}{:>15}{:>10}{:>10.4}",
            r.sites,
            match r.strategy {
                PartitionStrategy::Hash => "hash",
                PartitionStrategy::Range => "range",
            },
            r.traffic.border_balls,
            r.traffic.shipped_balls,
            r.traffic.shipped_nodes,
            r.matches_centralized,
            r.seconds
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_rows_are_correct_and_monotone_in_sites() {
        let scale = ExperimentScale::tiny();
        let rows = traffic_vs_sites(DatasetKind::Synthetic, &scale);
        assert_eq!(rows.len(), 8);
        assert!(
            rows.iter().all(|r| r.matches_centralized),
            "distributed result diverged"
        );
        // One site ships nothing.
        let single: Vec<_> = rows.iter().filter(|r| r.sites == 1).collect();
        assert!(single.iter().all(|r| r.traffic.shipped_nodes == 0));
        let text = render(&rows, DatasetKind::Synthetic);
        assert!(text.contains("shipped nodes"));
    }
}

//! Update-stream experiment: the continuously-serving store under edge churn.
//!
//! The paper's locality results (Prop. 3) make updates intrinsically local; the
//! versioned substrate ([`ssim_graph::OverlayGraph`]) makes *applying* them cheap too —
//! `O(patches)` patch staging instead of the `O(|V|+|E|)` CSR rebuild of
//! `Graph::apply_delta`. This experiment measures both layers on one workload:
//!
//! * **substrate** — per-delta microseconds for the overlay apply vs the flat rebuild,
//!   plus the compaction count and the live overlay fraction after the stream;
//! * **engine** — wall-clock for an [`IncrementalMatcher`] session absorbing the stream
//!   (per delta, and folded into batches through `apply_batch`) against the
//!   [`UpdatePlan::Recompute`] oracle, with the dirty-ball fraction that drives the
//!   difference.
//!
//! Every row cross-checks the session rows against a one-shot match on the final graph,
//! so the numbers are only reported for bit-identical outputs.

use crate::scale::ExperimentScale;
use crate::workloads::{experiment_pattern, DatasetKind};
use ssim_core::incremental::IncrementalMatcher;
use ssim_core::strong::{strong_simulation, MatchConfig};
use ssim_core::UpdatePlan;
use ssim_graph::{Graph, GraphDelta, OverlayGraph};
use std::time::Instant;

/// One measured churn level.
#[derive(Debug, Clone)]
pub struct UpdateRow {
    /// Fraction of `|E|` churned per delta.
    pub churn: f64,
    /// Edges churned per delta.
    pub churn_edges: usize,
    /// Deltas in the stream.
    pub updates: usize,
    /// Batch size fed to `apply_batch` (1 = per-delta `apply`).
    pub batch: usize,
    /// Mean microseconds per delta for `OverlayGraph::apply_delta`.
    pub overlay_apply_us: f64,
    /// Mean microseconds per delta for the flat `Graph::apply_delta` rebuild.
    pub rebuild_us: f64,
    /// Compactions the overlay's policy triggered across the stream.
    pub compactions: u64,
    /// Live overlay mass over `|E|` after the stream.
    pub overlay_fraction: f64,
    /// Mean dirty-ball fraction across the per-delta session's updates.
    pub dirty_fraction: f64,
    /// Wall-clock seconds for the incremental session absorbing the stream.
    pub incremental_secs: f64,
    /// Wall-clock seconds for the recompute oracle absorbing the stream.
    pub recompute_secs: f64,
    /// `recompute_secs / incremental_secs`.
    pub speedup: f64,
    /// Whether the session's final rows equal a one-shot match on the final graph.
    pub matches_oneshot: bool,
}

/// A deterministic churn stream: `updates` deltas alternately deleting and re-inserting
/// the same evenly-spaced `churn_edges` edges, so the graph oscillates between two
/// versions instead of drifting away from the workload's intended shape. No RNG: the
/// stride picks the edges, which keeps the experiment reproducible at every scale.
fn churn_stream(data: &Graph, churn_edges: usize, updates: usize) -> Vec<GraphDelta> {
    let edges: Vec<_> = data.edges().collect();
    let target = churn_edges.clamp(1, edges.len());
    let stride = (edges.len() / target).max(1);
    let mut deletion = GraphDelta::new();
    for (s, t) in edges.iter().step_by(stride).take(target) {
        deletion.delete_edge(*s, *t);
    }
    let reinsertion = deletion.inverse();
    (0..updates)
        .map(|k| {
            if k % 2 == 0 {
                deletion.clone()
            } else {
                reinsertion.clone()
            }
        })
        .collect()
}

/// Runs the experiment on one dataset family, sweeping churn level and batch size.
pub fn update_streams(dataset: DatasetKind, scale: &ExperimentScale) -> Vec<UpdateRow> {
    let data = dataset.generate(scale.data_nodes, scale.seed);
    let pattern = experiment_pattern(&data, scale.fixed_pattern_size, scale.point_seed(910, 0));
    let config = MatchConfig::optimized();
    let updates = 6usize;
    let mut rows = Vec::new();
    for churn in [0.01f64, 0.05] {
        let churn_edges = ((data.edge_count() as f64 * churn).ceil() as usize).max(1);
        let stream = churn_stream(&data, churn_edges, updates);
        // Substrate layer: overlay patch staging vs flat rebuild, same stream.
        let mut overlay = OverlayGraph::new(data.clone());
        let start = Instant::now();
        for delta in &stream {
            overlay.apply_delta(delta).expect("stream validates");
        }
        let overlay_apply_us = start.elapsed().as_secs_f64() * 1e6 / stream.len() as f64;
        let mut flat = data.clone();
        let start = Instant::now();
        for delta in &stream {
            flat = flat.apply_delta(delta).expect("stream validates");
        }
        let rebuild_us = start.elapsed().as_secs_f64() * 1e6 / stream.len() as f64;
        assert!(flat == overlay.to_graph(), "substrates diverged");
        // Engine layer: session vs oracle, per-delta and batched.
        for batch in [1usize, 3] {
            let mut inc = IncrementalMatcher::new(
                &pattern,
                data.clone(),
                config.with_update_plan(UpdatePlan::Incremental),
            );
            let mut dirty = 0usize;
            let start = Instant::now();
            for chunk in stream.chunks(batch) {
                inc.apply_batch(chunk).expect("stream validates");
                dirty += inc.last_update().dirty_balls;
            }
            let incremental_secs = start.elapsed().as_secs_f64();
            let applies = stream.len().div_ceil(batch);
            let dirty_fraction = dirty as f64 / (applies * data.node_count()).max(1) as f64;
            let mut rec = IncrementalMatcher::new(
                &pattern,
                data.clone(),
                config.with_update_plan(UpdatePlan::Recompute),
            );
            let start = Instant::now();
            for chunk in stream.chunks(batch) {
                rec.apply_batch(chunk).expect("stream validates");
            }
            let recompute_secs = start.elapsed().as_secs_f64();
            let oneshot = strong_simulation(&pattern, &flat, &config);
            let matches_oneshot = inc.output().subgraphs == oneshot.subgraphs
                && rec.output().subgraphs == oneshot.subgraphs;
            rows.push(UpdateRow {
                churn,
                churn_edges,
                updates,
                batch,
                overlay_apply_us,
                rebuild_us,
                compactions: overlay.compactions(),
                overlay_fraction: overlay.overlay_fraction(),
                dirty_fraction,
                incremental_secs,
                recompute_secs,
                speedup: recompute_secs / incremental_secs.max(f64::MIN_POSITIVE),
                matches_oneshot,
            });
        }
    }
    rows
}

/// Renders the update rows as a text table.
pub fn render(rows: &[UpdateRow], dataset: DatasetKind) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== upd — update streams on the versioned substrate ({}) ==",
        dataset.name()
    );
    let _ = writeln!(
        out,
        "{:>7}{:>7}{:>13}{:>13}{:>9}{:>9}{:>11}{:>11}{:>9}{:>9}",
        "churn",
        "batch",
        "apply us/d",
        "rebuild us",
        "compact",
        "dirty",
        "inc ms",
        "rec ms",
        "speedup",
        "correct"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>6.0}%{:>7}{:>13.1}{:>13.1}{:>9}{:>8.1}%{:>11.3}{:>11.3}{:>8.2}x{:>9}",
            r.churn * 100.0,
            r.batch,
            r.overlay_apply_us,
            r.rebuild_us,
            r.compactions,
            r.dirty_fraction * 100.0,
            r.incremental_secs * 1e3,
            r.recompute_secs * 1e3,
            r.speedup,
            r.matches_oneshot
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_rows_are_correct_and_overlay_amortises() {
        let scale = ExperimentScale::tiny();
        let rows = update_streams(DatasetKind::Synthetic, &scale);
        assert_eq!(rows.len(), 4, "two churn levels x two batch sizes");
        assert!(
            rows.iter().all(|r| r.matches_oneshot),
            "a session diverged from the one-shot matcher"
        );
        // Zero is legitimate: a delta outside the match graph dirties no ball.
        assert!(
            rows.iter().all(|r| (0.0..=1.0).contains(&r.dirty_fraction)),
            "dirty fractions out of range"
        );
        let text = render(&rows, DatasetKind::Synthetic);
        assert!(text.contains("apply us/d"));
    }
}

//! Exp-1, Table 3: sizes of the matched subgraphs returned by `Match`.
//!
//! Paper findings being reproduced: all matched subgraphs have fewer than 50 nodes, and over
//! 80% have fewer than 30 nodes — strong simulation bounds the size of its matches thanks to
//! duality and locality, while `Sim` returns a single large match relation (103 / 177 / 311
//! nodes on the paper's three datasets).

use crate::algorithms::{run_algorithm, AlgorithmKind};
use crate::metrics::SizeHistogram;
use crate::scale::ExperimentScale;
use crate::workloads::{experiment_pattern, DatasetKind};

/// One row of Table 3 for a dataset: the histogram of `Match` subgraph sizes, plus the size
/// of the single `Sim` match relation for comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeReport {
    /// Dataset family the row describes.
    pub dataset: DatasetKind,
    /// Histogram of perfect-subgraph sizes across the sampled patterns.
    pub histogram: SizeHistogram,
    /// Average size of the (single) graph-simulation match relation.
    pub sim_match_size: f64,
    /// Largest perfect subgraph observed.
    pub max_subgraph_size: usize,
}

/// Reproduces one dataset row of Table 3.
pub fn size_distribution(dataset: DatasetKind, scale: &ExperimentScale) -> SizeReport {
    let data = dataset.generate(scale.data_nodes, scale.seed);
    let mut sizes = Vec::new();
    let mut sim_sizes = Vec::new();
    for rep in 0..scale.patterns_per_point.max(1) {
        let pattern =
            experiment_pattern(&data, scale.fixed_pattern_size, scale.point_seed(100, rep));
        let matchd = run_algorithm(AlgorithmKind::Match, &pattern, &data);
        sizes.extend(matchd.subgraph_sizes);
        let sim = run_algorithm(AlgorithmKind::Sim, &pattern, &data);
        sim_sizes.push(sim.matched_node_count());
    }
    let max_subgraph_size = sizes.iter().copied().max().unwrap_or(0);
    SizeReport {
        dataset,
        histogram: SizeHistogram::from_sizes(&sizes),
        sim_match_size: if sim_sizes.is_empty() {
            0.0
        } else {
            sim_sizes.iter().sum::<usize>() as f64 / sim_sizes.len() as f64
        },
        max_subgraph_size,
    }
}

/// Table 3 for all three dataset families.
pub fn table3(scale: &ExperimentScale) -> Vec<SizeReport> {
    DatasetKind::all()
        .iter()
        .map(|&d| size_distribution(d, scale))
        .collect()
}

/// Renders the reports in the layout of Table 3.
pub fn render_table3(reports: &[SizeReport]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== table3 — sizes of matched subgraphs (Match) ==");
    let _ = write!(out, "{:>14}", "#nodes");
    for label in SizeHistogram::bucket_labels() {
        let _ = write!(out, "{label:>10}");
    }
    let _ = writeln!(out, "{:>14}", "Sim size");
    for r in reports {
        let _ = write!(out, "{:>14}", r.dataset.name());
        for b in r.histogram.buckets {
            let _ = write!(out, "{b:>10}");
        }
        let _ = writeln!(out, "{:>14.1}", r.sim_match_size);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_distribution_is_bounded() {
        let scale = ExperimentScale::tiny();
        let report = size_distribution(DatasetKind::Synthetic, &scale);
        assert_eq!(report.dataset, DatasetKind::Synthetic);
        // Every perfect subgraph fits inside a ball, so its size is bounded by |V|.
        assert!(report.max_subgraph_size <= scale.data_nodes);
        assert!(report.histogram.fraction_below_30() >= 0.0);
    }

    #[test]
    fn table3_has_three_rows_and_renders() {
        let scale = ExperimentScale::tiny();
        let rows = table3(&scale);
        assert_eq!(rows.len(), 3);
        let text = render_table3(&rows);
        assert!(text.contains("amazon-like"));
        assert!(text.contains("youtube-like"));
        assert!(text.contains("synthetic"));
        assert!(text.contains("[0,9]"));
    }

    #[test]
    fn sim_match_is_larger_than_typical_match_subgraph() {
        // The qualitative claim behind Table 3: the single Sim relation is much bigger than
        // individual perfect subgraphs.
        let scale = ExperimentScale::tiny();
        let report = size_distribution(DatasetKind::AmazonLike, &scale);
        if report.histogram.total() > 0 && report.sim_match_size > 0.0 {
            assert!(report.sim_match_size >= report.max_subgraph_size as f64 * 0.5);
        }
    }
}

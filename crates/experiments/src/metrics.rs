//! Quality metrics of Exp-1.

use crate::algorithms::AlgoRun;

/// The *closeness* metric of the paper:
///
/// ```text
/// closeness = #matches_subIso / #matches_found
/// ```
///
/// where `#matches_subIso` is the total number of nodes in the matches found by VF2 and
/// `#matches_found` the total number of nodes in the matches found by the algorithm under
/// comparison. For VF2 itself the value is 1 by definition. When the compared algorithm
/// finds no node at all the metric is defined as 1.0 if VF2 also found nothing and 0.0
/// otherwise.
pub fn closeness(vf2: &AlgoRun, other: &AlgoRun) -> f64 {
    let reference = vf2.matched_node_count();
    let found = other.matched_node_count();
    if found == 0 {
        return if reference == 0 { 1.0 } else { 0.0 };
    }
    reference as f64 / found as f64
}

/// Histogram of matched-subgraph sizes, reproducing the buckets of Table 3:
/// `[0,9]`, `[10,19]`, `[20,29]`, `[30,39]`, `[40,49]`, `≥ 50`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SizeHistogram {
    /// Bucket counts in the order listed above.
    pub buckets: [usize; 6],
}

impl SizeHistogram {
    /// Builds the histogram from a list of subgraph sizes.
    pub fn from_sizes(sizes: &[usize]) -> Self {
        let mut buckets = [0usize; 6];
        for &s in sizes {
            let idx = (s / 10).min(5);
            buckets[idx] += 1;
        }
        SizeHistogram { buckets }
    }

    /// Total number of subgraphs counted.
    pub fn total(&self) -> usize {
        self.buckets.iter().sum()
    }

    /// Fraction of subgraphs with fewer than 30 nodes (the paper reports > 80%).
    pub fn fraction_below_30(&self) -> f64 {
        if self.total() == 0 {
            return 1.0;
        }
        (self.buckets[0] + self.buckets[1] + self.buckets[2]) as f64 / self.total() as f64
    }

    /// Labels of the buckets, for reports.
    pub fn bucket_labels() -> [&'static str; 6] {
        ["[0,9]", "[10,19]", "[20,29]", "[30,39]", "[40,49]", ">=50"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::AlgorithmKind;
    use ssim_graph::NodeId;
    use std::collections::BTreeSet;
    use std::time::Duration;

    fn run_with_nodes(kind: AlgorithmKind, nodes: &[u32]) -> AlgoRun {
        AlgoRun {
            algorithm: kind,
            matched_nodes: nodes.iter().map(|&i| NodeId(i)).collect::<BTreeSet<_>>(),
            subgraph_count: 1,
            subgraph_sizes: vec![nodes.len()],
            elapsed: Duration::from_millis(1),
        }
    }

    #[test]
    fn closeness_ratio() {
        let vf2 = run_with_nodes(AlgorithmKind::Vf2, &[1, 2, 3]);
        let sim = run_with_nodes(AlgorithmKind::Sim, &[1, 2, 3, 4, 5, 6]);
        assert!((closeness(&vf2, &sim) - 0.5).abs() < 1e-12);
        assert!((closeness(&vf2, &vf2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn closeness_with_empty_results() {
        let empty_vf2 = run_with_nodes(AlgorithmKind::Vf2, &[]);
        let empty_other = run_with_nodes(AlgorithmKind::Sim, &[]);
        let some_vf2 = run_with_nodes(AlgorithmKind::Vf2, &[1]);
        assert_eq!(closeness(&empty_vf2, &empty_other), 1.0);
        assert_eq!(closeness(&some_vf2, &empty_other), 0.0);
        let big_other = run_with_nodes(AlgorithmKind::Sim, &[1, 2]);
        assert_eq!(closeness(&empty_vf2, &big_other), 0.0);
    }

    #[test]
    fn histogram_buckets() {
        let h = SizeHistogram::from_sizes(&[3, 9, 10, 25, 31, 49, 50, 120]);
        assert_eq!(h.buckets, [2, 1, 1, 1, 1, 2]);
        assert_eq!(h.total(), 8);
        assert!((h.fraction_below_30() - 0.5).abs() < 1e-12);
        assert_eq!(SizeHistogram::bucket_labels().len(), 6);
    }

    #[test]
    fn empty_histogram() {
        let h = SizeHistogram::from_sizes(&[]);
        assert_eq!(h.total(), 0);
        assert_eq!(h.fraction_below_30(), 1.0);
    }
}

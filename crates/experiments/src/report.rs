//! Text-table rendering of experiment results.

use crate::algorithms::AlgorithmKind;
use ssim_core::strong::MatchStats;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// One-line summary of a run's engine-layer counters: ball reuse, warm-start rate and —
/// when the match-graph ball substrate ran — the `Gm` extraction selectivity. Rendered
/// under the experiment tables so the engine's reuse layers stay visible next to the
/// paper-level numbers.
pub fn engine_stats_line(stats: &MatchStats) -> String {
    let processed = stats.balls_processed.max(1) as f64;
    let mut line = format!(
        "balls {}/{} · reuse {:.0}% · warm {:.0}%",
        stats.balls_processed,
        stats.balls_considered,
        100.0 * stats.balls_reused as f64 / processed,
        100.0 * stats.balls_warm_started as f64 / processed,
    );
    if stats.gm_nodes > 0 {
        let _ = write!(
            line,
            " · Gm {:.1}% of |V| ({} nodes, {} edges)",
            100.0 * stats.gm_nodes as f64 / stats.balls_considered.max(1) as f64,
            stats.gm_nodes,
            stats.gm_edges
        );
    }
    line
}

/// A single measurement: algorithm `algorithm` measured value `value` at sweep position `x`.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Sweep coordinate (pattern size, data size, density, number of sites, …).
    pub x: f64,
    /// Algorithm (or configuration) the value belongs to.
    pub algorithm: AlgorithmKind,
    /// Measured value (closeness, count, seconds, …).
    pub value: f64,
}

/// A figure of the paper, reproduced as a set of series over a common x axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Experiment identifier, e.g. `"fig7c"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Label of the x axis.
    pub x_label: String,
    /// Label of the y axis (the measured quantity).
    pub y_label: String,
    /// All measurements.
    pub points: Vec<SeriesPoint>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(id: &str, title: &str, x_label: &str, y_label: &str) -> Self {
        Figure {
            id: id.to_string(),
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            points: Vec::new(),
        }
    }

    /// Adds a measurement.
    pub fn push(&mut self, x: f64, algorithm: AlgorithmKind, value: f64) {
        self.points.push(SeriesPoint {
            x,
            algorithm,
            value,
        });
    }

    /// The sorted, deduplicated x coordinates.
    pub fn xs(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self.points.iter().map(|p| p.x).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x values"));
        xs.dedup();
        xs
    }

    /// Algorithms present in the figure, in first-appearance order.
    pub fn algorithms(&self) -> Vec<AlgorithmKind> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for p in &self.points {
            if seen.insert(p.algorithm.name()) {
                out.push(p.algorithm);
            }
        }
        out
    }

    /// The value of `algorithm` at `x`, averaged when multiple repetitions were recorded.
    pub fn value_at(&self, x: f64, algorithm: AlgorithmKind) -> Option<f64> {
        let values: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.algorithm == algorithm && (p.x - x).abs() < 1e-9)
            .map(|p| p.value)
            .collect();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }

    /// Renders the figure as an aligned text table (rows = x values, columns = algorithms).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let algorithms = self.algorithms();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let _ = writeln!(out, "   ({} vs {})", self.y_label, self.x_label);
        let _ = write!(out, "{:>12}", self.x_label);
        for a in &algorithms {
            let _ = write!(out, "{:>12}", a.name());
        }
        let _ = writeln!(out);
        for x in self.xs() {
            let _ = write!(out, "{x:>12.3}");
            for a in &algorithms {
                match self.value_at(x, *a) {
                    Some(v) => {
                        let _ = write!(out, "{v:>12.4}");
                    }
                    None => {
                        let _ = write!(out, "{:>12}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_accumulates_and_averages() {
        let mut fig = Figure::new("fig7c", "closeness on amazon", "|Vq|", "closeness");
        fig.push(4.0, AlgorithmKind::Sim, 0.3);
        fig.push(4.0, AlgorithmKind::Sim, 0.5);
        fig.push(4.0, AlgorithmKind::Match, 0.8);
        fig.push(6.0, AlgorithmKind::Match, 0.7);
        assert_eq!(fig.xs(), vec![4.0, 6.0]);
        assert_eq!(
            fig.algorithms(),
            vec![AlgorithmKind::Sim, AlgorithmKind::Match]
        );
        assert!((fig.value_at(4.0, AlgorithmKind::Sim).unwrap() - 0.4).abs() < 1e-12);
        assert_eq!(fig.value_at(6.0, AlgorithmKind::Sim), None);
    }

    #[test]
    fn table_rendering_contains_all_cells() {
        let mut fig = Figure::new("fig8a", "time on amazon", "|Vq|", "seconds");
        fig.push(2.0, AlgorithmKind::Match, 0.01);
        fig.push(2.0, AlgorithmKind::MatchPlus, 0.005);
        let table = fig.to_table();
        assert!(table.contains("fig8a"));
        assert!(table.contains("Match"));
        assert!(table.contains("Match+"));
        assert!(table.contains("0.0100"));
        assert!(table.contains("0.0050"));
    }

    #[test]
    fn engine_stats_line_includes_gm_selectivity_only_when_extracted() {
        let mut stats = MatchStats {
            balls_considered: 400,
            balls_processed: 40,
            balls_skipped: 360,
            balls_reused: 30,
            balls_warm_started: 20,
            ..MatchStats::default()
        };
        let without = engine_stats_line(&stats);
        assert!(without.contains("balls 40/400"));
        assert!(without.contains("reuse 75%"));
        assert!(without.contains("warm 50%"));
        assert!(!without.contains("Gm"));
        stats.gm_nodes = 40;
        stats.gm_edges = 120;
        let with = engine_stats_line(&stats);
        assert!(
            with.contains("Gm 10.0% of |V| (40 nodes, 120 edges)"),
            "{with}"
        );
    }

    #[test]
    fn missing_values_render_as_dash() {
        let mut fig = Figure::new("x", "t", "x", "y");
        fig.push(1.0, AlgorithmKind::Vf2, 1.0);
        fig.push(2.0, AlgorithmKind::Sim, 2.0);
        let table = fig.to_table();
        assert!(table.contains('-'));
    }
}

//! Dataset and pattern workloads used by the experiments.

use ssim_datasets::patterns::{extract_pattern, random_pattern, PatternGenConfig};
use ssim_datasets::reallike::{amazon_like, youtube_like};
use ssim_datasets::synthetic::{synthetic, SyntheticConfig};
use ssim_graph::{Graph, Pattern};

/// The three dataset families of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Amazon-like product co-purchase graphs (sparse, avg out-degree ≈ 3.3).
    AmazonLike,
    /// YouTube-like related-video graphs (dense, avg out-degree ≈ 20).
    YouTubeLike,
    /// The `(n, α, l)` synthetic generator with the paper defaults `α = 1.2`, `l = 200`.
    Synthetic,
}

impl DatasetKind {
    /// Human-readable dataset name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::AmazonLike => "amazon-like",
            DatasetKind::YouTubeLike => "youtube-like",
            DatasetKind::Synthetic => "synthetic",
        }
    }

    /// Generates a graph of roughly `nodes` nodes for this dataset family.
    pub fn generate(&self, nodes: usize, seed: u64) -> Graph {
        match self {
            DatasetKind::AmazonLike => amazon_like(nodes, seed),
            DatasetKind::YouTubeLike => youtube_like(nodes, seed),
            DatasetKind::Synthetic => synthetic(&SyntheticConfig {
                nodes,
                seed,
                ..SyntheticConfig::default()
            }),
        }
    }

    /// Generates a graph with an explicit density exponent `α` (only meaningful for the
    /// synthetic family; the real-like families keep their natural density).
    pub fn generate_with_density(&self, nodes: usize, alpha: f64, seed: u64) -> Graph {
        match self {
            DatasetKind::Synthetic => synthetic(&SyntheticConfig {
                nodes,
                alpha,
                seed,
                ..SyntheticConfig::default()
            }),
            _ => self.generate(nodes, seed),
        }
    }

    /// All dataset families, in the order the paper's figures list them.
    pub fn all() -> [DatasetKind; 3] {
        [
            DatasetKind::AmazonLike,
            DatasetKind::YouTubeLike,
            DatasetKind::Synthetic,
        ]
    }
}

/// Produces a pattern with `size` nodes for the experiments.
///
/// Patterns are *extracted* from the data graph so that subgraph isomorphism always finds at
/// least one match — the closeness metric is meaningless otherwise. Falls back to a random
/// pattern over the data graph's label range when extraction cannot reach the requested
/// size (tiny or fragmented graphs).
pub fn experiment_pattern(data: &Graph, size: usize, seed: u64) -> Pattern {
    if let Some(p) = extract_pattern(data, size, seed) {
        if p.node_count() == size {
            return p;
        }
    }
    random_pattern(&PatternGenConfig {
        nodes: size,
        alpha: 1.2,
        labels: data.distinct_label_count().max(1),
        seed,
    })
}

/// Produces a pattern with `size` nodes and density exponent `alpha_q` (used by the
/// pattern-density sweep of Fig. 8(d)). Labels are drawn from the data graph's label range
/// so matches remain possible.
pub fn density_pattern(data: &Graph, size: usize, alpha_q: f64, seed: u64) -> Pattern {
    random_pattern(&PatternGenConfig {
        nodes: size,
        alpha: alpha_q,
        labels: data.distinct_label_count().max(1),
        seed,
    })
}

/// The standing-query workload: a thick chain with a matchable two-symbol prefix plus
/// six diameter-2 path patterns whose label signatures all overlap (every pattern
/// draws from `{0, 1}`).
///
/// This is the shape the multi-pattern query service is built for: every pattern has
/// the same ball radius and no pattern-specific substrate, so a delta's edge-ball
/// sweep and dirty-region extraction are identical across all six — a shared-substrate
/// service computes them once where independent sessions pay them six times. The
/// matchable prefix keeps real per-pattern matching work in the stream while the tail
/// (never a candidate) keeps per-ball cost at ball construction, so locality holds and
/// small deltas stay restricted passes instead of bailing to full re-matches.
pub fn standing_query_workload(nodes: u32) -> (Graph, Vec<Pattern>) {
    use ssim_graph::Label;
    let labels: Vec<Label> = (0..nodes)
        .map(|i| Label(if i < 64 { i % 2 } else { 2 }))
        .collect();
    let mut edges: Vec<(u32, u32)> = (0..nodes - 1).map(|i| (i, i + 1)).collect();
    edges.extend((0..nodes.saturating_sub(2)).map(|i| (i, i + 2)));
    let data = Graph::from_edges(labels, &edges).expect("chain construction is valid");
    let patterns = [
        [0u32, 1, 0],
        [1, 0, 1],
        [0, 1, 1],
        [1, 0, 0],
        [1, 1, 0],
        [0, 0, 1],
    ]
    .iter()
    .map(|labels| {
        Pattern::from_edges(
            labels.iter().map(|&l| Label(l)).collect(),
            &[(0, 1), (1, 2)],
        )
        .expect("path patterns are connected")
    })
    .collect();
    (data, patterns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_names_and_generation() {
        for kind in DatasetKind::all() {
            let g = kind.generate(150, 3);
            assert_eq!(g.node_count(), 150, "{}", kind.name());
            assert!(g.edge_count() > 0, "{}", kind.name());
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn youtube_like_is_denser() {
        let a = DatasetKind::AmazonLike.generate(300, 1);
        let y = DatasetKind::YouTubeLike.generate(300, 1);
        assert!(y.edge_count() > a.edge_count());
    }

    #[test]
    fn density_parameter_changes_synthetic_only() {
        let sparse = DatasetKind::Synthetic.generate_with_density(200, 1.05, 5);
        let dense = DatasetKind::Synthetic.generate_with_density(200, 1.3, 5);
        assert!(dense.edge_count() > sparse.edge_count());
        let a1 = DatasetKind::AmazonLike.generate_with_density(200, 1.05, 5);
        let a2 = DatasetKind::AmazonLike.generate_with_density(200, 1.3, 5);
        assert_eq!(a1, a2, "real-like datasets ignore the density exponent");
    }

    #[test]
    fn experiment_patterns_have_the_requested_size() {
        let data = DatasetKind::Synthetic.generate(200, 9);
        for size in [2, 4, 6] {
            let p = experiment_pattern(&data, size, 13);
            assert_eq!(p.node_count(), size);
        }
    }

    #[test]
    fn density_patterns_scale_edge_count() {
        let data = DatasetKind::Synthetic.generate(200, 9);
        let sparse = density_pattern(&data, 8, 1.05, 3);
        let dense = density_pattern(&data, 8, 1.35, 3);
        assert!(dense.edge_count() >= sparse.edge_count());
    }
}

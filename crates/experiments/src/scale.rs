//! Experiment scales.
//!
//! The paper runs on graphs with up to 10⁸ nodes on a 30-machine cluster; this reproduction
//! targets a laptop, so every experiment accepts an [`ExperimentScale`] that controls data
//! sizes, pattern sizes and repetition counts. The *shape* of the results (who wins, by what
//! factor, where crossovers appear) is what is being reproduced — see EXPERIMENTS.md.

/// Sizing knobs shared by all experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentScale {
    /// Number of data-graph nodes for experiments that vary the pattern.
    pub data_nodes: usize,
    /// Pattern sizes `|Vq|` to sweep (the paper uses 2–20).
    pub pattern_sizes: Vec<usize>,
    /// Data sizes `|V|` to sweep for experiments that vary the data graph.
    pub data_sweep: Vec<usize>,
    /// Pattern densities `αq` to sweep (the paper uses 1.05–1.35).
    pub pattern_densities: Vec<f64>,
    /// Data densities `α` to sweep (the paper uses 1.05–1.35).
    pub data_densities: Vec<f64>,
    /// Number of pattern seeds averaged per measurement point.
    pub patterns_per_point: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Pattern size used when the pattern is held fixed (the paper uses `|Vq| = 10`).
    pub fixed_pattern_size: usize,
    /// Include the exponential VF2 baseline (the paper drops it on large inputs).
    pub include_vf2: bool,
}

impl ExperimentScale {
    /// Minimal scale used by unit and integration tests: runs in well under a second.
    pub fn tiny() -> Self {
        ExperimentScale {
            data_nodes: 120,
            pattern_sizes: vec![2, 3, 4],
            data_sweep: vec![80, 120],
            pattern_densities: vec![1.05, 1.2],
            data_densities: vec![1.05, 1.2],
            patterns_per_point: 1,
            seed: 7,
            fixed_pattern_size: 4,
            include_vf2: true,
        }
    }

    /// Small scale used by the Criterion benches.
    pub fn small() -> Self {
        ExperimentScale {
            data_nodes: 500,
            pattern_sizes: vec![2, 4, 6, 8],
            data_sweep: vec![250, 500, 750],
            pattern_densities: vec![1.05, 1.15, 1.25, 1.35],
            data_densities: vec![1.05, 1.15, 1.25, 1.35],
            patterns_per_point: 2,
            seed: 11,
            fixed_pattern_size: 6,
            include_vf2: true,
        }
    }

    /// Default scale of the `reproduce` binary: a laptop-sized rendition of the paper's
    /// sweeps (minutes, not hours).
    pub fn paper_scaled() -> Self {
        ExperimentScale {
            data_nodes: 2_000,
            pattern_sizes: vec![2, 4, 6, 8, 10, 12],
            data_sweep: vec![500, 1_000, 1_500, 2_000, 2_500],
            pattern_densities: vec![1.05, 1.10, 1.15, 1.20, 1.25, 1.30, 1.35],
            data_densities: vec![1.05, 1.10, 1.15, 1.20, 1.25, 1.30, 1.35],
            patterns_per_point: 3,
            seed: 42,
            fixed_pattern_size: 8,
            include_vf2: true,
        }
    }

    /// Deterministic seed for the `i`-th repetition of a measurement point.
    pub fn point_seed(&self, point: usize, repetition: usize) -> u64 {
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(point as u64 * 1_000_003)
            .wrapping_add(repetition as u64 * 7_919)
    }
}

impl Default for ExperimentScale {
    fn default() -> Self {
        Self::paper_scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered_by_size() {
        let tiny = ExperimentScale::tiny();
        let small = ExperimentScale::small();
        let full = ExperimentScale::paper_scaled();
        assert!(tiny.data_nodes < small.data_nodes);
        assert!(small.data_nodes < full.data_nodes);
        assert!(tiny.pattern_sizes.len() <= full.pattern_sizes.len());
        assert_eq!(ExperimentScale::default(), full);
    }

    #[test]
    fn point_seeds_differ() {
        let s = ExperimentScale::tiny();
        assert_ne!(s.point_seed(0, 0), s.point_seed(0, 1));
        assert_ne!(s.point_seed(0, 0), s.point_seed(1, 0));
        assert_eq!(s.point_seed(2, 3), s.point_seed(2, 3));
    }
}

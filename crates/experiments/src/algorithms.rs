//! Unified adapter over all matching algorithms compared in the evaluation.

use ssim_baselines::mcs::{self, McsConfig};
use ssim_baselines::tale::{self, TaleConfig};
use ssim_baselines::vf2::{self, Vf2Limits};
use ssim_core::simulation::graph_simulation;
use ssim_core::strong::{strong_simulation, MatchConfig};
use ssim_graph::{Graph, NodeId, Pattern};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// The algorithms compared in Section 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// Graph simulation (`Sim` in the figures).
    Sim,
    /// Strong simulation, plain `Match` algorithm.
    Match,
    /// Strong simulation with all optimisations (`Match+`).
    MatchPlus,
    /// VF2 subgraph isomorphism.
    Vf2,
    /// TALE-style approximate matching.
    Tale,
    /// MCS-based approximate matching.
    Mcs,
}

impl AlgorithmKind {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmKind::Sim => "Sim",
            AlgorithmKind::Match => "Match",
            AlgorithmKind::MatchPlus => "Match+",
            AlgorithmKind::Vf2 => "VF2",
            AlgorithmKind::Tale => "TALE",
            AlgorithmKind::Mcs => "MCS",
        }
    }

    /// The algorithms of the quality experiments (Figures 7(c)–7(n)).
    pub fn quality_set() -> [AlgorithmKind; 5] {
        [
            AlgorithmKind::Vf2,
            AlgorithmKind::Match,
            AlgorithmKind::Mcs,
            AlgorithmKind::Tale,
            AlgorithmKind::Sim,
        ]
    }

    /// The algorithms of the performance experiments (Figures 8(a)–8(h)).
    pub fn performance_set(include_vf2: bool) -> Vec<AlgorithmKind> {
        let mut set = vec![
            AlgorithmKind::Sim,
            AlgorithmKind::Match,
            AlgorithmKind::MatchPlus,
        ];
        if include_vf2 {
            set.push(AlgorithmKind::Vf2);
        }
        set
    }
}

/// Result of running one algorithm on one (pattern, data) pair.
#[derive(Debug, Clone)]
pub struct AlgoRun {
    /// Which algorithm produced this run.
    pub algorithm: AlgorithmKind,
    /// Union of all data nodes appearing in the algorithm's matches.
    pub matched_nodes: BTreeSet<NodeId>,
    /// Number of matched subgraphs reported.
    pub subgraph_count: usize,
    /// Sizes (node counts) of the individual matched subgraphs.
    pub subgraph_sizes: Vec<usize>,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl AlgoRun {
    /// Total number of distinct matched data nodes.
    pub fn matched_node_count(&self) -> usize {
        self.matched_nodes.len()
    }
}

/// Runs `algorithm` on the given pattern and data graph, timing it and normalising the
/// result shape.
pub fn run_algorithm(algorithm: AlgorithmKind, pattern: &Pattern, data: &Graph) -> AlgoRun {
    let start = Instant::now();
    let (matched_nodes, subgraph_sizes): (BTreeSet<NodeId>, Vec<usize>) = match algorithm {
        AlgorithmKind::Sim => {
            let nodes: BTreeSet<NodeId> = match graph_simulation(pattern, data) {
                Some(rel) => rel
                    .matched_data_nodes()
                    .iter()
                    .map(NodeId::from_index)
                    .collect(),
                None => BTreeSet::new(),
            };
            // Sim returns a single match relation, reported as one matched subgraph.
            let sizes = if nodes.is_empty() {
                vec![]
            } else {
                vec![nodes.len()]
            };
            (nodes, sizes)
        }
        AlgorithmKind::Match | AlgorithmKind::MatchPlus => {
            let config = if algorithm == AlgorithmKind::Match {
                MatchConfig::basic()
            } else {
                MatchConfig::optimized()
            };
            let output = strong_simulation(pattern, data, &config);
            let sizes = output.subgraphs.iter().map(|s| s.node_count()).collect();
            (output.matched_nodes(), sizes)
        }
        AlgorithmKind::Vf2 => {
            let result = vf2::find_embeddings(
                pattern,
                data,
                Vf2Limits {
                    max_embeddings: 20_000,
                    max_steps: 5_000_000,
                },
            );
            let subgraphs = result.matched_subgraphs();
            let nodes = ssim_baselines::matched_node_union(&subgraphs);
            let sizes = subgraphs.iter().map(|s| s.node_count()).collect();
            (nodes, sizes)
        }
        AlgorithmKind::Tale => {
            let subgraphs = tale::find_matches(pattern, data, &TaleConfig::default());
            let nodes = ssim_baselines::matched_node_union(&subgraphs);
            let sizes = subgraphs.iter().map(|s| s.node_count()).collect();
            (nodes, sizes)
        }
        AlgorithmKind::Mcs => {
            let subgraphs = mcs::find_matches(pattern, data, &McsConfig::default());
            let nodes = ssim_baselines::matched_node_union(&subgraphs);
            let sizes = subgraphs.iter().map(|s| s.node_count()).collect();
            (nodes, sizes)
        }
    };
    AlgoRun {
        algorithm,
        subgraph_count: subgraph_sizes.len(),
        matched_nodes,
        subgraph_sizes,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_datasets::paper;

    #[test]
    fn all_algorithms_run_on_figure1() {
        let fig = paper::figure1();
        for kind in AlgorithmKind::quality_set() {
            let run = run_algorithm(kind, &fig.pattern, &fig.data);
            assert_eq!(run.algorithm, kind);
            assert_eq!(run.subgraph_count, run.subgraph_sizes.len());
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn proposition1_containment_on_figure1() {
        // VF2 ⊆ Match ⊆ Sim in terms of matched nodes (Proposition 1).
        let fig = paper::figure1();
        let vf2 = run_algorithm(AlgorithmKind::Vf2, &fig.pattern, &fig.data);
        let matchd = run_algorithm(AlgorithmKind::Match, &fig.pattern, &fig.data);
        let sim = run_algorithm(AlgorithmKind::Sim, &fig.pattern, &fig.data);
        assert!(vf2.matched_nodes.is_subset(&matchd.matched_nodes));
        assert!(matchd.matched_nodes.is_subset(&sim.matched_nodes));
    }

    #[test]
    fn match_and_match_plus_agree() {
        let fig = paper::figure4_citations();
        let a = run_algorithm(AlgorithmKind::Match, &fig.pattern, &fig.data);
        let b = run_algorithm(AlgorithmKind::MatchPlus, &fig.pattern, &fig.data);
        assert_eq!(a.matched_nodes, b.matched_nodes);
        assert_eq!(a.subgraph_count, b.subgraph_count);
    }

    #[test]
    fn performance_set_composition() {
        assert_eq!(AlgorithmKind::performance_set(true).len(), 4);
        assert_eq!(AlgorithmKind::performance_set(false).len(), 3);
        assert_eq!(AlgorithmKind::quality_set().len(), 5);
    }

    #[test]
    fn sim_reports_a_single_subgraph() {
        let fig = paper::figure2_books();
        let run = run_algorithm(AlgorithmKind::Sim, &fig.pattern, &fig.data);
        assert_eq!(run.subgraph_count, 1);
        assert_eq!(run.subgraph_sizes, vec![run.matched_node_count()]);
    }
}

//! Experiment harness for the strong-simulation evaluation.
//!
//! Section 5 of the paper reports two experiment families:
//!
//! * **Exp-1 (match quality)** — the *closeness* of each algorithm's matched nodes to the
//!   nodes matched by subgraph isomorphism (Figures 7(c)–7(h)), the number of matched
//!   subgraphs (Figures 7(i)–7(n)) and the size distribution of matched subgraphs
//!   (Table 3), plus two qualitative case studies on real data (Figures 7(a)–7(b)).
//! * **Exp-2 (performance)** — running time of `Sim`, `Match`, `Match+` and `VF2` while
//!   varying pattern size, pattern density, data size and data density
//!   (Figures 8(a)–8(h)), and the effectiveness of the optimisations (≈ 1/3 time saved).
//!
//! Each figure/table has a function in the corresponding module that regenerates its series
//! at a configurable [`scale::ExperimentScale`]; the `reproduce` binary prints them as text
//! tables and EXPERIMENTS.md records the measured values next to the paper's.

pub mod ablation;
pub mod algorithms;
pub mod closeness;
pub mod distributed_exp;
pub mod match_counts;
pub mod match_sizes;
pub mod metrics;
pub mod performance;
pub mod quality;
pub mod report;
pub mod scale;
pub mod updates;
pub mod workloads;

pub use algorithms::{run_algorithm, AlgoRun, AlgorithmKind};
pub use metrics::closeness as closeness_metric;
pub use report::{Figure, SeriesPoint};
pub use scale::ExperimentScale;
pub use workloads::DatasetKind;

//! Exp-1, Figures 7(i)–7(n): number of matched subgraphs returned by each algorithm.
//!
//! Paper findings being reproduced: `Match` returns roughly 25–38% as many matched subgraphs
//! as VF2, while the approximate matchers TALE and MCS return even more than VF2; counts
//! shrink as patterns grow and grow with the data size.

use crate::algorithms::{run_algorithm, AlgorithmKind};
use crate::report::Figure;
use crate::scale::ExperimentScale;
use crate::workloads::{experiment_pattern, DatasetKind};

/// The algorithms reported in Figures 7(i)–7(n); `Sim` is omitted because it always returns
/// a single match relation (as the paper notes).
fn count_set() -> [AlgorithmKind; 4] {
    [
        AlgorithmKind::Tale,
        AlgorithmKind::Mcs,
        AlgorithmKind::Vf2,
        AlgorithmKind::Match,
    ]
}

/// Figures 7(i)/(j)/(k): matched-subgraph counts while varying `|Vq|`.
pub fn counts_vs_pattern_size(dataset: DatasetKind, scale: &ExperimentScale) -> Figure {
    let mut fig = Figure::new(
        match dataset {
            DatasetKind::AmazonLike => "fig7i",
            DatasetKind::YouTubeLike => "fig7j",
            DatasetKind::Synthetic => "fig7k",
        },
        &format!("# matched subgraphs vs |Vq| ({})", dataset.name()),
        "|Vq|",
        "# matched subgraphs",
    );
    let data = dataset.generate(scale.data_nodes, scale.seed);
    for (point, &size) in scale.pattern_sizes.iter().enumerate() {
        for rep in 0..scale.patterns_per_point {
            let pattern = experiment_pattern(&data, size, scale.point_seed(point, rep));
            for kind in count_set() {
                let run = run_algorithm(kind, &pattern, &data);
                fig.push(size as f64, kind, run.subgraph_count as f64);
            }
        }
    }
    fig
}

/// Figures 7(l)/(m)/(n): matched-subgraph counts while varying `|V|`.
pub fn counts_vs_data_size(dataset: DatasetKind, scale: &ExperimentScale) -> Figure {
    let mut fig = Figure::new(
        match dataset {
            DatasetKind::AmazonLike => "fig7l",
            DatasetKind::YouTubeLike => "fig7m",
            DatasetKind::Synthetic => "fig7n",
        },
        &format!("# matched subgraphs vs |V| ({})", dataset.name()),
        "|V|",
        "# matched subgraphs",
    );
    for (point, &nodes) in scale.data_sweep.iter().enumerate() {
        let data = dataset.generate(nodes, scale.seed.wrapping_add(point as u64));
        for rep in 0..scale.patterns_per_point {
            let pattern = experiment_pattern(
                &data,
                scale.fixed_pattern_size,
                scale.point_seed(point, rep),
            );
            for kind in count_set() {
                let run = run_algorithm(kind, &pattern, &data);
                fig.push(nodes as f64, kind, run.subgraph_count as f64);
            }
        }
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_sweep_shape() {
        let scale = ExperimentScale::tiny();
        let fig = counts_vs_pattern_size(DatasetKind::Synthetic, &scale);
        assert_eq!(fig.id, "fig7k");
        assert_eq!(fig.algorithms().len(), 4);
        for p in &fig.points {
            assert!(p.value >= 0.0);
            assert!(p.value.fract().abs() < 1e-9, "counts are integers");
        }
    }

    #[test]
    fn counts_grow_or_hold_with_data_size_for_match() {
        let scale = ExperimentScale::tiny();
        let fig = counts_vs_data_size(DatasetKind::AmazonLike, &scale);
        assert_eq!(fig.id, "fig7l");
        let xs = fig.xs();
        assert_eq!(xs.len(), scale.data_sweep.len());
        // Counts are defined at every sweep point for Match.
        for x in xs {
            assert!(fig.value_at(x, AlgorithmKind::Match).is_some());
        }
    }

    #[test]
    fn match_reports_bounded_counts() {
        // Proposition 4: at most |V| perfect subgraphs.
        let scale = ExperimentScale::tiny();
        let fig = counts_vs_pattern_size(DatasetKind::AmazonLike, &scale);
        for p in fig
            .points
            .iter()
            .filter(|p| p.algorithm == AlgorithmKind::Match)
        {
            assert!(p.value <= scale.data_nodes as f64);
        }
    }
}

//! Exp-1, Figures 7(a)–7(b): qualitative case studies.
//!
//! The paper hand-checks the matches of two real-life query shapes: `QA` on the Amazon
//! co-purchase graph ("Parenting & Families" books co-purchased with children's, home &
//! garden and health books) and `QY` on the YouTube graph (entertainment videos related to
//! film and music videos that a sports video also relates to). The qualitative finding:
//! strong simulation finds sensible matches that VF2 misses (VF2 requires the exact
//! topology) while filtering out the nonsense matches that plain simulation reports.

use crate::algorithms::{run_algorithm, AlgoRun, AlgorithmKind};
use crate::workloads::DatasetKind;
use ssim_datasets::paper::{pattern_qa, pattern_qy};
use ssim_graph::{Graph, GraphBuilder, Label, Pattern};

/// Result of one qualitative case study.
#[derive(Debug, Clone)]
pub struct QualityCase {
    /// Experiment id (`fig7a` or `fig7b`).
    pub id: &'static str,
    /// Dataset family the pattern targets.
    pub dataset: DatasetKind,
    /// The pattern used.
    pub pattern: Pattern,
    /// Per-algorithm runs (VF2, Match, Sim).
    pub runs: Vec<AlgoRun>,
}

impl QualityCase {
    /// The run of a given algorithm.
    pub fn run_of(&self, kind: AlgorithmKind) -> &AlgoRun {
        self.runs
            .iter()
            .find(|r| r.algorithm == kind)
            .expect("algorithm was executed")
    }
}

/// Re-labels the first few nodes of a generated graph so the hand-crafted QA/QY patterns
/// have at least one exact occurrence (mirroring the fact that the paper's patterns were
/// chosen because they *do* occur in the real data), then returns the graph.
fn plant_pattern(mut labels: Vec<Label>, edges: Vec<(u32, u32)>, pattern: &Pattern) -> Graph {
    let offset = 0u32;
    for u in pattern.nodes() {
        labels[(offset + u.0) as usize] = pattern.label(u);
    }
    let mut all_edges = edges;
    for (s, t) in pattern.graph().edges() {
        all_edges.push((offset + s.0, offset + t.0));
    }
    let mut b = GraphBuilder::with_capacity(labels.len(), all_edges.len());
    for l in &labels {
        b.add_labeled_node(*l);
    }
    for (s, t) in all_edges {
        b.add_edge(ssim_graph::NodeId(s), ssim_graph::NodeId(t));
    }
    b.build()
}

fn case(
    id: &'static str,
    dataset: DatasetKind,
    pattern: Pattern,
    nodes: usize,
    seed: u64,
) -> QualityCase {
    let base = dataset.generate(nodes, seed);
    let labels: Vec<Label> = base.nodes().map(|v| base.label(v)).collect();
    let edges: Vec<(u32, u32)> = base.edges().map(|(a, b)| (a.0, b.0)).collect();
    let data = plant_pattern(labels, edges, &pattern);
    let runs = [AlgorithmKind::Vf2, AlgorithmKind::Match, AlgorithmKind::Sim]
        .iter()
        .map(|&k| run_algorithm(k, &pattern, &data))
        .collect();
    QualityCase {
        id,
        dataset,
        pattern,
        runs,
    }
}

/// Figure 7(a): the Amazon case study with pattern `QA`.
pub fn amazon_case(nodes: usize, seed: u64) -> QualityCase {
    let (pattern, _) = pattern_qa();
    case("fig7a", DatasetKind::AmazonLike, pattern, nodes, seed)
}

/// Figure 7(b): the YouTube case study with pattern `QY`.
pub fn youtube_case(nodes: usize, seed: u64) -> QualityCase {
    let (pattern, _) = pattern_qy();
    case("fig7b", DatasetKind::YouTubeLike, pattern, nodes, seed)
}

/// Renders a case study as text.
pub fn render(case: &QualityCase) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== {} — qualitative case study ({}) ==",
        case.id,
        case.dataset.name()
    );
    let _ = writeln!(
        out,
        "   pattern: {} nodes, {} edges, diameter {}",
        case.pattern.node_count(),
        case.pattern.edge_count(),
        case.pattern.diameter()
    );
    for run in &case.runs {
        let _ = writeln!(
            out,
            "   {:<7} matched nodes: {:>6}   matched subgraphs: {:>6}",
            run.algorithm.name(),
            run.matched_node_count(),
            run.subgraph_count
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amazon_case_orders_algorithms_as_the_paper_describes() {
        let case = amazon_case(300, 17);
        let vf2 = case.run_of(AlgorithmKind::Vf2);
        let matchd = case.run_of(AlgorithmKind::Match);
        let sim = case.run_of(AlgorithmKind::Sim);
        // The planted occurrence guarantees everyone finds something.
        assert!(vf2.matched_node_count() >= case.pattern.node_count());
        assert!(matchd.matched_node_count() >= vf2.matched_node_count() - 1);
        // Sim returns at least as many nodes as Match (Proposition 1).
        assert!(sim.matched_node_count() >= matchd.matched_node_count());
        let text = render(&case);
        assert!(text.contains("fig7a"));
        assert!(text.contains("Match"));
    }

    #[test]
    fn youtube_case_runs() {
        let case = youtube_case(200, 23);
        assert_eq!(case.id, "fig7b");
        assert_eq!(case.runs.len(), 3);
        assert!(case.run_of(AlgorithmKind::Match).matched_node_count() > 0);
    }
}

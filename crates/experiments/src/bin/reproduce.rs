//! `reproduce` — regenerate the tables and figures of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! reproduce [--scale tiny|small|paper] [--nodes N] [exp-id ...]
//! ```
//!
//! With no experiment ids every experiment is run. Valid ids: `fig7a`, `fig7b`,
//! `fig7c`..`fig7h` (closeness), `fig7i`..`fig7n` (match counts), `table3`,
//! `fig8a`..`fig8h` (performance), `opt` (optimisation ablation), `dist` (distributed),
//! `upd` (update streams on the versioned substrate).

use ssim_experiments::scale::ExperimentScale;
use ssim_experiments::workloads::DatasetKind;
use ssim_experiments::{
    ablation, closeness, distributed_exp, match_counts, match_sizes, performance, quality, updates,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = ExperimentScale::paper_scaled();
    let mut requested: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("tiny") => ExperimentScale::tiny(),
                    Some("small") => ExperimentScale::small(),
                    Some("paper") | None => ExperimentScale::paper_scaled(),
                    Some(other) => {
                        eprintln!("unknown scale {other:?}, using paper scale");
                        ExperimentScale::paper_scaled()
                    }
                };
            }
            "--nodes" => {
                i += 1;
                if let Some(n) = args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    scale.data_nodes = n;
                }
            }
            "--help" | "-h" => {
                println!("usage: reproduce [--scale tiny|small|paper] [--nodes N] [exp-id ...]");
                return;
            }
            other => requested.push(other.to_string()),
        }
        i += 1;
    }
    let run_all = requested.is_empty();
    let wants = |id: &str| run_all || requested.iter().any(|r| r == id);

    println!(
        "reproducing the evaluation of \"Capturing Topology in Graph Pattern Matching\" \
         (scale: {} data nodes)\n",
        scale.data_nodes
    );

    // Figures 7(a)/(b): qualitative case studies.
    if wants("fig7a") {
        println!(
            "{}",
            quality::render(&quality::amazon_case(
                scale.data_nodes.min(2_000),
                scale.seed
            ))
        );
    }
    if wants("fig7b") {
        println!(
            "{}",
            quality::render(&quality::youtube_case(
                scale.data_nodes.min(1_000),
                scale.seed
            ))
        );
    }

    // Figures 7(c)-(h): closeness.
    let closeness_ids = ["fig7c", "fig7d", "fig7e", "fig7f", "fig7g", "fig7h"];
    for (idx, dataset) in DatasetKind::all().iter().enumerate() {
        if wants(closeness_ids[idx]) {
            println!(
                "{}",
                closeness::closeness_vs_pattern_size(*dataset, &scale).to_table()
            );
        }
        if wants(closeness_ids[idx + 3]) {
            println!(
                "{}",
                closeness::closeness_vs_data_size(*dataset, &scale).to_table()
            );
        }
    }

    // Figures 7(i)-(n): match counts.
    let count_ids = ["fig7i", "fig7j", "fig7k", "fig7l", "fig7m", "fig7n"];
    for (idx, dataset) in DatasetKind::all().iter().enumerate() {
        if wants(count_ids[idx]) {
            println!(
                "{}",
                match_counts::counts_vs_pattern_size(*dataset, &scale).to_table()
            );
        }
        if wants(count_ids[idx + 3]) {
            println!(
                "{}",
                match_counts::counts_vs_data_size(*dataset, &scale).to_table()
            );
        }
    }

    // Table 3: matched-subgraph sizes.
    if wants("table3") {
        println!(
            "{}",
            match_sizes::render_table3(&match_sizes::table3(&scale))
        );
    }

    // Figures 8(a)-(h): performance.
    let perf_pattern_ids = ["fig8a", "fig8b", "fig8c"];
    let perf_data_ids = ["fig8e", "fig8f", "fig8g"];
    for (idx, dataset) in DatasetKind::all().iter().enumerate() {
        if wants(perf_pattern_ids[idx]) {
            println!(
                "{}",
                performance::time_vs_pattern_size(*dataset, &scale).to_table()
            );
        }
        if wants(perf_data_ids[idx]) {
            println!(
                "{}",
                performance::time_vs_data_size(*dataset, &scale).to_table()
            );
        }
    }
    if wants("fig8d") {
        println!(
            "{}",
            performance::time_vs_pattern_density(&scale).to_table()
        );
    }
    if wants("fig8h") {
        println!("{}", performance::time_vs_data_density(&scale).to_table());
    }

    // Optimisation ablation and distributed evaluation.
    if wants("opt") {
        let rows = ablation::optimization_ablation(DatasetKind::Synthetic, &scale);
        println!("{}", ablation::render(&rows, DatasetKind::Synthetic));
    }
    if wants("dist") {
        let rows = distributed_exp::traffic_vs_sites(DatasetKind::AmazonLike, &scale);
        println!(
            "{}",
            distributed_exp::render(&rows, DatasetKind::AmazonLike)
        );
    }
    if wants("upd") {
        let rows = updates::update_streams(DatasetKind::Synthetic, &scale);
        println!("{}", updates::render(&rows, DatasetKind::Synthetic));
    }
}

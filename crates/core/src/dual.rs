//! Dual simulation `Q ≺D G`: child- **and** parent-preserving simulation.
//!
//! Dual simulation strengthens graph simulation with the *duality* condition: for every pair
//! `(u, v)` in the relation and every pattern edge `(u2, u)` there must be a data edge
//! `(v2, v)` with `(u2, v2)` in the relation. The maximum dual-simulation relation is unique
//! (Lemma 1) and is the building block of strong simulation: the `Match` algorithm runs this
//! procedure (`DualSim` in Fig. 3) inside every ball.

use crate::relation::MatchRelation;
use crate::simulation::{initial_candidates, refine, refine_with, RefineMode, RefineStrategy};
use ssim_graph::{AdjView, Graph, GraphView, NodeId, Pattern};

/// Computes the maximum dual-simulation relation of `pattern` over `view`
/// (procedure `DualSim` of the paper).
///
/// Returns `None` when the view does not match the pattern via dual simulation.
pub fn dual_simulation_view<V: AdjView>(pattern: &Pattern, view: &V) -> Option<MatchRelation> {
    let relation = refine(
        pattern,
        view,
        RefineMode::ChildrenAndParents,
        initial_candidates(pattern, view),
    );
    relation.filter(MatchRelation::is_total)
}

/// Computes the maximum dual-simulation relation over the whole data graph.
pub fn dual_simulation(pattern: &Pattern, data: &Graph) -> Option<MatchRelation> {
    dual_simulation_view(pattern, &GraphView::full(data))
}

/// [`dual_simulation`] with an explicit [`RefineStrategy`] — `NaiveFixpoint` is the seed's
/// re-scan loop, kept as the equivalence oracle for tests and ablation benches.
pub fn dual_simulation_with(
    pattern: &Pattern,
    data: &Graph,
    strategy: RefineStrategy,
) -> Option<MatchRelation> {
    let view = GraphView::full(data);
    let relation = refine_with(
        pattern,
        &view,
        RefineMode::ChildrenAndParents,
        initial_candidates(pattern, &view),
        strategy,
    );
    relation.filter(MatchRelation::is_total)
}

/// Returns `true` when `Q ≺D G`.
pub fn dual_simulates(pattern: &Pattern, data: &Graph) -> bool {
    dual_simulation(pattern, data).is_some()
}

/// Refines an arbitrary starting relation down to the maximum dual-simulation relation
/// contained in it. Used by the `dualFilter` optimisation, which starts from the global
/// relation projected onto a ball rather than from the label-based candidates.
pub fn refine_dual<V: AdjView>(
    pattern: &Pattern,
    view: &V,
    start: MatchRelation,
) -> Option<MatchRelation> {
    let relation = refine(pattern, view, RefineMode::ChildrenAndParents, start);
    relation.filter(MatchRelation::is_total)
}

/// [`refine_dual`] with an explicit [`RefineStrategy`].
pub fn refine_dual_with<V: AdjView>(
    pattern: &Pattern,
    view: &V,
    start: MatchRelation,
    strategy: RefineStrategy,
) -> Option<MatchRelation> {
    let relation = refine_with(
        pattern,
        view,
        RefineMode::ChildrenAndParents,
        start,
        strategy,
    );
    relation.filter(MatchRelation::is_total)
}

/// Checks that `relation` is a valid dual-simulation witness (labels, totality, child and
/// parent conditions). Used by tests and the topology report.
pub fn is_valid_dual_simulation(pattern: &Pattern, data: &Graph, relation: &MatchRelation) -> bool {
    let view = GraphView::full(data);
    if !crate::simulation::is_valid_simulation(pattern, data, relation) {
        return false;
    }
    for (u_parent, u) in pattern.graph().edges() {
        for v in relation.candidates(u).iter().map(NodeId::from_index) {
            if !view.in_neighbors(v).any(|w| relation.contains(u_parent, w)) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::graph_simulation;
    use ssim_graph::Label;

    /// The Q2/G2 example of the paper (Example 2(4)): a book recommended by both a student
    /// and a teacher. Simulation keeps book1 (student-only); dual simulation removes it.
    fn book_example() -> (Pattern, Graph) {
        let pattern = Pattern::from_edges(
            vec![
                Label(0), /*ST*/
                Label(1), /*TE*/
                Label(2), /*book*/
            ],
            &[(0, 2), (1, 2)],
        )
        .unwrap();
        let data = Graph::from_edges(
            vec![
                Label(0),
                Label(1),
                Label(2), /*book1*/
                Label(2), /*book2*/
            ],
            &[(0, 2), (0, 3), (1, 3)],
        )
        .unwrap();
        (pattern, data)
    }

    #[test]
    fn duality_filters_book1() {
        let (pattern, data) = book_example();
        let sim = graph_simulation(&pattern, &data).unwrap();
        assert!(
            sim.contains(NodeId(2), NodeId(2)),
            "plain simulation keeps book1"
        );
        let dual = dual_simulation(&pattern, &data).unwrap();
        assert!(
            !dual.contains(NodeId(2), NodeId(2)),
            "dual simulation removes book1"
        );
        assert!(dual.contains(NodeId(2), NodeId(3)));
        assert!(is_valid_dual_simulation(&pattern, &data, &dual));
    }

    #[test]
    fn dual_relation_is_contained_in_simulation_relation() {
        let (pattern, data) = book_example();
        let sim = graph_simulation(&pattern, &data).unwrap();
        let dual = dual_simulation(&pattern, &data).unwrap();
        assert!(dual.is_subrelation_of(&sim));
    }

    #[test]
    fn no_dual_match_when_parent_is_missing() {
        // Pattern: A -> B. Data has B but no A parent for it... actually also no A at all
        // for sim(A); build a subtler case: A exists but never points at B.
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let data =
            Graph::from_edges(vec![Label(0), Label(1), Label(3)], &[(0, 2), (2, 1)]).unwrap();
        assert!(!dual_simulates(&pattern, &data));
        assert!(!crate::simulation::simulates(&pattern, &data));
    }

    #[test]
    fn undirected_cycle_pattern_rejects_tree_data() {
        // Pattern Q1-style undirected cycle HR -> SE, HR -> Bio, SE -> Bio.
        // Data: a tree HR -> SE -> Bio plus HR -> Bio2 — the cycle cannot be matched because
        // no single Bio has both an HR parent and an SE parent.
        let pattern = Pattern::from_edges(
            vec![Label(0), Label(1), Label(2)],
            &[(0, 1), (0, 2), (1, 2)],
        )
        .unwrap();
        let tree = Graph::from_edges(
            vec![Label(0), Label(1), Label(2), Label(2)],
            &[(0, 1), (1, 2), (0, 3)],
        )
        .unwrap();
        // Graph simulation happily matches the tree (Example 1's observation)…
        assert!(crate::simulation::simulates(&pattern, &tree));
        // …but dual simulation rejects it.
        assert!(!dual_simulates(&pattern, &tree));
    }

    #[test]
    fn dual_simulation_on_isomorphic_copy_is_identity_like() {
        // Matching a pattern against itself keeps every node (reflexive pairs at minimum).
        let pattern = Pattern::from_edges(
            vec![Label(0), Label(1), Label(2)],
            &[(0, 1), (1, 2), (2, 0)],
        )
        .unwrap();
        let data = pattern.graph().clone();
        let dual = dual_simulation(&pattern, &data).unwrap();
        for u in pattern.nodes() {
            assert!(dual.contains(u, u));
        }
    }

    #[test]
    fn refine_dual_from_projected_superset() {
        let (pattern, data) = book_example();
        let full = dual_simulation(&pattern, &data).unwrap();
        // Start from the full label-based candidates (a superset) and refine: same result.
        let start = initial_candidates(&pattern, &GraphView::full(&data));
        let refined = refine_dual(&pattern, &GraphView::full(&data), start).unwrap();
        assert_eq!(refined.to_sorted_pairs(), full.to_sorted_pairs());
    }

    #[test]
    fn unique_maximum_lemma1() {
        // Any valid dual-simulation witness is contained in the computed maximum (Lemma 1).
        let (pattern, data) = book_example();
        let maximum = dual_simulation(&pattern, &data).unwrap();
        let mut witness = MatchRelation::empty(3, 4);
        witness.insert(NodeId(0), NodeId(0));
        witness.insert(NodeId(1), NodeId(1));
        witness.insert(NodeId(2), NodeId(3));
        assert!(is_valid_dual_simulation(&pattern, &data, &witness));
        assert!(witness.is_subrelation_of(&maximum));
    }

    #[test]
    fn dual_on_restricted_view() {
        use ssim_graph::BitSet;
        let (pattern, data) = book_example();
        // Restrict the view to {ST, book1}: the pattern cannot match inside it.
        let mut members = BitSet::new(data.node_count());
        members.insert(0);
        members.insert(2);
        let view = GraphView::restricted(&data, &members);
        assert!(dual_simulation_view(&pattern, &view).is_none());
    }
}

//! Strong simulation for graph pattern matching.
//!
//! This crate is the primary contribution of the reproduction of
//! *"Capturing Topology in Graph Pattern Matching"* (Ma, Cao, Fan, Huai, Wo — VLDB 2011).
//! It implements the full family of simulation-based matching notions studied in the paper,
//! ordered from weakest to strongest:
//!
//! * **graph simulation** `Q ≺ G` — child-preserving matching ([`simulation`]),
//! * **dual simulation** `Q ≺D G` — child- and parent-preserving matching ([`dual`]),
//! * **strong simulation** `Q ≺LD G` — dual simulation confined to balls of radius `dQ`,
//!   producing *perfect subgraphs* ([`strong`]),
//! * **bounded simulation** — the Fan et al. 2010 extension with hop bounds on pattern
//!   edges, provided for completeness ([`bounded`]),
//! * **bisimulation** — the stronger, intractable-to-match notion discussed in Section 3.2
//!   ([`bisimulation`]).
//!
//! On top of the matchers the crate provides the optimisations of Section 4.2 —
//! query minimization ([`minimize`]), dual-simulation filtering ([`dual_filter`]) and
//! connectivity pruning ([`pruning`]) — and the topology-preservation criteria of Section 3
//! ([`topology`]).
//!
//! # Quick example
//!
//! ```
//! use ssim_graph::{GraphBuilder, Pattern};
//! use ssim_core::strong::{strong_simulation, MatchConfig};
//!
//! // Pattern: a book recommended by a student (ST) and a teacher (TE) — Q2 of the paper.
//! let mut qb = GraphBuilder::new();
//! let st = qb.add_node("ST");
//! let te = qb.add_node("TE");
//! let book = qb.add_node("book");
//! qb.add_edge(st, book);
//! qb.add_edge(te, book);
//! let pattern = Pattern::new(qb.build()).unwrap();
//!
//! // Data graph: book1 recommended only by a student, book2 by both.
//! let mut gb = GraphBuilder::new();
//! let st1 = gb.add_node("ST");
//! let te1 = gb.add_node("TE");
//! let book1 = gb.add_node("book");
//! let book2 = gb.add_node("book");
//! gb.add_edge(st1, book1);
//! gb.add_edge(st1, book2);
//! gb.add_edge(te1, book2);
//! let data = gb.build();
//!
//! let result = strong_simulation(&pattern, &data, &MatchConfig::default());
//! // book2 is matched, book1 is filtered out by the duality condition.
//! assert!(result.subgraphs.iter().all(|s| s.nodes.contains(&book2)));
//! assert!(result.subgraphs.iter().all(|s| !s.nodes.contains(&book1)));
//! ```

pub mod ball;
pub mod bisimulation;
pub mod bounded;
pub mod dual;
pub mod dual_filter;
pub mod incremental;
pub mod match_graph;
pub mod minimize;
pub mod parallel;
pub mod pruning;
pub mod relation;
pub mod repetition;
pub mod service;
pub mod simulation;
pub mod strong;
pub mod topology;
pub mod warm;

pub use ball::{locality_center_order, BallForest, BallMove, BallStrategy, BallSubstrate};
pub use dual::{dual_simulates, dual_simulation, dual_simulation_with};
pub use incremental::{IncrementalMatcher, PreparedGlobal, UpdatePlan, UpdateStats};
pub use match_graph::{MatchGraph, PerfectSubgraph};
pub use minimize::minimize_pattern;
pub use relation::MatchRelation;
pub use repetition::{
    enforce_repetition, has_repeated_labels, RepetitionMode, RepetitionOutcome,
    RepetitionSemantics, REPETITION_BUDGET,
};
pub use service::{
    BuilderError, PatternBuilder, QueryId, QueryService, QueryUpdate, ServiceUpdate, SharingStats,
};
pub use simulation::{
    graph_simulation, graph_simulation_with, simulates, RefineSeed, RefineStrategy,
};
pub use strong::{strong_simulation, MatchConfig, MatchOutput, MatchStats};
pub use warm::{WarmMatcher, WarmStats};

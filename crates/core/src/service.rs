//! Multi-pattern query service: standing queries over one shared, mutating graph.
//!
//! Everything else in this crate is one-pattern-one-shot (or one-pattern-one-session);
//! production traffic is many concurrent patterns standing over the same data graph.
//! Naively that is N independent [`crate::incremental::IncrementalMatcher`] sessions —
//! N private copies of the substrate, N delta applications, N edge-ball sweeps and N
//! region extractions per update, even though every one of those is a pure function of
//! the *shared* graph. [`QueryService`] collapses the redundancy without giving up the
//! per-pattern bit-identity contract:
//!
//! 1. **One substrate.** The registry holds a single epoch-versioned
//!    [`VersionedGraph`]; every registered query's [`PatternState`] (fixpoint, matched
//!    set, `Gm` cache) is maintained against it. Readers pin epochs via
//!    [`QueryService::pin`], and a delta lands on the overlay exactly once per
//!    [`QueryService::apply`] — not once per query.
//! 2. **Single-sweep delta fan-out.** The dirty-ball edge sweeps
//!    ([`ssim_graph::delta::mark_edge_ball_centers`] over the deleted edges on the
//!    pre-update graph and the inserted edges on the post-update graph) depend only on
//!    `(graph, delta, radius)`. The service runs them **once per distinct radius** and
//!    routes the result into every pattern's dirty set; patterns on the `Gm` substrate
//!    sweep their own cached extractions exactly as a private session would.
//! 3. **Shared-work scheduling.** Per apply, one [`SubstrateCache`] memoises the flat
//!    materialisation of the overlay and each `(radius, dirty)` region extraction
//!    across the per-pattern passes, and at registration a query whose
//!    pattern-and-shape equals an already-registered one clones that query's
//!    maintained state instead of recomputing the global fixpoint. Queries with
//!    overlapping label signatures ([`QueryService::signature_groups`]) are where the
//!    sharing bites: same-radius patterns over the same labels produce identical dirty
//!    sets, so their sweeps and region extractions collapse to one.
//! 4. **Bit-identity.** Every shared value is a pure function of inputs an independent
//!    session would compute for itself, so each query's [`MatchOutput`] — rows *and*
//!    stats — is bit-identical to a private `IncrementalMatcher` fed the same deltas.
//!    `tests/service_equivalence.rs` pins that differential oracle property-style.
//!
//! Patterns enter through the fluent [`PatternBuilder`]
//! (`.component(..)`, `.one_way_direction(..)` chains → a validated [`Pattern`]):
//!
//! ```
//! use ssim_core::service::{PatternBuilder, QueryService};
//! use ssim_core::strong::MatchConfig;
//! use ssim_graph::{Graph, Label};
//!
//! let pattern = PatternBuilder::new()
//!     .component("student", Label(0))
//!     .component("book", Label(1))
//!     .one_way_direction("student", "book")
//!     .build()
//!     .unwrap();
//!
//! let data = Graph::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
//! let mut service = QueryService::new(data);
//! let id = service.register(&pattern, MatchConfig::optimized());
//! assert!(service.output(id).unwrap().is_match());
//! ```

use crate::incremental::{
    deduped_copy, refreshed_pattern_stats, run_pattern_pass, splice_rows, PatternState,
    SubstrateCache, UpdatePlan, UpdateStats, DIRTY_BAIL_FRACTION,
};
use crate::match_graph::PerfectSubgraph;
use crate::strong::{match_with_prepared, MatchConfig, MatchOutput};
use ssim_graph::delta::mark_edge_ball_centers;
use ssim_graph::{
    BitSet, Graph, GraphDelta, GraphEpoch, GraphError, Label, NodeId, Pattern, SnapshotHandle,
    VersionedGraph,
};
use std::collections::{BTreeMap, BTreeSet};

/// A structural error found while assembling a pattern through [`PatternBuilder`].
///
/// The builder is infallible while chaining (matching the fluent style it mirrors);
/// every error is reported at [`PatternBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuilderError {
    /// `build()` on a builder with no components.
    NoComponents,
    /// Two `component(..)` calls used the same id.
    DuplicateComponent(String),
    /// An edge endpoint names a component that was never defined; `missing` is the
    /// undefined side.
    UndefinedEndpoint {
        /// The edge's source component id.
        source: String,
        /// The edge's target component id.
        target: String,
        /// Whichever of the two ids has no matching `component(..)` call.
        missing: String,
    },
    /// The assembled component/edge set is not a valid pattern (patterns must be
    /// non-empty and connected).
    Pattern(GraphError),
}

impl std::fmt::Display for BuilderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuilderError::NoComponents => write!(f, "pattern has no components"),
            BuilderError::DuplicateComponent(id) => {
                write!(f, "component `{id}` is defined twice")
            }
            BuilderError::UndefinedEndpoint {
                source,
                target,
                missing,
            } => write!(
                f,
                "edge `{source}` -> `{target}`: `{missing}` has not been defined, \
                 use .component(\"{missing}\", ..) to define it"
            ),
            BuilderError::Pattern(e) => write!(f, "invalid pattern: {e:?}"),
        }
    }
}

impl std::error::Error for BuilderError {}

/// Fluent pattern assembly: named components with labels, one-way edges between them.
///
/// Component ids are arbitrary strings; the built [`Pattern`]'s node ids follow the
/// `component(..)` call order. Errors (duplicate ids, undefined endpoints, structurally
/// invalid patterns) surface at [`PatternBuilder::build`], so chains never panic:
///
/// ```
/// use ssim_core::service::PatternBuilder;
/// use ssim_graph::Label;
///
/// let pattern = PatternBuilder::new()
///     .component("a", Label(0))
///     .component("b", Label(1))
///     .component("c", Label(0))
///     .one_way_direction("a", "b")
///     .one_way_direction("b", "c")
///     .build()
///     .unwrap();
/// assert_eq!(pattern.node_count(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PatternBuilder {
    components: Vec<(String, Label)>,
    edges: Vec<(String, String)>,
}

impl PatternBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        PatternBuilder::default()
    }

    /// Defines a component (a pattern node) with the given id and label.
    pub fn component(mut self, id: impl Into<String>, label: Label) -> Self {
        self.components.push((id.into(), label));
        self
    }

    /// Adds a directed edge from `source` to `target`. Both must be defined via
    /// [`PatternBuilder::component`] (in any order — definition may follow use) by the
    /// time [`PatternBuilder::build`] runs.
    pub fn one_way_direction(
        mut self,
        source: impl Into<String>,
        target: impl Into<String>,
    ) -> Self {
        self.edges.push((source.into(), target.into()));
        self
    }

    /// Validates the assembled components and edges into a [`Pattern`].
    pub fn build(&self) -> Result<Pattern, BuilderError> {
        if self.components.is_empty() {
            return Err(BuilderError::NoComponents);
        }
        let mut index: BTreeMap<&str, u32> = BTreeMap::new();
        for (i, (id, _)) in self.components.iter().enumerate() {
            if index.insert(id.as_str(), i as u32).is_some() {
                return Err(BuilderError::DuplicateComponent(id.clone()));
            }
        }
        let mut edges = Vec::with_capacity(self.edges.len());
        for (source, target) in &self.edges {
            let resolve = |id: &String| {
                index
                    .get(id.as_str())
                    .copied()
                    .ok_or_else(|| BuilderError::UndefinedEndpoint {
                        source: source.clone(),
                        target: target.clone(),
                        missing: id.clone(),
                    })
            };
            edges.push((resolve(source)?, resolve(target)?));
        }
        let labels: Vec<Label> = self.components.iter().map(|(_, l)| *l).collect();
        Pattern::from_edges(labels, &edges).map_err(BuilderError::Pattern)
    }
}

/// Handle to a registered standing query. Ids are allocated monotonically and never
/// reused, so a stale handle after [`QueryService::deregister`] is simply unknown (the
/// accessors return `None`) rather than silently naming a different query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub usize);

/// One registered standing query: its pattern, configuration, maintained
/// [`PatternState`] and cached output — everything an [`IncrementalMatcher`] session
/// owns except the substrate.
///
/// [`IncrementalMatcher`]: crate::incremental::IncrementalMatcher
struct Session {
    pattern: Pattern,
    config: MatchConfig,
    signature: BTreeSet<Label>,
    state: PatternState,
    /// Pre-deduplication rows; present exactly when the configuration deduplicates
    /// (the same split [`IncrementalMatcher`] keeps).
    ///
    /// [`IncrementalMatcher`]: crate::incremental::IncrementalMatcher
    dedup_rows: Option<Vec<PerfectSubgraph>>,
    output: MatchOutput,
    last_update: UpdateStats,
}

/// Per-query slice of a [`ServiceUpdate`].
#[derive(Debug, Clone)]
pub struct QueryUpdate {
    /// The query the stats belong to.
    pub id: QueryId,
    /// The same accounting a private session's `last_update()` would report.
    pub stats: UpdateStats,
}

/// How much cross-pattern work one [`QueryService::apply`] shared.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SharingStats {
    /// Live registered queries the delta fanned out to.
    pub sessions: usize,
    /// Distinct radii the data-edge ball sweeps ran at (each runs once per side).
    pub edge_sweep_radii: usize,
    /// Sessions that consumed a shared data-edge sweep. With N same-radius full-graph
    /// sessions this reads N while `edge_sweep_radii` reads 1 — the fan-out saving.
    pub edge_sweep_consumers: usize,
    /// Substrate representations (flat materialisations + region extractions) built
    /// into the shared cache this apply.
    pub substrate_builds: usize,
    /// Substrate representations served from the shared cache instead of rebuilt —
    /// each one a whole-graph merge or region BFS+extraction an independent session
    /// would have paid.
    pub substrate_reuses: usize,
}

/// What one [`QueryService::apply`] did: the substrate epoch it produced, per-query
/// update accounting, and the cross-pattern sharing counters.
#[derive(Debug, Clone)]
pub struct ServiceUpdate {
    /// Epoch of the published substrate after the apply.
    pub epoch: GraphEpoch,
    /// The overlay compacted back to a flat base CSR during this apply.
    pub compacted: bool,
    /// Per-query stats, ascending [`QueryId`].
    pub queries: Vec<QueryUpdate>,
    /// Cross-pattern sharing accounting.
    pub sharing: SharingStats,
}

/// A registry of standing queries over one shared, epoch-versioned data graph.
///
/// See the [module docs](self) for the sharing model. The contract: after every
/// [`QueryService::apply`], each registered query's [`QueryService::output`] is
/// bit-identical — rows and stats — to a private
/// [`crate::incremental::IncrementalMatcher`] constructed on the same initial graph
/// with the same configuration and fed the same deltas.
pub struct QueryService {
    substrate: VersionedGraph,
    sessions: Vec<Option<Session>>,
}

impl QueryService {
    /// A service over `data` with no registered queries.
    pub fn new(data: Graph) -> Self {
        QueryService {
            substrate: VersionedGraph::new(data),
            sessions: Vec::new(),
        }
    }

    /// Registers a standing query and runs its initial match over the current graph.
    ///
    /// `config.update_plan` is ignored: the service *is* the incremental plan (the
    /// recompute oracle exists as N independent sessions, which is exactly what the
    /// differential suite runs). If an already-registered query has the same pattern
    /// and shape-relevant configuration, its maintained state is cloned instead of
    /// recomputing the global fixpoint — bit-identical by purity, cheaper by one
    /// fixpoint and one `Gm` extraction.
    pub fn register(&mut self, pattern: &Pattern, config: MatchConfig) -> QueryId {
        let data = self.substrate.published();
        let state = self.reusable_state(pattern, &config).unwrap_or_else(|| {
            PatternState::new(
                pattern,
                data,
                config.minimize_query,
                config.radius_override,
                config.dual_filter,
                config.ball_substrate,
                config.refine_strategy,
            )
        });
        let run_cfg = MatchConfig {
            deduplicate: false,
            update_plan: UpdatePlan::Incremental,
            ..config
        };
        // Mirror `IncrementalMatcher::new`: one unrestricted prepared pass over the
        // current graph (copy-free off the base CSR while the overlay is flat).
        let out = if data.is_flat() {
            match_with_prepared(pattern, data.base(), &run_cfg, state.prepared(), None)
        } else {
            let flat = data.to_graph();
            match_with_prepared(pattern, &flat, &run_cfg, state.prepared(), None)
        };
        let (dedup_rows, subgraphs) = if config.deduplicate {
            let subgraphs = deduped_copy(&out.subgraphs);
            (Some(out.subgraphs), subgraphs)
        } else {
            (None, out.subgraphs)
        };
        let output = MatchOutput {
            stats: refreshed_pattern_stats(out.stats, &state, data.node_count(), subgraphs.len()),
            subgraphs,
        };
        let signature = pattern
            .nodes()
            .map(|u| pattern.label(u))
            .collect::<BTreeSet<Label>>();
        let n = data.node_count();
        self.sessions.push(Some(Session {
            pattern: pattern.clone(),
            config,
            signature,
            state,
            dedup_rows,
            output,
            last_update: UpdateStats {
                dirty_balls: n,
                clean_balls: 0,
                ..UpdateStats::default()
            },
        }));
        QueryId(self.sessions.len() - 1)
    }

    /// A clone of an already-registered query's maintained state, when one with the
    /// same pattern and the same shape-relevant configuration exists. The maintained
    /// state is a pure function of those inputs over the current graph, so the clone
    /// is bit-identical to recomputing.
    fn reusable_state(&self, pattern: &Pattern, config: &MatchConfig) -> Option<PatternState> {
        self.sessions.iter().flatten().find_map(|s| {
            let same_shape = s.pattern == *pattern
                && s.config.minimize_query == config.minimize_query
                && s.config.radius_override == config.radius_override
                && s.config.dual_filter == config.dual_filter
                && s.config.ball_substrate == config.ball_substrate
                && s.config.refine_strategy == config.refine_strategy;
            same_shape.then(|| s.state.clone())
        })
    }

    /// Removes a standing query. Returns `false` when the id is unknown or already
    /// deregistered. The id is never reused.
    pub fn deregister(&mut self, id: QueryId) -> bool {
        match self.sessions.get_mut(id.0) {
            Some(slot @ Some(_)) => {
                *slot = None;
                true
            }
            _ => false,
        }
    }

    /// Ids of the live registered queries, ascending.
    pub fn query_ids(&self) -> Vec<QueryId> {
        self.sessions
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| QueryId(i)))
            .collect()
    }

    /// Number of live registered queries.
    pub fn len(&self) -> usize {
        self.sessions.iter().flatten().count()
    }

    /// `true` when no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cached match result of one query over the current graph.
    pub fn output(&self, id: QueryId) -> Option<&MatchOutput> {
        self.session(id).map(|s| &s.output)
    }

    /// Work accounting of the most recent apply for one query (or of its initial run,
    /// where every ball is dirty by definition).
    pub fn last_update(&self, id: QueryId) -> Option<&UpdateStats> {
        self.session(id).map(|s| &s.last_update)
    }

    /// The pattern a query was registered with.
    pub fn pattern(&self, id: QueryId) -> Option<&Pattern> {
        self.session(id).map(|s| &s.pattern)
    }

    /// The configuration a query was registered with.
    pub fn config(&self, id: QueryId) -> Option<&MatchConfig> {
        self.session(id).map(|s| &s.config)
    }

    /// The set of labels a query's pattern uses — its label signature.
    pub fn signature(&self, id: QueryId) -> Option<&BTreeSet<Label>> {
        self.session(id).map(|s| &s.signature)
    }

    /// Epoch of the currently published substrate version.
    pub fn epoch(&self) -> GraphEpoch {
        self.substrate.epoch()
    }

    /// Pins the published substrate version — an `O(1)` epoch-tagged snapshot that
    /// stays readable across later applies and compactions.
    pub fn pin(&self) -> SnapshotHandle {
        self.substrate.pin()
    }

    /// The current data graph, materialised flat — an `O(|V|+|E|)` merge meant for
    /// oracles and tests, not the serving path (use [`QueryService::pin`] to read
    /// without materialising).
    pub fn data(&self) -> Graph {
        self.substrate.published().to_graph()
    }

    /// Groups the live queries by *overlapping* label signatures (transitively: two
    /// queries sharing any label land in one group, and a third overlapping either
    /// joins them). Groups are where cross-pattern sharing concentrates — same-radius
    /// patterns over the same labels produce identical dirty sets — and they are the
    /// unit a deployment would shard by: queries in different groups share only the
    /// substrate itself.
    pub fn signature_groups(&self) -> Vec<Vec<QueryId>> {
        let mut groups: Vec<(BTreeSet<Label>, Vec<QueryId>)> = Vec::new();
        for (i, s) in self.sessions.iter().enumerate() {
            let Some(s) = s else { continue };
            let (mut overlapping, disjoint): (Vec<_>, Vec<_>) = groups
                .drain(..)
                .partition(|(sig, _)| !sig.is_disjoint(&s.signature));
            let mut merged = (s.signature.clone(), vec![QueryId(i)]);
            for (sig, ids) in overlapping.drain(..) {
                merged.0.extend(sig);
                // Earlier groups hold smaller ids; extending keeps ascending order.
                let mut ids = ids;
                ids.extend(std::mem::take(&mut merged.1));
                merged.1 = ids;
            }
            merged.1.sort_unstable();
            groups = disjoint;
            groups.push(merged);
        }
        groups.sort_by_key(|(_, ids)| ids[0]);
        groups.into_iter().map(|(_, ids)| ids).collect()
    }

    /// Applies one validated delta to the shared substrate and fans it out to every
    /// registered query in a single sweep: edge-ball marking once per distinct radius,
    /// one substrate cache across the per-query restricted passes. Fails (leaving the
    /// substrate and every query untouched) when the delta does not validate against
    /// the current graph.
    pub fn apply(&mut self, delta: &GraphDelta) -> Result<ServiceUpdate, GraphError> {
        delta.validate(self.substrate.published())?;
        let n = self.substrate.published().node_count();
        let deleted: Vec<(NodeId, NodeId)> = delta.deleted_edges().collect();
        let inserted: Vec<(NodeId, NodeId)> = delta.inserted_edges().collect();

        // The shared halves of the dirty sweep: deleted edges localise in the
        // pre-update graph, inserted edges in the post-update one, per distinct radius
        // among the queries that sweep data edges (full-graph localisation); `Gm`
        // queries sweep their own cached extractions inside `advance_applied`.
        let mut sweeps: BTreeMap<usize, (BitSet, BitSet)> = BTreeMap::new();
        let mut sweep_consumers = 0usize;
        for s in self.sessions.iter().flatten() {
            if s.state.sweeps_data_edges() {
                sweep_consumers += 1;
                sweeps
                    .entry(s.state.radius)
                    .or_insert_with(|| (BitSet::new(n), BitSet::new(n)));
            }
        }
        for (radius, (pre, _)) in sweeps.iter_mut() {
            mark_edge_ball_centers(self.substrate.published(), &deleted, *radius, pre);
        }

        let compactions_before = self.substrate.published().compactions();
        self.substrate
            .stage(delta)
            .expect("validated against the published version");
        self.substrate.publish();
        let data = self.substrate.published();
        let compacted = data.compactions() > compactions_before;

        for (radius, (_, post)) in sweeps.iter_mut() {
            mark_edge_ball_centers(data, &inserted, *radius, post);
        }

        let empty = BitSet::new(n);
        let mut cache = SubstrateCache::new();
        let mut queries = Vec::new();
        for (i, slot) in self.sessions.iter_mut().enumerate() {
            let Some(sess) = slot else { continue };
            let (pre, post) = match sweeps.get(&sess.state.radius) {
                Some((pre, post)) if sess.state.sweeps_data_edges() => (pre, post),
                _ => (&empty, &empty),
            };
            let effect = sess.state.advance_applied(data, delta, pre, post);
            // From here the per-query path mirrors `IncrementalMatcher::apply` exactly
            // — same bail, same restricted pass (modulo the shared cache, which only
            // memoises values the private pass would compute identically), same splice
            // and re-deduplication.
            let run_cfg = MatchConfig {
                deduplicate: false,
                ..sess.config
            };
            let bailed = effect.dirty.len() > (DIRTY_BAIL_FRACTION * n as f64) as usize;
            let (out, dirty) = if bailed {
                let out = run_pattern_pass(
                    &sess.pattern,
                    data,
                    &sess.state,
                    &run_cfg,
                    None,
                    Some(&mut cache),
                );
                (out, None)
            } else {
                let out = run_pattern_pass(
                    &sess.pattern,
                    data,
                    &sess.state,
                    &run_cfg,
                    Some(&effect.dirty),
                    Some(&mut cache),
                );
                (out, Some(&effect.dirty))
            };
            match (&mut sess.dedup_rows, dirty) {
                (Some(rows), Some(dirty)) => {
                    splice_rows(rows, dirty, out.subgraphs);
                    sess.output.subgraphs = deduped_copy(rows);
                }
                (Some(rows), None) => {
                    *rows = out.subgraphs;
                    sess.output.subgraphs = deduped_copy(rows);
                }
                (None, Some(dirty)) => {
                    splice_rows(&mut sess.output.subgraphs, dirty, out.subgraphs)
                }
                (None, None) => sess.output.subgraphs = out.subgraphs,
            }
            sess.output.stats =
                refreshed_pattern_stats(out.stats, &sess.state, n, sess.output.subgraphs.len());
            sess.last_update = UpdateStats {
                dirty_balls: if bailed { n } else { effect.dirty.len() },
                clean_balls: if bailed { 0 } else { n - effect.dirty.len() },
                pairs_gained: effect.pairs_gained,
                pairs_lost: effect.pairs_lost,
                relation_recomputed: effect.relation_recomputed,
                gm_reextracted: effect.gm_reextracted,
                dirty_bailed: bailed,
                overlay_compacted: compacted,
            };
            queries.push(QueryUpdate {
                id: QueryId(i),
                stats: sess.last_update.clone(),
            });
        }

        let (substrate_reuses, substrate_builds) = cache.counters();
        Ok(ServiceUpdate {
            epoch: self.substrate.epoch(),
            compacted,
            queries,
            sharing: SharingStats {
                sessions: sweep_consumers.max(self.len()),
                edge_sweep_radii: sweeps.len(),
                edge_sweep_consumers: sweep_consumers,
                substrate_builds,
                substrate_reuses,
            },
        })
    }

    /// Applies a batch of deltas as **one** maintenance step, mirroring
    /// [`crate::incremental::IncrementalMatcher::apply_batch`]: the stream is staged on
    /// a cheap overlay clone to validate its order-sensitive legality up front, folded
    /// into its net delta ([`GraphDelta::then`]) and fed through a single
    /// [`QueryService::apply`] — so sweeps, fixpoint maintenance and the restricted
    /// passes are paid once per batch for *every* registered query. A mid-stream
    /// validation error leaves the substrate and every query untouched.
    pub fn apply_batch(&mut self, deltas: &[GraphDelta]) -> Result<ServiceUpdate, GraphError> {
        let [first, rest @ ..] = deltas else {
            return Ok(ServiceUpdate {
                epoch: self.substrate.epoch(),
                compacted: false,
                queries: Vec::new(),
                sharing: SharingStats {
                    sessions: self.len(),
                    ..SharingStats::default()
                },
            });
        };
        if rest.is_empty() {
            return self.apply(first);
        }
        // O(patch-slots) clone — the base CSR is shared behind an Arc.
        let mut staged = self.substrate.published().clone();
        for d in deltas {
            staged.apply_delta(d)?;
        }
        let mut net = first.clone();
        for d in rest {
            net = net.then(d);
        }
        self.apply(&net)
    }

    fn session(&self, id: QueryId) -> Option<&Session> {
        self.sessions.get(id.0).and_then(|s| s.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::IncrementalMatcher;

    fn chain_data() -> Graph {
        let labels: Vec<Label> = (0..12u32).map(|i| Label(i % 2)).collect();
        let edges: Vec<(u32, u32)> = (0..11u32).map(|i| (i, i + 1)).collect();
        Graph::from_edges(labels, &edges).unwrap()
    }

    fn path_pattern(labels: &[u32]) -> Pattern {
        let edges: Vec<(u32, u32)> = (0..labels.len() as u32 - 1).map(|i| (i, i + 1)).collect();
        Pattern::from_edges(labels.iter().map(|&l| Label(l)).collect(), &edges).unwrap()
    }

    #[test]
    fn builder_assembles_a_path() {
        let built = PatternBuilder::new()
            .component("a", Label(0))
            .component("b", Label(1))
            .one_way_direction("a", "b")
            .build()
            .unwrap();
        assert_eq!(built, path_pattern(&[0, 1]));
    }

    #[test]
    fn builder_reports_undefined_endpoints_and_duplicates() {
        let missing = PatternBuilder::new()
            .component("a", Label(0))
            .one_way_direction("a", "ghost")
            .build();
        assert_eq!(
            missing,
            Err(BuilderError::UndefinedEndpoint {
                source: "a".into(),
                target: "ghost".into(),
                missing: "ghost".into(),
            })
        );
        let dup = PatternBuilder::new()
            .component("a", Label(0))
            .component("a", Label(1))
            .build();
        assert_eq!(dup, Err(BuilderError::DuplicateComponent("a".into())));
        assert_eq!(
            PatternBuilder::new().build(),
            Err(BuilderError::NoComponents)
        );
    }

    #[test]
    fn service_tracks_independent_sessions_through_a_delta() {
        let data = chain_data();
        let patterns = [path_pattern(&[0, 1]), path_pattern(&[1, 0])];
        let config = MatchConfig::optimized();
        let mut service = QueryService::new(data.clone());
        let ids: Vec<QueryId> = patterns
            .iter()
            .map(|p| service.register(p, config))
            .collect();
        let mut oracles: Vec<IncrementalMatcher> = patterns
            .iter()
            .map(|p| IncrementalMatcher::new(p, data.clone(), config))
            .collect();
        for (id, oracle) in ids.iter().zip(&oracles) {
            assert_eq!(
                service.output(*id).unwrap(),
                oracle.output(),
                "initial output"
            );
        }
        let mut delta = GraphDelta::new();
        delta.delete_edge(NodeId(5), NodeId(6));
        delta.insert_edge(NodeId(6), NodeId(5));
        let update = service.apply(&delta).unwrap();
        assert_eq!(update.queries.len(), 2);
        // optimized() is a Gm-substrate shape: it sweeps its own cached extraction,
        // so the shared data-edge sweep plane stays idle.
        assert_eq!(update.sharing.edge_sweep_radii, 0);
        assert_eq!(update.sharing.edge_sweep_consumers, 0);
        for (id, oracle) in ids.iter().zip(oracles.iter_mut()) {
            oracle.apply(&delta).unwrap();
            assert_eq!(service.output(*id).unwrap(), oracle.output(), "post-delta");
            assert_eq!(
                service.last_update(*id).unwrap(),
                oracle.last_update(),
                "per-query stats"
            );
        }
    }

    #[test]
    fn registry_lifecycle_register_deregister_reuse() {
        let data = chain_data();
        let mut service = QueryService::new(data);
        let a = service.register(&path_pattern(&[0, 1]), MatchConfig::basic());
        let b = service.register(&path_pattern(&[0, 1]), MatchConfig::basic());
        assert_ne!(a, b, "identical queries get distinct ids");
        assert_eq!(service.len(), 2);
        assert_eq!(service.output(a), service.output(b));
        assert!(service.deregister(a));
        assert!(!service.deregister(a), "double deregister is a no-op");
        assert_eq!(service.len(), 1);
        assert!(service.output(a).is_none(), "stale handle goes dark");
        assert!(service.output(b).is_some());
        let c = service.register(&path_pattern(&[1, 0]), MatchConfig::basic());
        assert!(c > b, "ids are never reused");
        let mut delta = GraphDelta::new();
        delta.delete_edge(NodeId(0), NodeId(1));
        let update = service.apply(&delta).unwrap();
        assert_eq!(update.queries.len(), 2, "only live queries are updated");
    }

    #[test]
    fn signature_groups_merge_transitively() {
        let data = chain_data();
        let mut service = QueryService::new(data);
        let a = service.register(&path_pattern(&[0, 0]), MatchConfig::basic());
        let b = service.register(&path_pattern(&[1, 1]), MatchConfig::basic());
        assert_eq!(service.signature_groups(), vec![vec![a], vec![b]]);
        // {0,1} overlaps both — everything merges.
        let c = service.register(&path_pattern(&[0, 1]), MatchConfig::basic());
        assert_eq!(service.signature_groups(), vec![vec![a, b, c]]);
    }

    #[test]
    fn invalid_delta_leaves_every_query_untouched() {
        let data = chain_data();
        let mut service = QueryService::new(data);
        let id = service.register(&path_pattern(&[0, 1]), MatchConfig::basic());
        let before = service.output(id).unwrap().clone();
        let epoch = service.epoch();
        let mut bad = GraphDelta::new();
        bad.delete_edge(NodeId(1), NodeId(0)); // not present
        assert!(service.apply(&bad).is_err());
        assert_eq!(service.output(id).unwrap(), &before);
        assert_eq!(service.epoch(), epoch);
    }
}

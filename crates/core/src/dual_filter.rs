//! Dual-simulation filtering (Algorithm `dualFilter`, Fig. 5; Proposition 5).
//!
//! Instead of re-running dual simulation from label-based candidates in every ball, the
//! optimised matcher first computes the maximum dual-simulation relation `S_G` over the
//! **whole** data graph once, then projects it onto each ball. Inside a ball, a projected
//! pair can only be invalid because of a *border node* (a node at distance exactly `dQ`
//! from the center, whose neighbours may lie outside the ball) or because of a cascade
//! started at one — Proposition 5. The removal process therefore starts from border pairs
//! and propagates with a work queue, typically touching a small fraction of the ball.

use crate::relation::MatchRelation;
use ssim_graph::{AdjView, NodeId, Pattern};
use std::collections::VecDeque;

/// Refines the projection of the global relation onto a ball down to the ball's maximum
/// dual-simulation relation, starting the removal process from the ball's border nodes.
///
/// `projected` must be the global maximum dual-simulation relation already projected onto
/// the ball members (and possibly further restricted by connectivity pruning), expressed in
/// the same id space as `view` and `border` — either global ids with a restricted view (the
/// seed path) or ball-local ids with a [`ssim_graph::CompactBall`]'s graph. Returns `None`
/// when some pattern node loses all candidates, i.e. the ball holds no match.
///
/// Statistics about the work performed are accumulated into `removed_pairs` when provided.
pub fn refine_projected<V: AdjView>(
    pattern: &Pattern,
    view: &V,
    border: &[NodeId],
    projected: MatchRelation,
    removed_pairs: Option<&mut usize>,
) -> Option<MatchRelation> {
    // Seed: pairs whose data node is a border node (lines 2-5 of Fig. 5); the shared
    // drain verifies their support and cascades the removals.
    let suspects: Vec<(NodeId, NodeId)> = border
        .iter()
        .flat_map(|&v| {
            projected
                .pattern_nodes_matching(v)
                .into_iter()
                .map(move |u| (u, v))
        })
        .collect();
    let projected = refine_suspects(pattern, view, projected, suspects, removed_pairs);
    if projected.is_total() {
        Some(projected)
    } else {
        None
    }
}

/// The removal-propagation core shared by [`refine_projected`] and the warm-started
/// per-ball refinement ([`crate::warm`]): verifies every *suspect* pair against the
/// current relation, removes the unsupported ones and cascades each removal to the
/// neighbouring pairs whose support it carried, until a fixpoint.
///
/// Computes the maximum dual-simulation relation contained in `relation` **provided**
/// `suspects` covers every pair that is unsupported w.r.t. the starting relation — pairs
/// whose support is intact at the start can only become invalid through a removal, and
/// the cascade re-checks exactly those. Unlike the worklist engine this never exits early
/// on an emptied candidate set: callers that carry the result across balls need the true
/// fixpoint, not a partially drained relation.
pub(crate) fn refine_suspects<V: AdjView>(
    pattern: &Pattern,
    view: &V,
    mut relation: MatchRelation,
    suspects: impl IntoIterator<Item = (NodeId, NodeId)>,
    mut removed_pairs: Option<&mut usize>,
) -> MatchRelation {
    let q = pattern.graph();
    // Work queue of invalid (pattern node, data node) pairs.
    let mut queue: VecDeque<(NodeId, NodeId)> = VecDeque::new();
    for (u, v) in suspects {
        if relation.contains(u, v) && !pair_supported(pattern, view, &relation, u, v) {
            queue.push_back((u, v));
        }
    }

    while let Some((u, v)) = queue.pop_front() {
        if !relation.remove(u, v) {
            continue; // already removed through another path
        }
        if let Some(count) = removed_pairs.as_deref_mut() {
            *count += 1;
        }
        // Parents of u in Q matched to parents of v may have lost their child support
        // (lines 8-11).
        for u2 in q.in_neighbors(u) {
            for v2 in view.in_neighbors(v) {
                if relation.contains(u2, v2)
                    && !view.out_neighbors(v2).any(|w| relation.contains(u, w))
                {
                    queue.push_back((u2, v2));
                }
            }
        }
        // Children of u in Q matched to children of v may have lost their parent support
        // (lines 12-15).
        for u1 in q.out_neighbors(u) {
            for v1 in view.out_neighbors(v) {
                if relation.contains(u1, v1)
                    && !view.in_neighbors(v1).any(|w| relation.contains(u, w))
                {
                    queue.push_back((u1, v1));
                }
            }
        }
    }
    relation
}

/// Returns `true` when the pair `(u, v)` has both child and parent support inside the view.
pub(crate) fn pair_supported<V: AdjView>(
    pattern: &Pattern,
    view: &V,
    relation: &MatchRelation,
    u: NodeId,
    v: NodeId,
) -> bool {
    let q = pattern.graph();
    for u1 in q.out_neighbors(u) {
        if !view.out_neighbors(v).any(|w| relation.contains(u1, w)) {
            return false;
        }
    }
    for u2 in q.in_neighbors(u) {
        if !view.in_neighbors(v).any(|w| relation.contains(u2, w)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual::{dual_simulation, dual_simulation_view};
    use ssim_graph::{Ball, Graph, Label};

    /// Builds the Fig. 6(b)-style data: a chain of A -> B pairs where the outermost pair
    /// loses support once confined to a ball.
    fn chain_data() -> (Pattern, Graph) {
        // Pattern: A -> B -> C ... simplified to A -> B with a C tail so diameters differ.
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        // Data: A1 -> B1 -> A2 -> B2 -> A3 -> B3   (B -> A edges carry no pattern meaning but
        // keep the chain connected), all labelled alternately A/B.
        let data = Graph::from_edges(
            vec![Label(0), Label(1), Label(0), Label(1), Label(0), Label(1)],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)],
        )
        .unwrap();
        (pattern, data)
    }

    #[test]
    fn projection_plus_refinement_equals_fresh_dual_sim_on_ball() {
        let (pattern, data) = chain_data();
        let global = dual_simulation(&pattern, &data).unwrap();
        for center in data.nodes() {
            let ball = Ball::new(&data, center, pattern.diameter().max(1));
            let view = ball.view(&data);
            let projected = global.project(ball.membership());
            let filtered = refine_projected(&pattern, &view, &ball.border_nodes(), projected, None);
            let fresh = dual_simulation_view(&pattern, &view);
            match (filtered, fresh) {
                (None, None) => {}
                (Some(a), Some(b)) => assert_eq!(
                    a.to_sorted_pairs(),
                    b.to_sorted_pairs(),
                    "mismatch for ball centred at {center}"
                ),
                (a, b) => panic!(
                    "dualFilter and DualSim disagree for center {center}: {:?} vs {:?}",
                    a.map(|r| r.to_sorted_pairs()),
                    b.map(|r| r.to_sorted_pairs())
                ),
            }
        }
    }

    #[test]
    fn counts_removed_pairs() {
        let (pattern, data) = chain_data();
        let global = dual_simulation(&pattern, &data).unwrap();
        let center = NodeId(2);
        let ball = Ball::new(&data, center, 1);
        let view = ball.view(&data);
        let projected = global.project(ball.membership());
        let mut removed = 0usize;
        let _ = refine_projected(
            &pattern,
            &view,
            &ball.border_nodes(),
            projected,
            Some(&mut removed),
        );
        // At least one projected pair loses support inside the radius-1 ball.
        assert!(removed > 0);
    }

    #[test]
    fn ball_with_no_surviving_match_returns_none() {
        // Pattern A -> B; data node A with its B child outside the radius-0 ball.
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let data = Graph::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let global = dual_simulation(&pattern, &data).unwrap();
        let ball = Ball::new(&data, NodeId(0), 0);
        let view = ball.view(&data);
        let projected = global.project(ball.membership());
        assert!(refine_projected(&pattern, &view, &ball.border_nodes(), projected, None).is_none());
    }

    #[test]
    fn interior_pairs_keep_their_global_support() {
        // A ball large enough to contain the whole component: nothing should be removed.
        let (pattern, data) = chain_data();
        let global = dual_simulation(&pattern, &data).unwrap();
        let ball = Ball::new(&data, NodeId(2), 10);
        let view = ball.view(&data);
        let projected = global.project(ball.membership());
        let mut removed = 0usize;
        let refined = refine_projected(
            &pattern,
            &view,
            &ball.border_nodes(),
            projected.clone(),
            Some(&mut removed),
        )
        .unwrap();
        assert_eq!(removed, 0);
        assert_eq!(refined.to_sorted_pairs(), projected.to_sorted_pairs());
    }
}

//! Graph simulation `Q ≺ G` (Milner; Henzinger, Henzinger & Kopke).
//!
//! A graph `G` matches pattern `Q` via graph simulation when there is a relation
//! `S ⊆ Vq × V` such that
//!
//! 1. every `(u, v) ∈ S` relates identically labelled nodes, and
//! 2. every pattern node has a match, and for every pattern edge `(u, u')` and `(u, v) ∈ S`
//!    there is a data edge `(v, v')` with `(u', v') ∈ S`.
//!
//! Only the *child* relationship is preserved — the paper's Example 1 shows how this loses
//! topology. The maximum simulation relation is unique; [`graph_simulation`] computes it with
//! the classic candidate-refinement fixpoint, operating over a [`GraphView`] so the same code
//! serves whole graphs and balls.

use crate::relation::MatchRelation;
use ssim_graph::{Graph, GraphView, NodeId, Pattern};

/// Computes the maximum graph-simulation relation of `pattern` over `view`.
///
/// Returns `None` when `view` does not match the pattern (some pattern node ends up with an
/// empty candidate set); otherwise returns the unique maximum match relation.
pub fn graph_simulation_view(pattern: &Pattern, view: &GraphView<'_>) -> Option<MatchRelation> {
    let relation = refine(pattern, view, RefineMode::ChildrenOnly, initial_candidates(pattern, view));
    relation.filter(MatchRelation::is_total)
}

/// Computes the maximum graph-simulation relation of `pattern` over the whole `data` graph.
pub fn graph_simulation(pattern: &Pattern, data: &Graph) -> Option<MatchRelation> {
    graph_simulation_view(pattern, &GraphView::full(data))
}

/// Returns `true` when `Q ≺ G`, i.e. the data graph matches the pattern via graph simulation.
pub fn simulates(pattern: &Pattern, data: &Graph) -> bool {
    graph_simulation(pattern, data).is_some()
}

/// Which refinement conditions to enforce. Shared by plain and dual simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RefineMode {
    /// Enforce only the child (successor) condition — graph simulation.
    ChildrenOnly,
    /// Enforce both the child and the parent (predecessor) conditions — dual simulation.
    ChildrenAndParents,
}

/// Builds the initial candidate sets `sim(u) = {v ∈ view | l(v) = l(u)}`.
pub(crate) fn initial_candidates(pattern: &Pattern, view: &GraphView<'_>) -> MatchRelation {
    let mut relation =
        MatchRelation::empty(pattern.node_count(), view.graph().node_count());
    for u in pattern.nodes() {
        for v in view.nodes_with_label(pattern.label(u)) {
            relation.insert(u, v);
        }
    }
    relation
}

/// Iteratively removes candidates that violate the simulation conditions until a fixpoint is
/// reached. Returns the refined relation (which may have empty candidate sets).
///
/// This is the refinement loop of procedure `DualSim` in Fig. 3 of the paper, parameterised
/// by whether the parent condition is enforced.
pub(crate) fn refine(
    pattern: &Pattern,
    view: &GraphView<'_>,
    mode: RefineMode,
    mut relation: MatchRelation,
) -> Option<MatchRelation> {
    let q = pattern.graph();
    let mut changed = true;
    while changed {
        changed = false;
        for (u, u_child) in q.edges() {
            // Child condition: v ∈ sim(u) needs an out-neighbour in sim(u_child).
            let removals: Vec<NodeId> = relation
                .candidates(u)
                .iter()
                .map(NodeId::from_index)
                .filter(|&v| {
                    !view.out_neighbors(v).any(|w| relation.contains(u_child, w))
                })
                .collect();
            for v in removals {
                relation.remove(u, v);
                changed = true;
            }
            if relation.candidates(u).is_empty() {
                return Some(relation);
            }
            if mode == RefineMode::ChildrenAndParents {
                // Parent condition: v ∈ sim(u_child) needs an in-neighbour in sim(u).
                let removals: Vec<NodeId> = relation
                    .candidates(u_child)
                    .iter()
                    .map(NodeId::from_index)
                    .filter(|&v| !view.in_neighbors(v).any(|w| relation.contains(u, w)))
                    .collect();
                for v in removals {
                    relation.remove(u_child, v);
                    changed = true;
                }
                if relation.candidates(u_child).is_empty() {
                    return Some(relation);
                }
            }
        }
    }
    Some(relation)
}

/// Checks that `relation` is a valid (not necessarily maximum) graph-simulation witness:
/// labels match, every pattern node has a candidate, and the child condition holds for every
/// pair. Used by tests and by the topology report.
pub fn is_valid_simulation(
    pattern: &Pattern,
    data: &Graph,
    relation: &MatchRelation,
) -> bool {
    let view = GraphView::full(data);
    if !relation.is_total() || !relation.respects_labels(pattern, data) {
        return false;
    }
    for (u, u_child) in pattern.graph().edges() {
        for v in relation.candidates(u).iter().map(NodeId::from_index) {
            if !view.out_neighbors(v).any(|w| relation.contains(u_child, w)) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_graph::Label;

    /// Pattern: A -> B. Data: A -> B plus an extra A with no B child.
    #[test]
    fn simple_child_refinement() {
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let data = Graph::from_edges(
            vec![Label(0), Label(1), Label(0)],
            &[(0, 1)],
        )
        .unwrap();
        let relation = graph_simulation(&pattern, &data).unwrap();
        // Data node 2 (label A, no child) must be removed from sim(A).
        assert_eq!(relation.to_sorted_pairs(), vec![(0, 0), (1, 1)]);
        assert!(simulates(&pattern, &data));
        assert!(is_valid_simulation(&pattern, &data, &relation));
    }

    #[test]
    fn no_match_when_label_is_missing() {
        let pattern = Pattern::from_edges(vec![Label(0), Label(9)], &[(0, 1)]).unwrap();
        let data = Graph::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        assert!(graph_simulation(&pattern, &data).is_none());
        assert!(!simulates(&pattern, &data));
    }

    #[test]
    fn no_match_when_edge_cannot_be_simulated() {
        // Pattern: A -> A (needs an A with an A child). Data: single A, no edges.
        let pattern = Pattern::from_edges(vec![Label(0), Label(0)], &[(0, 1)]).unwrap();
        let data = Graph::from_edges(vec![Label(0)], &[]).unwrap();
        assert!(!simulates(&pattern, &data));
    }

    #[test]
    fn directed_cycle_matches_longer_cycle() {
        // Pattern: 2-cycle A <-> B. Data: 4-cycle A -> B -> A -> B -> (first A).
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1), (1, 0)]).unwrap();
        let data = Graph::from_edges(
            vec![Label(0), Label(1), Label(0), Label(1)],
            &[(0, 1), (1, 2), (2, 3), (3, 0)],
        )
        .unwrap();
        let relation = graph_simulation(&pattern, &data).unwrap();
        // Every data node participates: simulation cannot tell the 2-cycle from the 4-cycle.
        assert_eq!(relation.pair_count(), 4);
    }

    #[test]
    fn simulation_ignores_parents_example1_style() {
        // Pattern: HR -> Bio and SE -> Bio (Bio needs two parents).
        // Data: HR -> Bio1, SE -> Bio2 — no Bio has both parents, yet simulation matches.
        let pattern =
            Pattern::from_edges(vec![Label(0), Label(1), Label(2)], &[(0, 2), (1, 2)]).unwrap();
        let data = Graph::from_edges(
            vec![Label(0), Label(1), Label(2), Label(2)],
            &[(0, 2), (1, 3)],
        )
        .unwrap();
        let relation = graph_simulation(&pattern, &data).unwrap();
        // Both Bio1 and Bio2 stay in sim(Bio): the parent condition is not enforced.
        assert_eq!(relation.candidates(NodeId(2)).len(), 2);
    }

    #[test]
    fn maximum_relation_contains_any_valid_witness() {
        // The maximum relation must be a superset of a hand-constructed witness.
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let data = Graph::from_edges(
            vec![Label(0), Label(1), Label(0), Label(1)],
            &[(0, 1), (2, 3)],
        )
        .unwrap();
        let maximum = graph_simulation(&pattern, &data).unwrap();
        let mut witness = MatchRelation::empty(2, 4);
        witness.insert(NodeId(0), NodeId(0));
        witness.insert(NodeId(1), NodeId(1));
        assert!(is_valid_simulation(&pattern, &data, &witness));
        assert!(witness.is_subrelation_of(&maximum));
        assert_eq!(maximum.pair_count(), 4);
    }

    #[test]
    fn single_node_pattern_matches_every_labelled_node() {
        let pattern = Pattern::from_edges(vec![Label(5)], &[]).unwrap();
        let data = Graph::from_edges(vec![Label(5), Label(5), Label(1)], &[(0, 1)]).unwrap();
        let relation = graph_simulation(&pattern, &data).unwrap();
        assert_eq!(relation.to_sorted_pairs(), vec![(0, 0), (0, 1)]);
    }

    #[test]
    fn self_loop_pattern_requires_cycle() {
        // Pattern: A with a self-loop. A chain of A's has no directed cycle, so no match.
        let pattern = Pattern::from_edges(vec![Label(0)], &[(0, 0)]).unwrap();
        let chain = Graph::from_edges(vec![Label(0); 3], &[(0, 1), (1, 2)]).unwrap();
        assert!(!simulates(&pattern, &chain));
        let cycle = Graph::from_edges(vec![Label(0); 3], &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!(simulates(&pattern, &cycle));
    }

    #[test]
    fn is_valid_simulation_rejects_bad_witnesses() {
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let data = Graph::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        // Empty relation: not total.
        let empty = MatchRelation::empty(2, 2);
        assert!(!is_valid_simulation(&pattern, &data, &empty));
        // Label-violating relation.
        let mut bad = MatchRelation::empty(2, 2);
        bad.insert(NodeId(0), NodeId(1));
        bad.insert(NodeId(1), NodeId(0));
        assert!(!is_valid_simulation(&pattern, &data, &bad));
    }
}

//! Graph simulation `Q ≺ G` (Milner; Henzinger, Henzinger & Kopke).
//!
//! A graph `G` matches pattern `Q` via graph simulation when there is a relation
//! `S ⊆ Vq × V` such that
//!
//! 1. every `(u, v) ∈ S` relates identically labelled nodes, and
//! 2. every pattern node has a match, and for every pattern edge `(u, u')` and `(u, v) ∈ S`
//!    there is a data edge `(v, v')` with `(u', v') ∈ S`.
//!
//! Only the *child* relationship is preserved — the paper's Example 1 shows how this loses
//! topology. The maximum simulation relation is unique; [`graph_simulation`] computes it with
//! the classic candidate-refinement fixpoint, operating over a [`GraphView`] so the same code
//! serves whole graphs and balls.

use crate::relation::MatchRelation;
use ssim_graph::{AdjView, Graph, GraphView, NodeId, Pattern};
use std::collections::VecDeque;

/// Computes the maximum graph-simulation relation of `pattern` over `view`.
///
/// Returns `None` when `view` does not match the pattern (some pattern node ends up with an
/// empty candidate set); otherwise returns the unique maximum match relation.
pub fn graph_simulation_view<V: AdjView>(pattern: &Pattern, view: &V) -> Option<MatchRelation> {
    let relation = refine(
        pattern,
        view,
        RefineMode::ChildrenOnly,
        initial_candidates(pattern, view),
    );
    relation.filter(MatchRelation::is_total)
}

/// Computes the maximum graph-simulation relation of `pattern` over the whole `data` graph.
pub fn graph_simulation(pattern: &Pattern, data: &Graph) -> Option<MatchRelation> {
    graph_simulation_view(pattern, &GraphView::full(data))
}

/// [`graph_simulation`] with an explicit [`RefineStrategy`] — `NaiveFixpoint` is the seed's
/// re-scan loop, kept as the equivalence oracle for tests and ablation benches.
pub fn graph_simulation_with(
    pattern: &Pattern,
    data: &Graph,
    strategy: RefineStrategy,
) -> Option<MatchRelation> {
    let view = GraphView::full(data);
    let relation = refine_with(
        pattern,
        &view,
        RefineMode::ChildrenOnly,
        initial_candidates(pattern, &view),
        strategy,
    );
    relation.filter(MatchRelation::is_total)
}

/// Returns `true` when `Q ≺ G`, i.e. the data graph matches the pattern via graph simulation.
pub fn simulates(pattern: &Pattern, data: &Graph) -> bool {
    graph_simulation(pattern, data).is_some()
}

/// Which refinement conditions to enforce. Shared by plain and dual simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RefineMode {
    /// Enforce only the child (successor) condition — graph simulation.
    ChildrenOnly,
    /// Enforce both the child and the parent (predecessor) conditions — dual simulation.
    ChildrenAndParents,
}

/// Builds the initial candidate sets `sim(u) = {v ∈ view | l(v) = l(u)}`.
pub fn initial_candidates<V: AdjView>(pattern: &Pattern, view: &V) -> MatchRelation {
    let mut relation = MatchRelation::empty(pattern.node_count(), view.id_space());
    for u in pattern.nodes() {
        for v in view.nodes_with_label(pattern.label(u)) {
            relation.insert(u, v);
        }
    }
    relation
}

/// Which refinement algorithm to run. The worklist engine is the default everywhere; the
/// naive fixpoint is retained as the equivalence oracle for tests and ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefineStrategy {
    /// Counter-based worklist refinement (HHK-style): each removal is propagated
    /// incrementally through per-`(pattern edge, data node)` support counters.
    #[default]
    Worklist,
    /// The seed's `while changed` re-scan of every candidate of every pattern edge.
    NaiveFixpoint,
}

/// How the per-ball refinement of the sliding-ball engine is *seeded* — the third oracle
/// axis next to [`RefineStrategy`] (which fixpoint algorithm) and
/// [`crate::ball::BallStrategy`] (how ball membership is produced).
///
/// The maximum dual-simulation relation inside a ball is unique, so both variants converge
/// to bit-identical per-node candidate sets; the differential suite in
/// `tests/refine_warm_equivalence.rs` pins them against each other. The axis only takes
/// effect on the compact sliding-ball path (`compact_balls` with
/// [`crate::ball::BallStrategy::Incremental`]) — every other engine shape refines from
/// scratch by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefineSeed {
    /// Carry the previous ball's converged relation across the slide, translate it
    /// through the compact-index remap, re-open candidates only where the membership
    /// delta can have created support, and re-verify only the delta-seeded pairs
    /// ([`crate::warm`]).
    #[default]
    WarmStart,
    /// Refine every ball from its full label-based (or dual-filter-projected) candidate
    /// sets, ignoring the previous ball. Kept as the equivalence oracle and as the
    /// baseline the `refine_warm` bench ratios are measured against.
    FromScratch,
}

/// Iteratively removes candidates that violate the simulation conditions until a fixpoint is
/// reached. Returns the refined relation (which may have empty candidate sets).
///
/// This is the refinement loop of procedure `DualSim` in Fig. 3 of the paper, parameterised
/// by whether the parent condition is enforced. Dispatches to the worklist engine.
pub(crate) fn refine<V: AdjView>(
    pattern: &Pattern,
    view: &V,
    mode: RefineMode,
    relation: MatchRelation,
) -> Option<MatchRelation> {
    refine_with(pattern, view, mode, relation, RefineStrategy::Worklist)
}

/// [`refine`] with an explicit [`RefineStrategy`].
pub(crate) fn refine_with<V: AdjView>(
    pattern: &Pattern,
    view: &V,
    mode: RefineMode,
    relation: MatchRelation,
    strategy: RefineStrategy,
) -> Option<MatchRelation> {
    match strategy {
        RefineStrategy::Worklist => refine_worklist(pattern, view, mode, relation),
        RefineStrategy::NaiveFixpoint => refine_naive(pattern, view, mode, relation),
    }
}

/// Counter-based worklist refinement.
///
/// For every pattern edge `e = (u, u')` two families of support counters are kept:
///
/// * `child[e][v]` — for `v ∈ sim(u)`, the number of out-neighbours of `v` in `sim(u')`
///   (the child condition's witnesses), and
/// * `parent[e][v']` — for `v' ∈ sim(u')`, the number of in-neighbours of `v'` in `sim(u)`
///   (the parent condition's witnesses, dual mode only).
///
/// A pair whose counter reaches zero is removed and pushed on a queue; processing a removed
/// pair `(u, v)` decrements exactly the counters whose witness set contained `v`, so
/// removals propagate incrementally instead of via the naive loop's quadratic re-scans.
/// Counters are capped at [`COUNT_CAP`] with an exact recount on suspected zeros, which
/// keeps every neighbourhood scan as short as the naive pass's early-exit `any` while
/// preserving the worklist's incremental propagation on long removal cascades.
fn refine_worklist<V: AdjView>(
    pattern: &Pattern,
    view: &V,
    mode: RefineMode,
    relation: MatchRelation,
) -> Option<MatchRelation> {
    REFINE_SCRATCH
        .with_borrow_mut(|scratch| refine_worklist_with(pattern, view, mode, relation, scratch))
}

/// Witness counters are *capped* at this value: a counter never stores more than
/// `COUNT_CAP`, so both the initial count and every recount stop scanning a neighbourhood
/// after two witnesses (the same early-exit the naive pass enjoys via `any`). A decrement
/// that reaches zero therefore only *suspects* a lost pair and triggers an exact (still
/// capped) recount before removal — removals stay exact, scans stay short.
pub(crate) const COUNT_CAP: u32 = 2;

/// Counts elements of `iter` satisfying `pred`, stopping at [`COUNT_CAP`].
#[inline]
pub(crate) fn count_capped<I: Iterator<Item = NodeId>>(
    iter: I,
    mut pred: impl FnMut(NodeId) -> bool,
) -> u32 {
    let mut c = 0u32;
    for w in iter {
        if pred(w) {
            c += 1;
            if c >= COUNT_CAP {
                break;
            }
        }
    }
    c
}

/// Reusable buffers for [`refine_worklist_with`], held in a thread-local so the per-ball
/// refinement calls of the matching engine do not allocate.
///
/// The counter arrays are grown but **never zeroed**: phase 1 writes the counter of every
/// `(edge, candidate)` pair before phase 2 reads it, and only candidate entries are ever
/// read, so stale values from previous calls are unreachable.
#[derive(Default)]
struct RefineScratch {
    /// Flat child-support counters, indexed `edge * n + node`.
    child: Vec<u32>,
    /// Flat parent-support counters (dual mode), indexed `edge * n + node`.
    parent: Vec<u32>,
    /// Work queue of removed pairs awaiting propagation.
    queue: VecDeque<(NodeId, NodeId)>,
    /// Pairs found unsupported during counter initialisation.
    dead: Vec<(NodeId, NodeId)>,
    /// The pattern's edge list.
    edges: Vec<(NodeId, NodeId)>,
    /// Edge ids grouped by child endpoint (CSR offsets + ids).
    ein_off: Vec<u32>,
    ein: Vec<u32>,
    /// Edge ids grouped by parent endpoint (CSR offsets + ids).
    eout_off: Vec<u32>,
    eout: Vec<u32>,
}

thread_local! {
    static REFINE_SCRATCH: std::cell::RefCell<RefineScratch> =
        std::cell::RefCell::new(RefineScratch::default());
}

fn refine_worklist_with<V: AdjView>(
    pattern: &Pattern,
    view: &V,
    mode: RefineMode,
    mut relation: MatchRelation,
    scratch: &mut RefineScratch,
) -> Option<MatchRelation> {
    let q = pattern.graph();
    scratch.edges.clear();
    scratch.edges.extend(q.edges());
    let edges = std::mem::take(&mut scratch.edges);
    if edges.is_empty() {
        scratch.edges = edges;
        return Some(relation);
    }
    let n = relation.data_node_capacity();
    let dual = mode == RefineMode::ChildrenAndParents;

    // Phase 1: compute every counter against the *full* starting relation, collecting the
    // initially unsupported pairs. Counters must all see the same relation snapshot —
    // removing eagerly here would make later decrements double-count.
    if scratch.child.len() < edges.len() * n {
        scratch.child.resize(edges.len() * n, 0);
    }
    if dual && scratch.parent.len() < edges.len() * n {
        scratch.parent.resize(edges.len() * n, 0);
    }
    let child = &mut scratch.child;
    let parent = &mut scratch.parent;
    scratch.queue.clear();
    scratch.dead.clear();
    for (e, &(u, u_child)) in edges.iter().enumerate() {
        let base = e * n;
        for v in relation.candidates(u).iter().map(NodeId::from_index) {
            let c = count_capped(view.out_neighbors(v), |w| relation.contains(u_child, w));
            child[base + v.index()] = c;
            if c == 0 {
                scratch.dead.push((u, v));
            }
        }
        if dual {
            for v in relation.candidates(u_child).iter().map(NodeId::from_index) {
                let c = count_capped(view.in_neighbors(v), |w| relation.contains(u, w));
                parent[base + v.index()] = c;
                if c == 0 {
                    scratch.dead.push((u_child, v));
                }
            }
        }
    }
    for &(u, v) in &scratch.dead {
        // A pair may be unsupported w.r.t. several edges; remove (and queue) it once.
        if relation.remove(u, v) {
            if relation.candidates(u).is_empty() {
                scratch.edges = edges;
                return Some(relation);
            }
            scratch.queue.push_back((u, v));
        }
    }

    // Pattern adjacency by edge id (counting-sort CSR), so propagation can find the edges
    // touching a node without nested vectors.
    let nq = q.node_count();
    scratch.ein_off.clear();
    scratch.ein_off.resize(nq + 1, 0);
    scratch.eout_off.clear();
    scratch.eout_off.resize(nq + 1, 0);
    for &(u, u_child) in &edges {
        scratch.eout_off[u.index() + 1] += 1;
        scratch.ein_off[u_child.index() + 1] += 1;
    }
    for i in 0..nq {
        scratch.ein_off[i + 1] += scratch.ein_off[i];
        scratch.eout_off[i + 1] += scratch.eout_off[i];
    }
    scratch.ein.clear();
    scratch.ein.resize(edges.len(), 0);
    scratch.eout.clear();
    scratch.eout.resize(edges.len(), 0);
    {
        let mut ein_cursor: Vec<u32> = scratch.ein_off[..nq].to_vec();
        let mut eout_cursor: Vec<u32> = scratch.eout_off[..nq].to_vec();
        for (e, &(u, u_child)) in edges.iter().enumerate() {
            scratch.eout[eout_cursor[u.index()] as usize] = e as u32;
            eout_cursor[u.index()] += 1;
            scratch.ein[ein_cursor[u_child.index()] as usize] = e as u32;
            ein_cursor[u_child.index()] += 1;
        }
    }

    // Phase 2: drain the queue, propagating each removal to the counters it supported.
    while let Some((u, v)) = scratch.queue.pop_front() {
        // v left sim(u): for every pattern edge (u2, u), data parents w of v lose one child
        // witness for that edge.
        let ui = u.index();
        for &e in &scratch.ein[scratch.ein_off[ui] as usize..scratch.ein_off[ui + 1] as usize] {
            let e = e as usize;
            let u2 = edges[e].0;
            let base = e * n;
            for w in view.in_neighbors(v) {
                if relation.contains(u2, w) {
                    child[base + w.index()] -= 1;
                    if child[base + w.index()] == 0 {
                        // The cap means a zero is only a *suspicion*: recount exactly
                        // (capped again) before concluding the pair lost all support.
                        let c = count_capped(view.out_neighbors(w), |x| relation.contains(u, x));
                        child[base + w.index()] = c;
                        if c == 0 && relation.remove(u2, w) {
                            if relation.candidates(u2).is_empty() {
                                scratch.edges = edges;
                                return Some(relation);
                            }
                            scratch.queue.push_back((u2, w));
                        }
                    }
                }
            }
        }
        if dual {
            // v left sim(u): for every pattern edge (u, u3), data children w of v lose one
            // parent witness for that edge.
            for &e in
                &scratch.eout[scratch.eout_off[ui] as usize..scratch.eout_off[ui + 1] as usize]
            {
                let e = e as usize;
                let u3 = edges[e].1;
                let base = e * n;
                for w in view.out_neighbors(v) {
                    if relation.contains(u3, w) {
                        parent[base + w.index()] -= 1;
                        if parent[base + w.index()] == 0 {
                            let c = count_capped(view.in_neighbors(w), |x| relation.contains(u, x));
                            parent[base + w.index()] = c;
                            if c == 0 && relation.remove(u3, w) {
                                if relation.candidates(u3).is_empty() {
                                    scratch.edges = edges;
                                    return Some(relation);
                                }
                                scratch.queue.push_back((u3, w));
                            }
                        }
                    }
                }
            }
        }
    }
    scratch.edges = edges;
    Some(relation)
}

/// The seed's naive re-scan fixpoint, kept verbatim as the equivalence oracle: the proptest
/// suite asserts it agrees with [`RefineStrategy::Worklist`] on random inputs, and the
/// ablation benches measure the gap.
fn refine_naive<V: AdjView>(
    pattern: &Pattern,
    view: &V,
    mode: RefineMode,
    mut relation: MatchRelation,
) -> Option<MatchRelation> {
    let q = pattern.graph();
    let mut changed = true;
    while changed {
        changed = false;
        for (u, u_child) in q.edges() {
            // Child condition: v ∈ sim(u) needs an out-neighbour in sim(u_child).
            let removals: Vec<NodeId> = relation
                .candidates(u)
                .iter()
                .map(NodeId::from_index)
                .filter(|&v| !view.out_neighbors(v).any(|w| relation.contains(u_child, w)))
                .collect();
            for v in removals {
                relation.remove(u, v);
                changed = true;
            }
            if relation.candidates(u).is_empty() {
                return Some(relation);
            }
            if mode == RefineMode::ChildrenAndParents {
                // Parent condition: v ∈ sim(u_child) needs an in-neighbour in sim(u).
                let removals: Vec<NodeId> = relation
                    .candidates(u_child)
                    .iter()
                    .map(NodeId::from_index)
                    .filter(|&v| !view.in_neighbors(v).any(|w| relation.contains(u, w)))
                    .collect();
                for v in removals {
                    relation.remove(u_child, v);
                    changed = true;
                }
                if relation.candidates(u_child).is_empty() {
                    return Some(relation);
                }
            }
        }
    }
    Some(relation)
}

/// Checks that `relation` is a valid (not necessarily maximum) graph-simulation witness:
/// labels match, every pattern node has a candidate, and the child condition holds for every
/// pair. Used by tests and by the topology report.
pub fn is_valid_simulation(pattern: &Pattern, data: &Graph, relation: &MatchRelation) -> bool {
    let view = GraphView::full(data);
    if !relation.is_total() || !relation.respects_labels(pattern, data) {
        return false;
    }
    for (u, u_child) in pattern.graph().edges() {
        for v in relation.candidates(u).iter().map(NodeId::from_index) {
            if !view.out_neighbors(v).any(|w| relation.contains(u_child, w)) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_graph::Label;

    /// Pattern: A -> B. Data: A -> B plus an extra A with no B child.
    #[test]
    fn simple_child_refinement() {
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let data = Graph::from_edges(vec![Label(0), Label(1), Label(0)], &[(0, 1)]).unwrap();
        let relation = graph_simulation(&pattern, &data).unwrap();
        // Data node 2 (label A, no child) must be removed from sim(A).
        assert_eq!(relation.to_sorted_pairs(), vec![(0, 0), (1, 1)]);
        assert!(simulates(&pattern, &data));
        assert!(is_valid_simulation(&pattern, &data, &relation));
    }

    #[test]
    fn no_match_when_label_is_missing() {
        let pattern = Pattern::from_edges(vec![Label(0), Label(9)], &[(0, 1)]).unwrap();
        let data = Graph::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        assert!(graph_simulation(&pattern, &data).is_none());
        assert!(!simulates(&pattern, &data));
    }

    #[test]
    fn no_match_when_edge_cannot_be_simulated() {
        // Pattern: A -> A (needs an A with an A child). Data: single A, no edges.
        let pattern = Pattern::from_edges(vec![Label(0), Label(0)], &[(0, 1)]).unwrap();
        let data = Graph::from_edges(vec![Label(0)], &[]).unwrap();
        assert!(!simulates(&pattern, &data));
    }

    #[test]
    fn directed_cycle_matches_longer_cycle() {
        // Pattern: 2-cycle A <-> B. Data: 4-cycle A -> B -> A -> B -> (first A).
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1), (1, 0)]).unwrap();
        let data = Graph::from_edges(
            vec![Label(0), Label(1), Label(0), Label(1)],
            &[(0, 1), (1, 2), (2, 3), (3, 0)],
        )
        .unwrap();
        let relation = graph_simulation(&pattern, &data).unwrap();
        // Every data node participates: simulation cannot tell the 2-cycle from the 4-cycle.
        assert_eq!(relation.pair_count(), 4);
    }

    #[test]
    fn simulation_ignores_parents_example1_style() {
        // Pattern: HR -> Bio and SE -> Bio (Bio needs two parents).
        // Data: HR -> Bio1, SE -> Bio2 — no Bio has both parents, yet simulation matches.
        let pattern =
            Pattern::from_edges(vec![Label(0), Label(1), Label(2)], &[(0, 2), (1, 2)]).unwrap();
        let data = Graph::from_edges(
            vec![Label(0), Label(1), Label(2), Label(2)],
            &[(0, 2), (1, 3)],
        )
        .unwrap();
        let relation = graph_simulation(&pattern, &data).unwrap();
        // Both Bio1 and Bio2 stay in sim(Bio): the parent condition is not enforced.
        assert_eq!(relation.candidates(NodeId(2)).len(), 2);
    }

    #[test]
    fn maximum_relation_contains_any_valid_witness() {
        // The maximum relation must be a superset of a hand-constructed witness.
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let data = Graph::from_edges(
            vec![Label(0), Label(1), Label(0), Label(1)],
            &[(0, 1), (2, 3)],
        )
        .unwrap();
        let maximum = graph_simulation(&pattern, &data).unwrap();
        let mut witness = MatchRelation::empty(2, 4);
        witness.insert(NodeId(0), NodeId(0));
        witness.insert(NodeId(1), NodeId(1));
        assert!(is_valid_simulation(&pattern, &data, &witness));
        assert!(witness.is_subrelation_of(&maximum));
        assert_eq!(maximum.pair_count(), 4);
    }

    #[test]
    fn single_node_pattern_matches_every_labelled_node() {
        let pattern = Pattern::from_edges(vec![Label(5)], &[]).unwrap();
        let data = Graph::from_edges(vec![Label(5), Label(5), Label(1)], &[(0, 1)]).unwrap();
        let relation = graph_simulation(&pattern, &data).unwrap();
        assert_eq!(relation.to_sorted_pairs(), vec![(0, 0), (0, 1)]);
    }

    #[test]
    fn self_loop_pattern_requires_cycle() {
        // Pattern: A with a self-loop. A chain of A's has no directed cycle, so no match.
        let pattern = Pattern::from_edges(vec![Label(0)], &[(0, 0)]).unwrap();
        let chain = Graph::from_edges(vec![Label(0); 3], &[(0, 1), (1, 2)]).unwrap();
        assert!(!simulates(&pattern, &chain));
        let cycle = Graph::from_edges(vec![Label(0); 3], &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!(simulates(&pattern, &cycle));
    }

    #[test]
    fn is_valid_simulation_rejects_bad_witnesses() {
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let data = Graph::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        // Empty relation: not total.
        let empty = MatchRelation::empty(2, 2);
        assert!(!is_valid_simulation(&pattern, &data, &empty));
        // Label-violating relation.
        let mut bad = MatchRelation::empty(2, 2);
        bad.insert(NodeId(0), NodeId(1));
        bad.insert(NodeId(1), NodeId(0));
        assert!(!is_valid_simulation(&pattern, &data, &bad));
    }
}

//! The binary match relation `S ⊆ Vq × V`.
//!
//! Every simulation variant in the paper manipulates a relation between pattern nodes and
//! data nodes. [`MatchRelation`] stores it as one dense bitset of candidate data nodes per
//! pattern node, which makes the refinement loops of (dual) simulation cheap: membership is
//! a bit test and removal is a bit clear.

use ssim_graph::{BitSet, CompactBall, ExtractedSubgraph, NodeId, Pattern};

/// A binary relation between the nodes of a pattern and the nodes of a data graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchRelation {
    /// `sim[u]` = set of data-node indices currently matching pattern node `u`.
    sim: Vec<BitSet>,
    /// Node capacity of the data graph (all bitsets share it).
    data_nodes: usize,
}

impl MatchRelation {
    /// Creates an empty relation for a pattern with `pattern_nodes` nodes over a data graph
    /// with `data_nodes` nodes.
    pub fn empty(pattern_nodes: usize, data_nodes: usize) -> Self {
        MatchRelation {
            sim: vec![BitSet::new(data_nodes); pattern_nodes],
            data_nodes,
        }
    }

    /// Number of pattern nodes covered by the relation.
    #[inline]
    pub fn pattern_node_count(&self) -> usize {
        self.sim.len()
    }

    /// Empties the relation and re-sizes its data side to `data_nodes`, reusing the
    /// bitset storage — the allocation-free equivalent of `MatchRelation::empty` for
    /// per-ball relations recycled across a sliding-ball run.
    pub fn reset(&mut self, data_nodes: usize) {
        for set in &mut self.sim {
            set.reset(data_nodes);
        }
        self.data_nodes = data_nodes;
    }

    /// Node capacity of the data graph side.
    #[inline]
    pub fn data_node_capacity(&self) -> usize {
        self.data_nodes
    }

    /// The candidate set `sim(u)` of pattern node `u`.
    #[inline]
    pub fn candidates(&self, u: NodeId) -> &BitSet {
        &self.sim[u.index()]
    }

    /// Mutable access to `sim(u)`.
    #[inline]
    pub fn candidates_mut(&mut self, u: NodeId) -> &mut BitSet {
        &mut self.sim[u.index()]
    }

    /// Returns `true` when `(u, v)` is in the relation.
    #[inline]
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        self.sim[u.index()].contains(v.index())
    }

    /// Inserts `(u, v)`; returns `true` when newly added.
    #[inline]
    pub fn insert(&mut self, u: NodeId, v: NodeId) -> bool {
        self.sim[u.index()].insert(v.index())
    }

    /// Removes `(u, v)`; returns `true` when it was present.
    #[inline]
    pub fn remove(&mut self, u: NodeId, v: NodeId) -> bool {
        self.sim[u.index()].remove(v.index())
    }

    /// Returns `true` when every pattern node has at least one candidate — the condition for
    /// the relation to witness a match (condition (2)(a) of graph simulation).
    pub fn is_total(&self) -> bool {
        self.sim.iter().all(|s| !s.is_empty())
    }

    /// Returns `true` when no pair is present at all.
    pub fn is_empty(&self) -> bool {
        self.sim.iter().all(BitSet::is_empty)
    }

    /// Total number of `(u, v)` pairs.
    pub fn pair_count(&self) -> usize {
        self.sim.iter().map(BitSet::len).sum()
    }

    /// Iterates over all pairs `(pattern node, data node)` in ascending order.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.sim.iter().enumerate().flat_map(|(u, set)| {
            set.iter()
                .map(move |v| (NodeId::from_index(u), NodeId::from_index(v)))
        })
    }

    /// The set of data nodes that appear in the relation (the node set `Vs` of the match
    /// graph).
    pub fn matched_data_nodes(&self) -> BitSet {
        let mut out = BitSet::new(self.data_nodes);
        self.matched_data_nodes_into(&mut out);
        out
    }

    /// [`MatchRelation::matched_data_nodes`] into a caller-owned bitset, resetting it to
    /// this relation's data capacity first — the allocation-free variant for drivers that
    /// keep one matched-set buffer per run and consult it more than once.
    pub fn matched_data_nodes_into(&self, out: &mut BitSet) {
        out.reset(self.data_nodes);
        for set in &self.sim {
            out.union_with(set);
        }
    }

    /// Renumbers the relation's data side through an [`ExtractedSubgraph`]: every data
    /// node becomes its inner id, and the result's capacity is the subgraph's node count.
    ///
    /// This is the one-time id-space hand-over of the match-graph ball substrate: the
    /// global dual-simulation relation (outer ids) becomes the projection base for balls
    /// built inside the extraction. Pairs on non-member data nodes are dropped — when the
    /// extraction covers [`MatchRelation::matched_data_nodes`], nothing is.
    pub fn renumber_through(&self, sub: &ExtractedSubgraph) -> MatchRelation {
        let mut out = MatchRelation::empty(self.sim.len(), sub.node_count());
        for (u, set) in self.sim.iter().enumerate() {
            let u = NodeId::from_index(u);
            for outer in set.iter() {
                if let Some(inner) = sub.inner_of(NodeId::from_index(outer)) {
                    out.insert(u, inner);
                }
            }
        }
        out
    }

    /// Pattern nodes whose candidate set contains `v`.
    pub fn pattern_nodes_matching(&self, v: NodeId) -> Vec<NodeId> {
        self.sim
            .iter()
            .enumerate()
            .filter(|(_, set)| set.contains(v.index()))
            .map(|(u, _)| NodeId::from_index(u))
            .collect()
    }

    /// Restricts the relation to data nodes inside `members` (used to project a global
    /// dual-simulation relation onto a ball). Returns the projected relation.
    pub fn project(&self, members: &BitSet) -> MatchRelation {
        let mut out = self.clone();
        for set in &mut out.sim {
            set.intersect_with(members);
        }
        out
    }

    /// Projects the relation onto a compact ball, translating the data side into the ball's
    /// **local** id space: the result has `ball.node_count()` capacity, so per-ball
    /// refinement operates on ball-sized bitsets instead of `|V|`-sized ones.
    ///
    /// Iterates the relation's pairs (not the ball members), so the cost is
    /// `O(pair_count)` — after global dual simulation the surviving candidate sets are
    /// typically far smaller than the ball.
    pub fn project_compact(&self, ball: &CompactBall) -> MatchRelation {
        let mut out = MatchRelation::empty(self.sim.len(), ball.node_count());
        for (u, set) in self.sim.iter().enumerate() {
            let u = NodeId::from_index(u);
            for global in set.iter() {
                if let Some(local) = ball.local_of(NodeId::from_index(global)) {
                    out.insert(u, local);
                }
            }
        }
        out
    }

    /// Extracts the induced subgraph of `data` on this relation's matched nodes and
    /// renumbers the relation into it — the match-graph substrate hand-over shared by
    /// the centralized driver and the distributed coordinator. `matched_buf` is the
    /// caller's reusable matched-set buffer ([`MatchRelation::matched_data_nodes_into`]).
    pub fn extract_matched_subgraph(
        &self,
        data: &ssim_graph::Graph,
        matched_buf: &mut BitSet,
    ) -> (ExtractedSubgraph, MatchRelation) {
        self.matched_data_nodes_into(matched_buf);
        let sub = ExtractedSubgraph::induced(data, matched_buf);
        let inner = self.renumber_through(&sub);
        (sub, inner)
    }

    /// Returns `true` when `self` is pair-wise contained in `other`.
    pub fn is_subrelation_of(&self, other: &MatchRelation) -> bool {
        self.sim.len() == other.sim.len()
            && self
                .sim
                .iter()
                .zip(&other.sim)
                .all(|(a, b)| a.is_subset_of(b))
    }

    /// Sorted list of pairs as raw indices, convenient for equality assertions in tests.
    pub fn to_sorted_pairs(&self) -> Vec<(u32, u32)> {
        self.pairs().map(|(u, v)| (u.0, v.0)).collect()
    }

    /// Checks the label condition (condition (1) of all simulation variants): every pair
    /// relates nodes with identical labels.
    pub fn respects_labels(&self, pattern: &Pattern, data: &ssim_graph::Graph) -> bool {
        self.pairs().all(|(u, v)| pattern.label(u) == data.label(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_graph::{Graph, Label};

    fn relation_3x4() -> MatchRelation {
        let mut r = MatchRelation::empty(3, 4);
        r.insert(NodeId(0), NodeId(1));
        r.insert(NodeId(0), NodeId(2));
        r.insert(NodeId(1), NodeId(3));
        r
    }

    #[test]
    fn insert_contains_remove() {
        let mut r = relation_3x4();
        assert!(r.contains(NodeId(0), NodeId(1)));
        assert!(!r.contains(NodeId(2), NodeId(0)));
        assert_eq!(r.pair_count(), 3);
        assert!(r.remove(NodeId(0), NodeId(1)));
        assert!(!r.remove(NodeId(0), NodeId(1)));
        assert_eq!(r.pair_count(), 2);
    }

    #[test]
    fn totality_and_emptiness() {
        let mut r = relation_3x4();
        assert!(!r.is_total()); // pattern node 2 has no candidate
        assert!(!r.is_empty());
        r.insert(NodeId(2), NodeId(0));
        assert!(r.is_total());
        let empty = MatchRelation::empty(2, 2);
        assert!(empty.is_empty());
        assert!(!empty.is_total());
    }

    #[test]
    fn pairs_and_matched_nodes() {
        let r = relation_3x4();
        assert_eq!(r.to_sorted_pairs(), vec![(0, 1), (0, 2), (1, 3)]);
        assert_eq!(r.matched_data_nodes().to_vec(), vec![1, 2, 3]);
        assert_eq!(r.pattern_nodes_matching(NodeId(2)), vec![NodeId(0)]);
        assert_eq!(r.pattern_nodes_matching(NodeId(0)), Vec::<NodeId>::new());
    }

    #[test]
    fn projection_restricts_candidates() {
        let r = relation_3x4();
        let mut members = BitSet::new(4);
        members.insert(1);
        members.insert(3);
        let p = r.project(&members);
        assert_eq!(p.to_sorted_pairs(), vec![(0, 1), (1, 3)]);
        assert!(p.is_subrelation_of(&r));
        assert!(!r.is_subrelation_of(&p));
    }

    #[test]
    fn label_condition() {
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let data =
            Graph::from_edges(vec![Label(0), Label(1), Label(1)], &[(0, 1), (0, 2)]).unwrap();
        let mut r = MatchRelation::empty(2, 3);
        r.insert(NodeId(0), NodeId(0));
        r.insert(NodeId(1), NodeId(2));
        assert!(r.respects_labels(&pattern, &data));
        r.insert(NodeId(1), NodeId(0)); // label mismatch: pattern L1 vs data L0
        assert!(!r.respects_labels(&pattern, &data));
    }

    #[test]
    fn candidates_accessors() {
        let mut r = relation_3x4();
        assert_eq!(r.candidates(NodeId(0)).len(), 2);
        r.candidates_mut(NodeId(0)).clear();
        assert!(r.candidates(NodeId(0)).is_empty());
        assert_eq!(r.pattern_node_count(), 3);
        assert_eq!(r.data_node_capacity(), 4);
    }
}

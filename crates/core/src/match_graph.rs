//! Match graphs and perfect subgraphs.
//!
//! Given a relation `S ⊆ Vq × V`, the *match graph* w.r.t. `S` (Section 2.2) is the subgraph
//! `G[Vs, Es]` of the data graph where `Vs` is the set of data nodes appearing in `S` and
//! `(v, v') ∈ Es` iff some pattern edge `(u, u')` has `(u, v) ∈ S` and `(u', v') ∈ S`.
//!
//! A *perfect subgraph* is the connected component of a ball's match graph that contains the
//! ball center (procedure `ExtractMaxPG` of Fig. 3); strong simulation returns the set of
//! maximum perfect subgraphs, one per ball at most (Theorem 1).

use crate::relation::MatchRelation;
use ssim_graph::{AdjView, BitSet, Graph, NodeId, Pattern};

/// The match graph w.r.t. a match relation: data nodes and the data edges that realise some
/// pattern edge. Node ids refer to the original data graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchGraph {
    /// Data nodes appearing in the relation, ascending.
    pub nodes: Vec<NodeId>,
    /// Data edges covered by at least one pattern edge, deduplicated and sorted.
    pub edges: Vec<(NodeId, NodeId)>,
}

impl MatchGraph {
    /// Builds the match graph of `relation` over `view`.
    pub fn build<V: AdjView>(pattern: &Pattern, view: &V, relation: &MatchRelation) -> Self {
        let nodes: Vec<NodeId> = relation
            .matched_data_nodes()
            .iter()
            .map(NodeId::from_index)
            .collect();
        let mut edges = Vec::new();
        for (u, u_child) in pattern.graph().edges() {
            for v in relation.candidates(u).iter().map(NodeId::from_index) {
                for w in view.out_neighbors(v) {
                    if relation.contains(u_child, w) {
                        edges.push((v, w));
                    }
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        MatchGraph { nodes, edges }
    }

    /// Number of nodes in the match graph.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges in the match graph.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` when `node` appears in the match graph.
    pub fn contains_node(&self, node: NodeId) -> bool {
        self.nodes.binary_search(&node).is_ok()
    }

    /// Splits the match graph into its undirected connected components (lists of node ids).
    pub fn connected_components(&self) -> Vec<Vec<NodeId>> {
        if self.nodes.is_empty() {
            return Vec::new();
        }
        // Union-find over positions in `self.nodes`.
        let index_of = |n: NodeId| {
            self.nodes
                .binary_search(&n)
                .expect("edge endpoint not in node set")
        };
        let mut parent: Vec<usize> = (0..self.nodes.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for &(s, t) in &self.edges {
            let (a, b) = (index_of(s), index_of(t));
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<NodeId>> =
            std::collections::BTreeMap::new();
        for (i, &n) in self.nodes.iter().enumerate() {
            groups.entry(find(&mut parent, i)).or_default().push(n);
        }
        groups.into_values().collect()
    }

    /// The connected component containing `node`, or `None` when the node is absent.
    ///
    /// Unlike [`MatchGraph::connected_components`], which partitions the *whole* match
    /// graph with union-find and groups every component, this builds an undirected CSR
    /// over the match edges in one counting pass and runs a single BFS from `node` —
    /// `ExtractMaxPG` only ever needs the center's component, and on balls whose match
    /// graph splinters into many components the difference is the dominant extraction
    /// cost.
    pub fn component_containing(&self, node: NodeId) -> Option<Vec<NodeId>> {
        let start = self.nodes.binary_search(&node).ok()?;
        let n = self.nodes.len();
        let index_of = |v: NodeId| {
            self.nodes
                .binary_search(&v)
                .expect("edge endpoint not in node set")
        };
        // Undirected CSR over node positions: counting pass, prefix sums, fill.
        let mut offsets = vec![0u32; n + 1];
        for &(s, t) in &self.edges {
            offsets[index_of(s) + 1] += 1;
            offsets[index_of(t) + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut adjacency = vec![0u32; offsets[n] as usize];
        let mut cursor = offsets.clone();
        for &(s, t) in &self.edges {
            let (a, b) = (index_of(s), index_of(t));
            adjacency[cursor[a] as usize] = b as u32;
            cursor[a] += 1;
            adjacency[cursor[b] as usize] = a as u32;
            cursor[b] += 1;
        }
        // BFS over only the component containing `start`.
        let mut seen = BitSet::new(n);
        seen.insert(start);
        let mut component = vec![start];
        let mut head = 0;
        while head < component.len() {
            let u = component[head];
            head += 1;
            for &w in &adjacency[offsets[u] as usize..offsets[u + 1] as usize] {
                if !seen.contains(w as usize) {
                    seen.insert(w as usize);
                    component.push(w as usize);
                }
            }
        }
        component.sort_unstable();
        Some(component.into_iter().map(|i| self.nodes[i]).collect())
    }

    /// Materialises the match graph as a standalone [`Graph`] (plus new-id → original-id map).
    pub fn to_graph(&self, data: &Graph) -> (Graph, Vec<NodeId>) {
        data.subgraph_with_edges(&self.nodes, &self.edges)
    }
}

/// A maximum perfect subgraph: the result unit of strong simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfectSubgraph {
    /// The ball center `w` this subgraph was extracted from.
    pub center: NodeId,
    /// Ball radius used (the pattern diameter `dQ`, unless overridden).
    pub radius: usize,
    /// Data nodes of the subgraph, ascending.
    pub nodes: Vec<NodeId>,
    /// Data edges of the subgraph (the match-graph edges inside the component).
    pub edges: Vec<(NodeId, NodeId)>,
    /// The match relation restricted to the subgraph's nodes, as sorted
    /// `(pattern node, data node)` pairs.
    pub relation: Vec<(NodeId, NodeId)>,
}

impl PerfectSubgraph {
    /// Number of data nodes in the subgraph.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of data edges in the subgraph.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Data nodes matching a given pattern node.
    pub fn matches_of(&self, pattern_node: NodeId) -> Vec<NodeId> {
        self.relation
            .iter()
            .filter(|(u, _)| *u == pattern_node)
            .map(|&(_, v)| v)
            .collect()
    }

    /// Materialises the subgraph as a standalone [`Graph`] (plus id map).
    pub fn to_graph(&self, data: &Graph) -> (Graph, Vec<NodeId>) {
        data.subgraph_with_edges(&self.nodes, &self.edges)
    }

    /// Structural identity key (nodes and edges), used to deduplicate identical subgraphs
    /// discovered from different ball centers.
    pub fn structural_key(&self) -> (Vec<NodeId>, Vec<(NodeId, NodeId)>) {
        (self.nodes.clone(), self.edges.clone())
    }
}

/// Procedure `ExtractMaxPG` (Fig. 3): extracts the maximum perfect subgraph of a ball.
///
/// Returns `None` when the ball center `w` does not appear in the relation (line 1 of the
/// procedure), otherwise the connected component of the match graph that contains `w`
/// (justified by Theorem 2).
pub fn extract_max_perfect_subgraph<V: AdjView>(
    pattern: &Pattern,
    view: &V,
    relation: &MatchRelation,
    center: NodeId,
    radius: usize,
) -> Option<PerfectSubgraph> {
    if !relation.matched_data_nodes().contains(center.index()) {
        return None;
    }
    let match_graph = MatchGraph::build(pattern, view, relation);
    let component = match_graph.component_containing(center)?;
    let mut in_component = BitSet::new(view.id_space());
    for &n in &component {
        in_component.insert(n.index());
    }
    let edges: Vec<(NodeId, NodeId)> = match_graph
        .edges
        .iter()
        .copied()
        .filter(|(s, t)| in_component.contains(s.index()) && in_component.contains(t.index()))
        .collect();
    let relation_pairs: Vec<(NodeId, NodeId)> = relation
        .pairs()
        .filter(|(_, v)| in_component.contains(v.index()))
        .collect();
    Some(PerfectSubgraph {
        center,
        radius,
        nodes: component,
        edges,
        relation: relation_pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual::dual_simulation;
    use ssim_graph::{GraphView, Label};

    /// Pattern A -> B; data has two disjoint A -> B pairs and a stray labelled-C node.
    fn two_components() -> (Pattern, Graph) {
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let data = Graph::from_edges(
            vec![Label(0), Label(1), Label(0), Label(1), Label(2)],
            &[(0, 1), (2, 3), (0, 4)],
        )
        .unwrap();
        (pattern, data)
    }

    #[test]
    fn match_graph_includes_only_covered_edges() {
        let (pattern, data) = two_components();
        let relation = dual_simulation(&pattern, &data).unwrap();
        let view = GraphView::full(&data);
        let mg = MatchGraph::build(&pattern, &view, &relation);
        assert_eq!(mg.nodes, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        // Edge 0->4 is not covered by any pattern edge (node 4 has label C).
        assert_eq!(
            mg.edges,
            vec![(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))]
        );
        assert_eq!(mg.node_count(), 4);
        assert_eq!(mg.edge_count(), 2);
        assert!(mg.contains_node(NodeId(2)));
        assert!(!mg.contains_node(NodeId(4)));
    }

    #[test]
    fn connected_components_of_match_graph() {
        let (pattern, data) = two_components();
        let relation = dual_simulation(&pattern, &data).unwrap();
        let mg = MatchGraph::build(&pattern, &GraphView::full(&data), &relation);
        let comps = mg.connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(
            mg.component_containing(NodeId(3)).unwrap(),
            vec![NodeId(2), NodeId(3)]
        );
        assert_eq!(mg.component_containing(NodeId(4)), None);
    }

    #[test]
    fn empty_match_graph() {
        let mg = MatchGraph {
            nodes: vec![],
            edges: vec![],
        };
        assert!(mg.connected_components().is_empty());
        assert_eq!(mg.component_containing(NodeId(0)), None);
    }

    #[test]
    fn extract_perfect_subgraph_around_center() {
        let (pattern, data) = two_components();
        let relation = dual_simulation(&pattern, &data).unwrap();
        let view = GraphView::full(&data);
        let ps = extract_max_perfect_subgraph(&pattern, &view, &relation, NodeId(1), 1).unwrap();
        assert_eq!(ps.nodes, vec![NodeId(0), NodeId(1)]);
        assert_eq!(ps.edges, vec![(NodeId(0), NodeId(1))]);
        assert_eq!(ps.center, NodeId(1));
        assert_eq!(ps.radius, 1);
        assert_eq!(ps.matches_of(NodeId(0)), vec![NodeId(0)]);
        assert_eq!(ps.matches_of(NodeId(1)), vec![NodeId(1)]);
        assert_eq!(ps.node_count(), 2);
        assert_eq!(ps.edge_count(), 1);
        // Relation restricted to the component: exactly two pairs.
        assert_eq!(ps.relation.len(), 2);
    }

    #[test]
    fn extract_returns_none_for_unmatched_center() {
        let (pattern, data) = two_components();
        let relation = dual_simulation(&pattern, &data).unwrap();
        let view = GraphView::full(&data);
        // Node 4 (label C) is not in the relation.
        assert!(extract_max_perfect_subgraph(&pattern, &view, &relation, NodeId(4), 1).is_none());
    }

    #[test]
    fn perfect_subgraph_to_graph_roundtrip() {
        let (pattern, data) = two_components();
        let relation = dual_simulation(&pattern, &data).unwrap();
        let view = GraphView::full(&data);
        let ps = extract_max_perfect_subgraph(&pattern, &view, &relation, NodeId(2), 1).unwrap();
        let (g, mapping) = ps.to_graph(&data);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(mapping, vec![NodeId(2), NodeId(3)]);
        let key = ps.structural_key();
        assert_eq!(key.0, ps.nodes);
    }

    #[test]
    fn component_containing_isolated_center() {
        // A center that appears in the relation but has no incident match edge forms a
        // singleton component — the radius-0 ball case of `ExtractMaxPG`.
        let pattern = Pattern::from_edges(vec![Label(0)], &[]).unwrap();
        let data = Graph::from_edges(vec![Label(0), Label(0)], &[(0, 1)]).unwrap();
        let relation = dual_simulation(&pattern, &data).unwrap();
        let view = GraphView::full(&data);
        let mg = MatchGraph::build(&pattern, &view, &relation);
        assert!(mg.edges.is_empty(), "edgeless pattern covers no data edge");
        assert_eq!(mg.component_containing(NodeId(0)).unwrap(), vec![NodeId(0)]);
        assert_eq!(mg.component_containing(NodeId(1)).unwrap(), vec![NodeId(1)]);
        // Extraction around each isolated center returns the singleton subgraph.
        let ps = extract_max_perfect_subgraph(&pattern, &view, &relation, NodeId(1), 0).unwrap();
        assert_eq!(ps.nodes, vec![NodeId(1)]);
        assert!(ps.edges.is_empty());
    }

    #[test]
    fn component_containing_agrees_with_full_partition() {
        // The targeted BFS must return exactly the group the union-find partition puts
        // the node in, for every node of a multi-component match graph.
        let (pattern, data) = two_components();
        let relation = dual_simulation(&pattern, &data).unwrap();
        let mg = MatchGraph::build(&pattern, &GraphView::full(&data), &relation);
        let components = mg.connected_components();
        for &node in &mg.nodes {
            let expected = components
                .iter()
                .find(|c| c.binary_search(&node).is_ok())
                .unwrap();
            assert_eq!(&mg.component_containing(node).unwrap(), expected, "{node}");
        }
    }

    #[test]
    fn structural_key_ignores_center_and_radius() {
        // The same node/edge set discovered from different centers (or radii) must
        // produce equal keys, else deduplication would keep structural duplicates.
        let base = PerfectSubgraph {
            center: NodeId(0),
            radius: 1,
            nodes: vec![NodeId(0), NodeId(1)],
            edges: vec![(NodeId(0), NodeId(1))],
            relation: vec![(NodeId(0), NodeId(0)), (NodeId(1), NodeId(1))],
        };
        let other_center = PerfectSubgraph {
            center: NodeId(1),
            radius: 2,
            relation: vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(0))],
            ..base.clone()
        };
        assert_eq!(base.structural_key(), other_center.structural_key());
    }

    #[test]
    fn structural_key_distinguishes_permuted_node_ids() {
        // Node-id permutations that change the node/edge sets change the key: the key is
        // the literal (sorted) sets, stable across discovery order but not isomorphism.
        let a = PerfectSubgraph {
            center: NodeId(0),
            radius: 1,
            nodes: vec![NodeId(0), NodeId(1)],
            edges: vec![(NodeId(0), NodeId(1))],
            relation: Vec::new(),
        };
        let permuted = PerfectSubgraph {
            nodes: vec![NodeId(1), NodeId(2)],
            edges: vec![(NodeId(1), NodeId(2))],
            ..a.clone()
        };
        assert_ne!(a.structural_key(), permuted.structural_key());
        // A reversed edge is a different structure too.
        let reversed = PerfectSubgraph {
            edges: vec![(NodeId(1), NodeId(0))],
            ..a.clone()
        };
        assert_ne!(a.structural_key(), reversed.structural_key());
    }

    #[test]
    fn match_graph_to_graph() {
        let (pattern, data) = two_components();
        let relation = dual_simulation(&pattern, &data).unwrap();
        let mg = MatchGraph::build(&pattern, &GraphView::full(&data), &relation);
        let (g, mapping) = mg.to_graph(&data);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(mapping.len(), 4);
    }
}

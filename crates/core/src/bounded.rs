//! Bounded simulation (Fan et al., PVLDB 2010) — the extension the paper builds on.
//!
//! Bounded simulation relaxes pattern edges to *bounded paths*: each pattern edge carries a
//! bound `k` (or "unbounded"), and `(u, v)` can be matched when, for every pattern edge
//! `(u, u', k)`, some node `v'` matching `u'` is reachable from `v` by a **directed** path of
//! length at most `k`. The paper's Remark (Section 2.2) notes that strong simulation can be
//! extended the same way; this module provides the bounded matcher both as that extension's
//! building block and as the cubic-time baseline the paper compares against conceptually.

use crate::relation::MatchRelation;
use ssim_graph::{Graph, GraphView, Label, NodeId};
use std::collections::VecDeque;

/// Bound on a bounded-pattern edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// The connection must be realised by a path of at most this many edges (≥ 1).
    Hops(u32),
    /// Any positive path length is acceptable (reachability).
    Unbounded,
}

impl Bound {
    /// Whether a path of exactly `distance` edges satisfies this bound. Zero-length
    /// paths never do — a bounded edge always demands at least one hop.
    pub fn admits(self, distance: u32) -> bool {
        match self {
            Bound::Hops(k) => distance >= 1 && distance <= k,
            Bound::Unbounded => distance >= 1,
        }
    }
}

/// A pattern graph whose edges carry hop bounds.
#[derive(Debug, Clone)]
pub struct BoundedPattern {
    labels: Vec<Label>,
    edges: Vec<(NodeId, NodeId, Bound)>,
}

impl BoundedPattern {
    /// Creates a bounded pattern from node labels and bounded edges.
    ///
    /// # Panics
    /// Panics when an edge references an out-of-range node.
    pub fn new(labels: Vec<Label>, edges: Vec<(NodeId, NodeId, Bound)>) -> Self {
        for &(s, t, _) in &edges {
            assert!(
                s.index() < labels.len() && t.index() < labels.len(),
                "bounded pattern edge ({s}, {t}) out of range"
            );
        }
        BoundedPattern { labels, edges }
    }

    /// Converts an ordinary pattern into a bounded one where every edge has bound 1
    /// (bounded simulation then coincides with graph simulation).
    pub fn from_pattern(pattern: &ssim_graph::Pattern) -> Self {
        let labels = pattern.graph().labels().to_vec();
        let edges = pattern
            .graph()
            .edges()
            .map(|(s, t)| (s, t, Bound::Hops(1)))
            .collect();
        BoundedPattern { labels, edges }
    }

    /// Number of pattern nodes.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// The bounded edges.
    pub fn edges(&self) -> &[(NodeId, NodeId, Bound)] {
        &self.edges
    }

    /// Label of node `u`.
    pub fn label(&self, u: NodeId) -> Label {
        self.labels[u.index()]
    }

    /// Iterates over the pattern nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.labels.len()).map(NodeId::from_index)
    }
}

/// Computes the maximum bounded-simulation relation of `pattern` over `data`.
///
/// Returns `None` when the data graph does not match. The algorithm mirrors the refinement
/// loop of graph simulation, but the child condition is evaluated over bounded directed
/// reachability rather than single edges.
pub fn bounded_simulation(pattern: &BoundedPattern, data: &Graph) -> Option<MatchRelation> {
    let view = GraphView::full(data);
    let mut relation = MatchRelation::empty(pattern.node_count(), data.node_count());
    for u in pattern.nodes() {
        for &v in data.nodes_with_label(pattern.label(u)) {
            relation.insert(u, v);
        }
    }
    // Precompute, for every data node, the nodes reachable within the largest finite bound
    // requested (or full reachability if any edge is unbounded). To keep memory bounded we
    // compute reachability lazily per (node, bound) query with a memo of BFS frontiers.
    let mut changed = true;
    while changed {
        changed = false;
        for &(u, u_child, bound) in pattern.edges() {
            let removals: Vec<NodeId> = relation
                .candidates(u)
                .iter()
                .map(NodeId::from_index)
                .filter(|&v| !has_bounded_successor(&view, v, bound, &relation, u_child))
                .collect();
            for v in removals {
                relation.remove(u, v);
                changed = true;
            }
            if relation.candidates(u).is_empty() {
                return None;
            }
        }
    }
    if relation.is_total() {
        Some(relation)
    } else {
        None
    }
}

/// Returns `true` when `Q ≺bounded G`.
pub fn bounded_simulates(pattern: &BoundedPattern, data: &Graph) -> bool {
    bounded_simulation(pattern, data).is_some()
}

/// BFS from `v` along directed edges, stopping as soon as a node matching `target` within
/// the bound is found.
fn has_bounded_successor(
    view: &GraphView<'_>,
    v: NodeId,
    bound: Bound,
    relation: &MatchRelation,
    target: NodeId,
) -> bool {
    let limit = match bound {
        Bound::Hops(k) => k,
        Bound::Unbounded => u32::MAX,
    };
    let n = view.graph().node_count();
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    dist[v.index()] = 0;
    queue.push_back(v);
    while let Some(x) = queue.pop_front() {
        let dx = dist[x.index()];
        if dx >= limit {
            continue;
        }
        for y in view.out_neighbors(x) {
            if dist[y.index()] == u32::MAX {
                dist[y.index()] = dx + 1;
                if bound.admits(dx + 1) && relation.contains(target, y) {
                    return true;
                }
                queue.push_back(y);
            } else if y == v && bound.admits(dx + 1) && relation.contains(target, v) {
                // The start sits in `dist` at 0, which is never admissible, so a cycle
                // closing back on `v` must be caught here: `dx` is the true shortest
                // distance to `x`, so `dx + 1` witnesses a positive-length path v → v.
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::graph_simulation;
    use ssim_graph::Pattern;

    fn chain(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        Graph::from_edges(labels.iter().map(|&l| Label(l)).collect(), edges).unwrap()
    }

    #[test]
    fn bound_one_equals_graph_simulation() {
        let pattern =
            Pattern::from_edges(vec![Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]).unwrap();
        let bounded = BoundedPattern::from_pattern(&pattern);
        let data = chain(&[0, 1, 2, 0, 1], &[(0, 1), (1, 2), (3, 4)]);
        let plain = graph_simulation(&pattern, &data).unwrap();
        let via_bounded = bounded_simulation(&bounded, &data).unwrap();
        assert_eq!(plain.to_sorted_pairs(), via_bounded.to_sorted_pairs());
    }

    #[test]
    fn two_hop_bound_matches_across_an_intermediate_node() {
        // Pattern: A -[≤2]-> C. Data: A -> B -> C (no direct edge).
        let pattern = BoundedPattern::new(
            vec![Label(0), Label(2)],
            vec![(NodeId(0), NodeId(1), Bound::Hops(2))],
        );
        let data = chain(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let relation = bounded_simulation(&pattern, &data).unwrap();
        assert!(relation.contains(NodeId(0), NodeId(0)));
        assert!(relation.contains(NodeId(1), NodeId(2)));
        // With bound 1 the same pattern fails.
        let strict = BoundedPattern::new(
            vec![Label(0), Label(2)],
            vec![(NodeId(0), NodeId(1), Bound::Hops(1))],
        );
        assert!(!bounded_simulates(&strict, &data));
    }

    #[test]
    fn unbounded_edge_is_reachability() {
        // Pattern: A -[*]-> D over a long chain.
        let pattern = BoundedPattern::new(
            vec![Label(0), Label(3)],
            vec![(NodeId(0), NodeId(1), Bound::Unbounded)],
        );
        let data = chain(&[0, 1, 2, 3], &[(0, 1), (1, 2), (2, 3)]);
        assert!(bounded_simulates(&pattern, &data));
        // Reverse the chain: D is no longer reachable from A.
        let reversed = chain(&[0, 1, 2, 3], &[(3, 2), (2, 1), (1, 0)]);
        assert!(!bounded_simulates(&pattern, &reversed));
    }

    #[test]
    fn zero_length_paths_do_not_count() {
        // Pattern: A -[≤3]-> A requires a directed cycle through A-labelled nodes, not the
        // node itself at distance zero.
        let pattern = BoundedPattern::new(
            vec![Label(0), Label(0)],
            vec![(NodeId(0), NodeId(1), Bound::Hops(3))],
        );
        let no_cycle = chain(&[0, 1], &[(0, 1)]);
        assert!(!bounded_simulates(&pattern, &no_cycle));
        let with_cycle = chain(&[0, 1, 0], &[(0, 1), (1, 2), (2, 0)]);
        assert!(bounded_simulates(&pattern, &with_cycle));
    }

    #[test]
    fn refinement_cascades_through_bounded_edges() {
        // Pattern: A -[≤2]-> B -[≤1]-> C. Data contains a B that can reach no C, so the A
        // that only reaches that B must also be removed.
        let pattern = BoundedPattern::new(
            vec![Label(0), Label(1), Label(2)],
            vec![
                (NodeId(0), NodeId(1), Bound::Hops(2)),
                (NodeId(1), NodeId(2), Bound::Hops(1)),
            ],
        );
        let data = chain(
            &[0, 9, 1, 2, 0, 1],
            &[(0, 1), (1, 2), (2, 3), (4, 5)], // A0 -> x -> B2 -> C3 ; A4 -> B5 (dead end)
        );
        let relation = bounded_simulation(&pattern, &data).unwrap();
        assert!(relation.contains(NodeId(0), NodeId(0)));
        assert!(
            !relation.contains(NodeId(0), NodeId(4)),
            "A4 only reaches the dead-end B5"
        );
        assert!(!relation.contains(NodeId(1), NodeId(5)));
    }

    #[test]
    fn cycle_back_to_the_start_counts() {
        // A self-loop is a length-1 path from a node to itself; the BFS must not let the
        // start's distance-0 entry mask it. With bound 1 this must coincide with graph
        // simulation, which admits the self-loop directly.
        let pattern = BoundedPattern::new(
            vec![Label(0), Label(0)],
            vec![(NodeId(0), NodeId(1), Bound::Hops(1))],
        );
        let looped = chain(&[0], &[(0, 0)]);
        assert!(bounded_simulates(&pattern, &looped));
        // The same applies to longer cycles when the start is the only candidate.
        let two_cycle = chain(&[0, 1], &[(0, 1), (1, 0)]);
        let via_cycle = BoundedPattern::new(
            vec![Label(0), Label(0)],
            vec![(NodeId(0), NodeId(1), Bound::Hops(2))],
        );
        assert!(bounded_simulates(&via_cycle, &two_cycle));
        assert!(!bounded_simulates(
            &BoundedPattern::new(
                vec![Label(0), Label(0)],
                vec![(NodeId(0), NodeId(1), Bound::Hops(1))],
            ),
            &two_cycle
        ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_edge_panics() {
        let _ = BoundedPattern::new(vec![Label(0)], vec![(NodeId(0), NodeId(3), Bound::Hops(1))]);
    }

    #[test]
    fn accessors() {
        let p = BoundedPattern::new(
            vec![Label(0), Label(1)],
            vec![(NodeId(0), NodeId(1), Bound::Hops(2))],
        );
        assert_eq!(p.node_count(), 2);
        assert_eq!(p.edges().len(), 1);
        assert_eq!(p.label(NodeId(1)), Label(1));
        assert_eq!(p.nodes().count(), 2);
        assert!(Bound::Unbounded.admits(10));
        assert!(!Bound::Hops(2).admits(0));
        assert!(!Bound::Hops(2).admits(3));
    }
}

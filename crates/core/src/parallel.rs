//! Scoped-thread parallel driver shared by the matching engine and the distributed runtime.
//!
//! The environment has no external crates (no rayon), so fan-out is built on
//! `std::thread::scope`: a fixed worker pool is spawned per call, each worker produces one
//! result, and results are returned **in worker order** so callers can merge
//! deterministically (the engine stripes ball centers over workers and re-sorts subgraphs
//! by center id; the distributed runtime gives each site its own worker).

use std::thread;

/// Number of worker threads the machine supports.
pub fn available_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `worker(0), …, worker(threads - 1)` on scoped threads and returns their results in
/// worker order. With `threads <= 1` the single worker runs inline on the caller's thread.
///
/// # Panics
/// Propagates a panic of any worker.
pub fn par_workers<T, F>(threads: usize, worker: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1);
    if threads == 1 {
        return vec![worker(0)];
    }
    thread::scope(|scope| {
        let worker = &worker;
        let handles: Vec<_> = (0..threads)
            .map(|t| scope.spawn(move || worker(t)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// The indices of `0..len` assigned to worker `t` of `threads` under striped assignment.
///
/// Striping (worker `t` takes `t, t + threads, t + 2·threads, …`) balances workloads whose
/// cost varies smoothly along the index range, such as ball sizes along node ids.
pub fn stripe(len: usize, threads: usize, t: usize) -> impl Iterator<Item = usize> {
    (t..len).step_by(threads.max(1))
}

/// The contiguous slice of `0..len` assigned to worker `t` of `threads`, balanced to
/// within one element.
///
/// Contiguity is what the sliding-ball engine needs: worker `t` walks a locality-ordered
/// center sequence, and only *consecutive* centers let its [`crate::ball::BallForest`]
/// reuse the previous ball. Striping would interleave the workers and destroy every
/// adjacency, so the incremental strategy trades stripe's smooth load balance for reuse.
pub fn contiguous(len: usize, threads: usize, t: usize) -> std::ops::Range<usize> {
    let threads = threads.max(1);
    let base = len / threads;
    let extra = len % threads;
    let start = t * base + t.min(extra);
    let end = start + base + usize::from(t < extra);
    start.min(len)..end.min(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_worker_order() {
        let results = par_workers(8, |t| t * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn single_worker_runs_inline() {
        let calls = AtomicUsize::new(0);
        let results = par_workers(1, |t| {
            calls.fetch_add(1, Ordering::SeqCst);
            t
        });
        assert_eq!(results, vec![0]);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(par_workers(0, |t| t), vec![0]);
    }

    #[test]
    fn stripes_partition_the_range() {
        let mut all: Vec<usize> = (0..4).flat_map(|t| stripe(10, 4, t)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        assert_eq!(stripe(10, 4, 1).collect::<Vec<_>>(), vec![1, 5, 9]);
        assert_eq!(stripe(3, 8, 5).count(), 0);
    }

    #[test]
    fn contiguous_ranges_partition_the_range() {
        for (len, threads) in [(10, 4), (3, 8), (0, 3), (7, 1), (12, 12)] {
            let mut all: Vec<usize> = (0..threads)
                .flat_map(|t| contiguous(len, threads, t))
                .collect();
            all.sort_unstable();
            assert_eq!(
                all,
                (0..len).collect::<Vec<_>>(),
                "len={len} threads={threads}"
            );
            // Balanced to within one element.
            let sizes: Vec<usize> = (0..threads)
                .map(|t| contiguous(len, threads, t).len())
                .collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced: {sizes:?}");
        }
        assert_eq!(contiguous(10, 4, 0), 0..3);
        assert_eq!(contiguous(10, 4, 3), 8..10);
    }

    #[test]
    #[should_panic(expected = "parallel worker panicked")]
    fn worker_panics_propagate() {
        let _ = par_workers(2, |t| {
            if t == 1 {
                panic!("boom");
            }
            t
        });
    }
}

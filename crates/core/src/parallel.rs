//! Scoped-thread parallel driver shared by the matching engine and the distributed runtime.
//!
//! The environment has no external crates (no rayon), so fan-out is built on
//! `std::thread::scope`: a worker pool is spawned per call, each worker produces one
//! result, and results are returned **in worker order** so callers can merge
//! deterministically.
//!
//! Work distribution is chunked: [`chunk_plan`] cuts an index range into
//! locality-contiguous chunks whose boundaries depend only on the range length (never on
//! the thread count), and [`StealScheduler`] deals those chunks to per-worker deques from
//! which idle workers steal *whole chunks*. Contiguity within a chunk is what the
//! sliding-ball engine needs — only consecutive centers let a
//! [`crate::ball::BallForest`] reuse the previous ball and a
//! [`crate::warm::WarmMatcher`] carry its converged relation — so stealing moves the
//! unit that keeps both intact. Because the chunk boundaries are thread-count
//! independent, every per-chunk decision (including re-splits driven by forest state) is
//! a function of the input alone, which is how `MatchOutput` stays bit-identical across
//! thread counts.

use std::any::Any;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::{Mutex, MutexGuard};
use std::thread;

/// Locks a scheduler deque, recovering from poisoning. A worker panicking while holding
/// a deque guard poisons the `Mutex`, but the protected state is a plain `VecDeque` —
/// every push/pop leaves it valid, so the poison flag carries no information here. Other
/// workers (and the supervised recovery path, which outlives contained panics) keep
/// scheduling instead of cascading the panic pool-wide.
fn lock_deque<T>(queue: &Mutex<VecDeque<T>>) -> MutexGuard<'_, VecDeque<T>> {
    queue
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Hard ceiling on the `SSIM_THREADS` override. Worker pools are spawned per call, so a
/// runaway override (`SSIM_THREADS=1000000`) would pay a million thread spawns *per
/// parallel section* — far past any machine's core count and enough to exhaust process
/// limits. 512 comfortably covers every real runner while keeping a typo survivable.
pub const MAX_THREAD_OVERRIDE: usize = 512;

/// Parses an `SSIM_THREADS` override value: trimmed, base-10, zero and garbage rejected
/// (fall back to the probe), anything above [`MAX_THREAD_OVERRIDE`] clamped down to it.
/// Split out from [`available_threads`] so the policy is unit-testable without mutating
/// process-global environment state under a concurrent test harness.
pub fn thread_override(raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n.min(MAX_THREAD_OVERRIDE)),
        _ => None,
    }
}

/// Number of worker threads the machine supports. The `SSIM_THREADS` environment
/// variable overrides the probe (CI uses it to force a multi-thread pool on any runner);
/// unparsable or zero values fall back to the probe, and overrides are clamped to
/// [`MAX_THREAD_OVERRIDE`].
pub fn available_threads() -> usize {
    if let Some(n) = std::env::var("SSIM_THREADS")
        .ok()
        .and_then(|s| thread_override(&s))
    {
        return n;
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Clamps a requested thread count to the number of work items, so no worker is spawned
/// just to find its queue empty (with `threads > items`, trailing workers would pay
/// spawn-and-join overhead for nothing). Always at least 1.
pub fn effective_workers(threads: usize, items: usize) -> usize {
    threads.clamp(1, items.max(1))
}

/// Best-effort extraction of the human-readable message from a panic payload
/// (`panic!("…")` carries `String` or `&'static str`; anything else is opaque).
pub fn panic_message(payload: &(dyn Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Runs `worker(0), …, worker(threads - 1)` on scoped threads and returns their results in
/// worker order. With `threads <= 1` the single worker runs inline on the caller's thread.
///
/// # Panics
/// Propagates the first (in worker order) worker panic, re-raised with the worker index
/// and the original payload's message so failures in the parallel suites are
/// attributable. Workers that annotate their own panics (see the engine's chunk loop)
/// compose: the final message carries worker, chunk, and center.
pub fn par_workers<T, F>(threads: usize, worker: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1);
    if threads == 1 {
        return vec![worker(0)];
    }
    thread::scope(|scope| {
        let worker = &worker;
        let handles: Vec<_> = (0..threads)
            .map(|t| scope.spawn(move || worker(t)))
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(t, h)| match h.join() {
                Ok(v) => v,
                Err(payload) => {
                    panic!("parallel worker {t} panicked: {}", panic_message(&*payload))
                }
            })
            .collect()
    })
}

/// The indices of `0..len` assigned to worker `t` of `threads` under striped assignment.
///
/// Striping (worker `t` takes `t, t + threads, t + 2·threads, …`) balances workloads whose
/// cost varies smoothly along the index range. The chunk scheduler has replaced it in the
/// engine's fan-out; it remains the right shape for index-addressed side arrays.
pub fn stripe(len: usize, threads: usize, t: usize) -> impl Iterator<Item = usize> {
    (t..len).step_by(threads.max(1))
}

/// The contiguous slice of `0..len` assigned to worker `t` of `threads`, balanced to
/// within one element. Workers beyond `len` receive empty ranges — callers that spawn
/// one thread per slice should clamp with [`effective_workers`] first.
pub fn contiguous(len: usize, threads: usize, t: usize) -> Range<usize> {
    let threads = threads.max(1);
    let base = len / threads;
    let extra = len % threads;
    let start = t * base + t.min(extra);
    let end = start + base + usize::from(t < extra);
    start.min(len)..end.min(len)
}

/// Smallest chunk the planner emits (and the floor below which a degraded chunk is not
/// re-split further): big enough that a slide chain can amortise its first fresh build.
pub const MIN_CHUNK: usize = 16;
/// Largest chunk the planner emits: small enough that stealing can rebalance a skewed
/// corpus even at low thread counts.
pub const MAX_CHUNK: usize = 256;
/// Target chunks-per-input divisor: ~64 chunks for large inputs keeps steal granularity
/// fine without drowning small inputs in per-chunk forest resets.
const CHUNK_DIVISOR: usize = 64;

/// Cuts `0..len` into locality-contiguous chunks of ~`len / 64` consecutive indices
/// (clamped to `[MIN_CHUNK, MAX_CHUNK]`), balanced to within one element.
///
/// The plan depends only on `len` — **never** on the thread count — so every consumer
/// sees the same chunk boundaries whether it runs sequentially or on any pool size.
/// That invariance is what keeps per-chunk state resets (and therefore `MatchStats`)
/// bit-identical across thread counts.
pub fn chunk_plan(len: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let target = (len / CHUNK_DIVISOR).clamp(MIN_CHUNK, MAX_CHUNK);
    let chunks = len.div_ceil(target);
    (0..chunks).map(|c| contiguous(len, chunks, c)).collect()
}

/// Work-stealing deques of whole work items (the engine's items are chunk ranges).
///
/// Each worker owns a deque seeded with a contiguous block of the item list (so worker
/// `t`'s initial items are the same ones [`contiguous`] would have handed it). A worker
/// drains its own deque from the front; when empty it steals from the *back* of the
/// longest other deque — the back is the victim's coldest work, so the victim keeps the
/// items adjacent to its active slide chain. Items pushed mid-run (chunk re-splits) are
/// stealable like any other.
///
/// The scheduler only hands out *which* items run *where*; item content never depends on
/// scheduling, so results stay deterministic however the steals fall.
pub struct StealScheduler<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
}

impl<T> StealScheduler<T> {
    /// Deals `items` to `workers` deques in contiguous blocks, in order.
    pub fn new(workers: usize, items: Vec<T>) -> Self {
        let workers = workers.max(1);
        let len = items.len();
        let mut queues: Vec<VecDeque<T>> = (0..workers).map(|_| VecDeque::new()).collect();
        let mut iter = items.into_iter();
        for (t, queue) in queues.iter_mut().enumerate() {
            for _ in contiguous(len, workers, t) {
                queue.push_back(iter.next().expect("contiguous blocks cover the items"));
            }
        }
        StealScheduler {
            queues: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Appends an item to `worker`'s own deque (used for chunk re-splits); it runs after
    /// the worker's current items unless stolen first.
    pub fn push(&self, worker: usize, item: T) {
        lock_deque(&self.queues[worker]).push_back(item);
    }

    /// The next item for `worker`: its own deque's front, else one stolen from the back
    /// of the longest other deque. Returns the item and whether it was stolen; `None`
    /// once every deque is empty. Poisoned deques (a worker died mid-lock) are recovered,
    /// not propagated — see [`lock_deque`].
    pub fn next(&self, worker: usize) -> Option<(T, bool)> {
        if let Some(item) = lock_deque(&self.queues[worker]).pop_front() {
            return Some((item, false));
        }
        loop {
            let mut victim: Option<(usize, usize)> = None;
            for (v, queue) in self.queues.iter().enumerate() {
                if v == worker {
                    continue;
                }
                let len = lock_deque(queue).len();
                if len > 0 && victim.is_none_or(|(_, best)| len > best) {
                    victim = Some((v, len));
                }
            }
            let (v, _) = victim?;
            // The victim may have drained between the scan and the steal; rescan.
            if let Some(item) = lock_deque(&self.queues[v]).pop_back() {
                return Some((item, true));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_worker_order() {
        let results = par_workers(8, |t| t * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn single_worker_runs_inline() {
        let calls = AtomicUsize::new(0);
        let results = par_workers(1, |t| {
            calls.fetch_add(1, Ordering::SeqCst);
            t
        });
        assert_eq!(results, vec![0]);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(par_workers(0, |t| t), vec![0]);
    }

    #[test]
    fn stripes_partition_the_range() {
        let mut all: Vec<usize> = (0..4).flat_map(|t| stripe(10, 4, t)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        assert_eq!(stripe(10, 4, 1).collect::<Vec<_>>(), vec![1, 5, 9]);
        assert_eq!(stripe(3, 8, 5).count(), 0);
    }

    #[test]
    fn contiguous_ranges_partition_the_range() {
        for (len, threads) in [(10, 4), (3, 8), (0, 3), (7, 1), (12, 12)] {
            let mut all: Vec<usize> = (0..threads)
                .flat_map(|t| contiguous(len, threads, t))
                .collect();
            all.sort_unstable();
            assert_eq!(
                all,
                (0..len).collect::<Vec<_>>(),
                "len={len} threads={threads}"
            );
            // Balanced to within one element.
            let sizes: Vec<usize> = (0..threads)
                .map(|t| contiguous(len, threads, t).len())
                .collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced: {sizes:?}");
        }
        assert_eq!(contiguous(10, 4, 0), 0..3);
        assert_eq!(contiguous(10, 4, 3), 8..10);
    }

    #[test]
    fn effective_workers_clamps_to_items() {
        // The bugfix this pins: `threads > items` used to spawn workers with empty
        // ranges; the clamp keeps every spawned worker busy.
        assert_eq!(effective_workers(8, 3), 3);
        assert_eq!(effective_workers(4, 100), 4);
        assert_eq!(effective_workers(0, 5), 1);
        assert_eq!(effective_workers(8, 0), 1);
        assert_eq!(effective_workers(1, 1), 1);
    }

    #[test]
    fn chunk_plan_is_an_exact_partition() {
        for len in [0, 1, 15, 16, 17, 100, 1024, 3000, 16_384, 100_000] {
            let plan = chunk_plan(len);
            let mut all: Vec<usize> = plan.iter().flat_map(|r| r.clone()).collect();
            all.sort_unstable();
            assert_eq!(all, (0..len).collect::<Vec<_>>(), "len={len}");
            for chunk in &plan {
                assert!(!chunk.is_empty(), "empty chunk in plan for len={len}");
                assert!(
                    chunk.len() <= MAX_CHUNK + 1,
                    "oversized chunk {chunk:?} for len={len}"
                );
            }
        }
        // Small inputs are one chunk; the plan never depends on any thread count.
        assert_eq!(chunk_plan(10), vec![0..10]);
        assert!(chunk_plan(0).is_empty());
    }

    #[test]
    fn scheduler_hands_out_every_item_exactly_once() {
        let items: Vec<usize> = (0..97).collect();
        let scheduler = StealScheduler::new(4, items);
        let counts: Vec<Mutex<Vec<usize>>> = (0..4).map(|_| Mutex::new(Vec::new())).collect();
        let stolen = AtomicUsize::new(0);
        par_workers(4, |t| {
            while let Some((item, was_stolen)) = scheduler.next(t) {
                counts[t].lock().unwrap().push(item);
                if was_stolen {
                    stolen.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        let mut all: Vec<usize> = counts
            .iter()
            .flat_map(|c| c.lock().unwrap().clone())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..97).collect::<Vec<_>>());
    }

    #[test]
    fn scheduler_steals_from_a_loaded_victim() {
        // Worker 0 owns everything; worker 1 must steal to make progress.
        let scheduler = StealScheduler::new(1, vec![1, 2, 3]);
        let scheduler = StealScheduler {
            queues: scheduler
                .queues
                .into_iter()
                .chain(std::iter::once(Mutex::new(VecDeque::new())))
                .collect(),
        };
        let (item, stolen) = scheduler.next(1).expect("steal succeeds");
        assert!(stolen);
        assert_eq!(item, 3, "steals come from the victim's back (coldest work)");
        let (item, stolen) = scheduler.next(0).expect("own front");
        assert!(!stolen);
        assert_eq!(item, 1);
    }

    #[test]
    fn pushed_items_are_scheduled() {
        let scheduler = StealScheduler::new(2, vec![10, 20]);
        scheduler.push(0, 30);
        let mut seen = Vec::new();
        while let Some(next) = scheduler.next(0) {
            seen.push(next);
        }
        // Own deque in push order first, then the lone drain-everything steal.
        assert_eq!(seen, vec![(10, false), (30, false), (20, true)]);
    }

    #[test]
    fn scheduler_survives_a_poisoned_deque() {
        // A worker panicking while holding a deque guard poisons the Mutex; the
        // scheduler must recover the guard (the VecDeque is always valid) so the
        // surviving workers — and the fault-recovery supervision loop — keep draining.
        let scheduler = StealScheduler::new(2, vec![1, 2, 3, 4]);
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = scheduler.queues[0].lock().unwrap();
            panic!("die while holding the deque");
        }));
        assert!(poison.is_err());
        assert!(scheduler.queues[0].is_poisoned());
        // Owner pops, pushes and steals all still work on the poisoned deque.
        assert_eq!(scheduler.next(0), Some((1, false)));
        scheduler.push(0, 5);
        let mut drained = Vec::new();
        for worker in [1, 1, 1, 0] {
            drained.push(scheduler.next(worker).expect("items remain").0);
        }
        drained.sort_unstable();
        assert_eq!(drained, vec![2, 3, 4, 5]);
        assert_eq!(scheduler.next(0), None);
        assert_eq!(scheduler.next(1), None);
    }

    #[test]
    fn thread_override_parses_and_clamps() {
        assert_eq!(thread_override("4"), Some(4));
        assert_eq!(
            thread_override(" 8 "),
            Some(8),
            "surrounding whitespace trimmed"
        );
        assert_eq!(thread_override("512"), Some(MAX_THREAD_OVERRIDE));
        assert_eq!(
            thread_override("513"),
            Some(MAX_THREAD_OVERRIDE),
            "one past the bound clamps down"
        );
        assert_eq!(
            thread_override("1000000"),
            Some(MAX_THREAD_OVERRIDE),
            "a runaway override must not spawn a million threads"
        );
        assert_eq!(thread_override("0"), None, "zero falls back to the probe");
        assert_eq!(thread_override("garbage"), None);
        assert_eq!(thread_override(""), None);
        assert_eq!(thread_override("-3"), None);
    }

    #[test]
    #[should_panic(expected = "parallel worker 1 panicked: boom")]
    fn worker_panics_propagate() {
        let _ = par_workers(2, |t| {
            if t == 1 {
                panic!("boom");
            }
            t
        });
    }
}

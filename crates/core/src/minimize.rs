//! Query minimization (Algorithm `minQ`, Fig. 4; Theorem 6, Lemmas 2–3).
//!
//! Two pattern graphs are equivalent when they return the same result on every data graph.
//! The unique (up to isomorphism) minimum equivalent pattern under dual simulation is the
//! quotient of the pattern by its dual-simulation *equivalence*: nodes `u`, `v` are
//! equivalent iff both `(u, v)` and `(v, u)` belong to the maximum dual-simulation relation
//! of `Q` with itself. Because strong simulation fixes the ball radius to the diameter of the
//! *original* query (Lemma 3), the minimised pattern is bundled with that radius.

use crate::dual::dual_simulation;
use ssim_graph::{NodeId, Pattern};

/// Result of minimising a pattern graph.
#[derive(Debug, Clone)]
pub struct MinimizedPattern {
    /// The minimised, equivalent pattern `Qm`.
    pub pattern: Pattern,
    /// Diameter of the *original* pattern, to be used as ball radius (Lemma 3).
    pub original_diameter: usize,
    /// For every original pattern node, the id of the equivalence-class node in `Qm`.
    pub class_of: Vec<NodeId>,
    /// Size (|V| + |E|) of the original pattern, kept for reporting.
    pub original_size: usize,
}

impl MinimizedPattern {
    /// Returns `true` when minimization actually shrank the pattern.
    pub fn reduced(&self) -> bool {
        self.pattern.size() < self.original_size
    }
}

/// Runs Algorithm `minQ`: computes the minimum pattern equivalent to `pattern` under dual
/// simulation (and, with the bundled radius, under strong simulation).
pub fn minimize_pattern(pattern: &Pattern) -> MinimizedPattern {
    let n = pattern.node_count();
    // Line 1: maximum dual-simulation match relation of Q over itself.
    // Matching a connected pattern against itself always succeeds (the identity relation is a
    // witness), so the unwrap is justified.
    let relation = dual_simulation(pattern, pattern.graph())
        .expect("a pattern always dual-simulates itself via the identity relation");

    // Line 2: equivalence classes — u ≡ v iff (u, v) and (v, u) are both in the relation.
    let mut class_of_raw: Vec<usize> = vec![usize::MAX; n];
    let mut class_reps: Vec<NodeId> = Vec::new();
    for u in pattern.nodes() {
        if class_of_raw[u.index()] != usize::MAX {
            continue;
        }
        let class_id = class_reps.len();
        class_reps.push(u);
        class_of_raw[u.index()] = class_id;
        for v_idx in (u.index() + 1)..n {
            let v = NodeId::from_index(v_idx);
            if class_of_raw[v.index()] == usize::MAX
                && relation.contains(u, v)
                && relation.contains(v, u)
            {
                class_of_raw[v.index()] = class_id;
            }
        }
    }

    // Lines 3-4: build the quotient pattern.
    let mut builder =
        ssim_graph::GraphBuilder::with_capacity(class_reps.len(), pattern.edge_count());
    for &rep in &class_reps {
        builder.add_labeled_node(pattern.label(rep));
    }
    let mut edges: Vec<(u32, u32)> = pattern
        .graph()
        .edges()
        .map(|(u, v)| {
            (
                class_of_raw[u.index()] as u32,
                class_of_raw[v.index()] as u32,
            )
        })
        .collect();
    edges.sort_unstable();
    edges.dedup();
    for (s, t) in edges {
        builder.add_edge(NodeId(s), NodeId(t));
    }
    let minimized = Pattern::new(builder.build())
        .expect("quotient of a connected pattern is connected and non-empty");

    MinimizedPattern {
        pattern: minimized,
        original_diameter: pattern.diameter(),
        class_of: class_of_raw.into_iter().map(NodeId::from_index).collect(),
        original_size: pattern.size(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual::dual_simulation;
    use crate::match_graph::MatchGraph;
    use ssim_graph::{Graph, GraphView, Label};

    /// The Q5 pattern of Fig. 6(a): R -> A, R -> B1, R -> B2, B1 -> C1, B2 -> C2,
    /// C1 -> D1, C2 -> D2, A -> ... — the two R -> B -> C -> D branches are equivalent and
    /// collapse into one.
    fn q5() -> Pattern {
        // labels: R=0, A=1, B=2, C=3, D=4
        Pattern::from_edges(
            vec![
                Label(0),
                Label(1),
                Label(2),
                Label(2),
                Label(3),
                Label(3),
                Label(4),
                Label(4),
            ],
            &[
                (0, 1), // R -> A
                (0, 2), // R -> B1
                (0, 3), // R -> B2
                (2, 4), // B1 -> C1
                (3, 5), // B2 -> C2
                (4, 6), // C1 -> D1
                (5, 7), // C2 -> D2
            ],
        )
        .unwrap()
    }

    #[test]
    fn q5_collapses_duplicate_branches() {
        let pattern = q5();
        let minimized = minimize_pattern(&pattern);
        // R, A, B, C, D — five equivalence classes.
        assert_eq!(minimized.pattern.node_count(), 5);
        assert_eq!(minimized.pattern.edge_count(), 4);
        assert!(minimized.reduced());
        assert_eq!(minimized.original_diameter, pattern.diameter());
        assert_eq!(minimized.original_size, pattern.size());
        // The two B nodes map to the same class, likewise C and D.
        assert_eq!(minimized.class_of[2], minimized.class_of[3]);
        assert_eq!(minimized.class_of[4], minimized.class_of[5]);
        assert_eq!(minimized.class_of[6], minimized.class_of[7]);
        assert_ne!(minimized.class_of[0], minimized.class_of[1]);
    }

    #[test]
    fn already_minimal_pattern_is_unchanged() {
        let pattern = Pattern::from_edges(
            vec![Label(0), Label(1), Label(2)],
            &[(0, 1), (1, 2), (2, 0)],
        )
        .unwrap();
        let minimized = minimize_pattern(&pattern);
        assert_eq!(minimized.pattern.node_count(), 3);
        assert_eq!(minimized.pattern.edge_count(), 3);
        assert!(!minimized.reduced());
    }

    #[test]
    fn same_label_nodes_with_different_context_are_not_merged() {
        // A -> B and B -> A: the two B-labelled nodes would only merge if they were
        // dual-simulation equivalent; give them asymmetric children so they are not.
        // Pattern: A -> B1, B1 -> C, A -> B2  (B1 has a C child, B2 does not).
        let pattern = Pattern::from_edges(
            vec![Label(0), Label(1), Label(1), Label(2)],
            &[(0, 1), (0, 2), (1, 3)],
        )
        .unwrap();
        let minimized = minimize_pattern(&pattern);
        assert_eq!(
            minimized.pattern.node_count(),
            4,
            "B1 and B2 must stay distinct"
        );
    }

    #[test]
    fn minimized_pattern_finds_the_same_match_graph() {
        // Lemma 2(1): Q and Qm produce the same match graph on any data graph.
        let pattern = q5();
        let minimized = minimize_pattern(&pattern);
        let data = Graph::from_edges(
            vec![
                Label(0), // R
                Label(1), // A
                Label(2), // B
                Label(3), // C
                Label(4), // D
                Label(2), // another B with no C child (should be filtered)
            ],
            &[(0, 1), (0, 2), (2, 3), (3, 4), (0, 5)],
        )
        .unwrap();
        let view = GraphView::full(&data);
        let original_relation = dual_simulation(&pattern, &data).unwrap();
        let minimized_relation = dual_simulation(&minimized.pattern, &data).unwrap();
        let mg_original = MatchGraph::build(&pattern, &view, &original_relation);
        let mg_minimized = MatchGraph::build(&minimized.pattern, &view, &minimized_relation);
        assert_eq!(mg_original, mg_minimized);
    }

    #[test]
    fn cycle_of_equivalent_nodes_collapses_to_self_loop() {
        // A directed cycle of identically labelled nodes is dual-simulation equivalent
        // everywhere and collapses to a single node with a self-loop.
        let pattern = Pattern::from_edges(vec![Label(7); 3], &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let minimized = minimize_pattern(&pattern);
        assert_eq!(minimized.pattern.node_count(), 1);
        assert_eq!(minimized.pattern.edge_count(), 1);
        assert!(minimized.pattern.graph().has_edge(NodeId(0), NodeId(0)));
    }

    #[test]
    fn single_node_pattern_is_a_fixpoint() {
        let pattern = Pattern::from_edges(vec![Label(3)], &[]).unwrap();
        let minimized = minimize_pattern(&pattern);
        assert_eq!(minimized.pattern.node_count(), 1);
        assert!(!minimized.reduced());
        assert_eq!(minimized.class_of, vec![NodeId(0)]);
    }

    #[test]
    fn minimization_is_idempotent() {
        let pattern = q5();
        let once = minimize_pattern(&pattern);
        let twice = minimize_pattern(&once.pattern);
        assert_eq!(once.pattern.node_count(), twice.pattern.node_count());
        assert_eq!(once.pattern.edge_count(), twice.pattern.edge_count());
        assert!(!twice.reduced());
    }
}

//! Topology-preservation criteria (Section 3.1, Table 2).
//!
//! The paper evaluates matching notions against six criteria: preservation of children,
//! parents, connectivity, cycles (directed and undirected), locality, and boundedness of the
//! match results. This module provides checkers for each criterion so that the test-suite
//! and the experiment harness can verify the claims of Table 2 on concrete match results.

use crate::match_graph::MatchGraph;
use crate::relation::MatchRelation;
use crate::repetition::RepetitionSemantics;
use crate::strong::MatchOutput;
use ssim_graph::cycles::{
    has_directed_cycle, has_label_distinct_undirected_cycle, has_undirected_cycle,
};
use ssim_graph::metrics::induced_diameter;
use ssim_graph::{Graph, GraphView, NodeId, Pattern};

/// Criterion (1): every child of a matched pattern node is matched by a child of the data
/// node. This holds for every notion from plain simulation upward.
pub fn children_preserved(pattern: &Pattern, data: &Graph, relation: &MatchRelation) -> bool {
    let view = GraphView::full(data);
    for (u, u_child) in pattern.graph().edges() {
        for v in relation.candidates(u).iter().map(NodeId::from_index) {
            if !view.out_neighbors(v).any(|w| relation.contains(u_child, w)) {
                return false;
            }
        }
    }
    true
}

/// Criterion (2): every parent of a matched pattern node is matched by a parent of the data
/// node. Plain simulation violates this; dual and strong simulation satisfy it.
pub fn parents_preserved(pattern: &Pattern, data: &Graph, relation: &MatchRelation) -> bool {
    let view = GraphView::full(data);
    for (u_parent, u) in pattern.graph().edges() {
        for v in relation.candidates(u).iter().map(NodeId::from_index) {
            if !view.in_neighbors(v).any(|w| relation.contains(u_parent, w)) {
                return false;
            }
        }
    }
    true
}

/// Criterion (3) as realised by strong simulation: each perfect subgraph is (undirectedly)
/// connected.
pub fn connectivity_preserved(data: &Graph, output: &MatchOutput) -> bool {
    output.subgraphs.iter().all(|s| {
        if s.nodes.len() <= 1 {
            return true;
        }
        let (sub, _) = data.subgraph_with_edges(&s.nodes, &s.edges);
        ssim_graph::components::is_connected(&sub)
    })
}

/// Criterion (4a): if the pattern has a directed cycle, the match graph has one
/// (Proposition 2 — holds already for plain simulation).
pub fn directed_cycles_preserved(
    pattern: &Pattern,
    data: &Graph,
    relation: &MatchRelation,
) -> bool {
    if !has_directed_cycle(pattern.graph()) {
        return true;
    }
    let view = GraphView::full(data);
    let mg = MatchGraph::build(pattern, &view, relation);
    let (sub, _) = data.subgraph_with_edges(&mg.nodes, &mg.edges);
    has_directed_cycle(&sub)
}

/// Whether the undirected-cycle guarantee (Theorem 3) applies to this pattern — the
/// shapes for which *any* total valid dual-simulation witness provably forces an
/// undirected cycle into its match graph:
///
/// * the pattern has a **directed** cycle (self-loops and anti-parallel pairs
///   included): Proposition 2's walk already forces a directed — hence undirected —
///   cycle, for plain simulation upward; or
/// * the pattern has a simple undirected cycle whose nodes carry **pairwise-distinct
///   labels**: the cycle-chasing walk steps through pairwise-disjoint candidate sets,
///   so it can neither fold two cycle positions onto one data node nor immediately
///   re-traverse the edge it arrived by, and a closed walk without immediate edge
///   reversal always contains a simple undirected cycle.
///
/// Under [`RepetitionSemantics::Free`] (and [`RepetitionSemantics::Equal`], which folds
/// equal-labelled nodes onto one data node *by design*), a pattern whose only undirected
/// cycles are undirected-only *and* repeat a label genuinely loses the guarantee — the
/// walk folds. The minimal shape: a diamond `a → b, a → c, b → d, c → d` with
/// `l(b) = l(c)` is dual-simulated by the path `x → y → z` via `a↦x, b↦y, c↦y, d↦z`
/// (that relation is even the *maximum* one on the path), and a path has no undirected
/// cycle. The nightly generator found exactly this fold at case 301;
/// `tests/invariants_proptest.rs` pins it as a named regression.
///
/// [`RepetitionSemantics::Distinct`] closes exactly that hole: every surviving pair has
/// a full homomorphism witness that is injective on each equal-label class, so any two
/// distinct nodes of a simple undirected pattern cycle take distinct images (same label
/// ⇒ same class ⇒ forced distinct; different labels ⇒ distinct anyway). The witness
/// image is then an undirected cycle of match-graph edges, connected to the witnessed
/// pair — so under `Distinct` *any* undirected pattern cycle is pinned and the guarantee
/// extends to every cyclic pattern. This reading applies to relations produced by a
/// `Distinct` run whose repetition closure actually ran (no budget bail —
/// `MatchStats::repetition_bailed_balls == 0`).
pub fn undirected_cycle_guarantee_applies(
    pattern: &Pattern,
    semantics: RepetitionSemantics,
) -> bool {
    has_directed_cycle(pattern.graph())
        || match semantics {
            RepetitionSemantics::Distinct => has_undirected_cycle(pattern.graph()),
            RepetitionSemantics::Free | RepetitionSemantics::Equal => {
                has_label_distinct_undirected_cycle(pattern.graph())
            }
        }
}

/// Criterion (4b): if the pattern has an undirected cycle that the matching semantics
/// can actually pin — see [`undirected_cycle_guarantee_applies`] — the match graph has
/// an undirected cycle (Theorem 3). Patterns whose only undirected cycles fold under
/// the given semantics satisfy the criterion trivially: no guarantee exists to check.
/// `relation` must come from a run under `semantics` (with no repetition-budget bail)
/// for a non-`Free` reading to be sound.
pub fn undirected_cycles_preserved(
    pattern: &Pattern,
    data: &Graph,
    relation: &MatchRelation,
    semantics: RepetitionSemantics,
) -> bool {
    if !undirected_cycle_guarantee_applies(pattern, semantics) {
        return true;
    }
    let view = GraphView::full(data);
    let mg = MatchGraph::build(pattern, &view, relation);
    let (sub, _) = data.subgraph_with_edges(&mg.nodes, &mg.edges);
    has_undirected_cycle(&sub)
}

/// Criterion (5): every perfect subgraph has diameter at most `2·dQ` (Proposition 3).
pub fn locality_preserved(pattern: &Pattern, data: &Graph, output: &MatchOutput) -> bool {
    output
        .subgraphs
        .iter()
        .all(|s| induced_diameter(data, &s.nodes) <= 2 * pattern.diameter())
}

/// Criterion (6): the number of perfect subgraphs is bounded by the number of data nodes
/// (Proposition 4).
pub fn matches_bounded(data: &Graph, output: &MatchOutput) -> bool {
    output.subgraphs.len() <= data.node_count()
}

/// Aggregated Table 2-style report for one strong-simulation result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyReport {
    /// Criterion (1): children preserved by each perfect subgraph's relation.
    pub children: bool,
    /// Criterion (2): parents preserved by each perfect subgraph's relation.
    pub parents: bool,
    /// Criterion (3): each perfect subgraph is connected.
    pub connectivity: bool,
    /// Criterion (4a): directed cycles of the pattern appear in each perfect subgraph.
    pub directed_cycles: bool,
    /// Criterion (4b): undirected cycles of the pattern appear in each perfect subgraph.
    pub undirected_cycles: bool,
    /// Criterion (5): diameters bounded by `2·dQ`.
    pub locality: bool,
    /// Criterion (6): at most `|V|` perfect subgraphs.
    pub bounded_matches: bool,
}

impl TopologyReport {
    /// Evaluates all criteria for a strong-simulation output under the default
    /// [`RepetitionSemantics::Free`] reading of the undirected-cycle guarantee.
    pub fn evaluate(pattern: &Pattern, data: &Graph, output: &MatchOutput) -> Self {
        Self::evaluate_under(pattern, data, output, RepetitionSemantics::Free)
    }

    /// Evaluates all criteria for an output produced under the given repetition
    /// semantics — under [`RepetitionSemantics::Distinct`] the undirected-cycle
    /// criterion is checked for *every* cyclic pattern, not only label-distinct ones.
    pub fn evaluate_under(
        pattern: &Pattern,
        data: &Graph,
        output: &MatchOutput,
        semantics: RepetitionSemantics,
    ) -> Self {
        // Reconstruct a relation per perfect subgraph and check the per-pair criteria.
        let mut children = true;
        let mut parents = true;
        let mut directed = true;
        let mut undirected = true;
        for s in &output.subgraphs {
            let mut relation = MatchRelation::empty(pattern.node_count(), data.node_count());
            for &(u, v) in &s.relation {
                relation.insert(u, v);
            }
            children &= children_preserved(pattern, data, &relation);
            parents &= parents_preserved(pattern, data, &relation);
            directed &= directed_cycles_preserved(pattern, data, &relation);
            undirected &= undirected_cycles_preserved(pattern, data, &relation, semantics);
        }
        TopologyReport {
            children,
            parents,
            connectivity: connectivity_preserved(data, output),
            directed_cycles: directed,
            undirected_cycles: undirected,
            locality: locality_preserved(pattern, data, output),
            bounded_matches: matches_bounded(data, output),
        }
    }

    /// Returns `true` when every criterion holds — the strong-simulation column of Table 2.
    pub fn all_preserved(&self) -> bool {
        self.children
            && self.parents
            && self.connectivity
            && self.directed_cycles
            && self.undirected_cycles
            && self.locality
            && self.bounded_matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual::dual_simulation;
    use crate::simulation::graph_simulation;
    use crate::strong::{strong_simulation, MatchConfig};
    use ssim_graph::Label;

    /// Pattern with both a directed 2-cycle and an undirected triangle (Q1 of Fig. 1).
    fn q1() -> Pattern {
        Pattern::from_edges(
            vec![Label(0), Label(1), Label(2), Label(3), Label(4)],
            &[(0, 1), (0, 2), (1, 2), (3, 2), (3, 4), (4, 3)],
        )
        .unwrap()
    }

    /// Simulation-only data (Example 1): disconnected graph where simulation matches but
    /// parents are not preserved.
    fn g1_like() -> Graph {
        // HR1 -> Bio1 ; SE1 -> Bio2 ; DM1 -> Bio3, DM1 -> AI1, AI1 -> DM1 ;
        // HR2 -> SE2 -> Bio4 <- HR2, DM2 -> Bio4, DM2 <-> AI2.
        Graph::from_edges(
            vec![
                Label(0), // 0 HR1
                Label(2), // 1 Bio1
                Label(1), // 2 SE1
                Label(2), // 3 Bio2
                Label(3), // 4 DM1
                Label(2), // 5 Bio3
                Label(4), // 6 AI1
                Label(0), // 7 HR2
                Label(1), // 8 SE2
                Label(2), // 9 Bio4
                Label(3), // 10 DM2
                Label(4), // 11 AI2
            ],
            &[
                (0, 1),
                (2, 3),
                (4, 5),
                (4, 6),
                (6, 4),
                (7, 8),
                (7, 9),
                (8, 9),
                (10, 9),
                (10, 11),
                (11, 10),
            ],
        )
        .unwrap()
    }

    #[test]
    fn simulation_preserves_children_but_not_parents() {
        let pattern = q1();
        let data = g1_like();
        let sim = graph_simulation(&pattern, &data).unwrap();
        assert!(children_preserved(&pattern, &data, &sim));
        assert!(
            !parents_preserved(&pattern, &data, &sim),
            "Example 1: Bio1 has no SE parent"
        );
    }

    #[test]
    fn dual_simulation_preserves_parents() {
        let pattern = q1();
        let data = g1_like();
        let dual = dual_simulation(&pattern, &data).unwrap();
        assert!(children_preserved(&pattern, &data, &dual));
        assert!(parents_preserved(&pattern, &data, &dual));
        assert!(directed_cycles_preserved(&pattern, &data, &dual));
        assert!(undirected_cycles_preserved(
            &pattern,
            &data,
            &dual,
            RepetitionSemantics::Free
        ));
    }

    #[test]
    fn strong_simulation_satisfies_every_criterion() {
        let pattern = q1();
        let data = g1_like();
        let output = strong_simulation(&pattern, &data, &MatchConfig::basic());
        assert!(output.is_match());
        let report = TopologyReport::evaluate(&pattern, &data, &output);
        assert!(report.all_preserved(), "{report:?}");
    }

    #[test]
    fn report_on_empty_output_is_trivially_true() {
        let pattern = q1();
        let data = Graph::from_edges(vec![Label(9)], &[]).unwrap();
        let output = strong_simulation(&pattern, &data, &MatchConfig::basic());
        assert!(!output.is_match());
        let report = TopologyReport::evaluate(&pattern, &data, &output);
        assert!(report.all_preserved());
    }

    #[test]
    fn cycle_criteria_trivially_hold_for_acyclic_patterns() {
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let data = Graph::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let relation = dual_simulation(&pattern, &data).unwrap();
        assert!(directed_cycles_preserved(&pattern, &data, &relation));
        assert!(undirected_cycles_preserved(
            &pattern,
            &data,
            &relation,
            RepetitionSemantics::Free
        ));
    }

    #[test]
    fn repeated_label_cycle_folds_onto_a_path() {
        // The minimal Theorem 3 boundary: diamond a -> b, a -> c, b -> d, c -> d with
        // l(b) = l(c). Its only undirected cycle repeats a label, so the cycle-chasing
        // walk folds b and c onto one data node and the guarantee does not apply.
        let pattern = Pattern::from_edges(
            vec![Label(0), Label(1), Label(1), Label(2)],
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        .unwrap();
        assert!(ssim_graph::cycles::has_undirected_cycle(pattern.graph()));
        assert!(!undirected_cycle_guarantee_applies(
            &pattern,
            RepetitionSemantics::Free
        ));
        // Equal folds the class onto one node by design — same reading as Free —
        // while Distinct pins the cycle without relabelling anything.
        assert!(!undirected_cycle_guarantee_applies(
            &pattern,
            RepetitionSemantics::Equal
        ));
        assert!(undirected_cycle_guarantee_applies(
            &pattern,
            RepetitionSemantics::Distinct
        ));
        // Path data x -> y -> z: the maximum dual-simulation relation folds the
        // diamond onto it, and the match graph (the path itself) has no undirected
        // cycle — the criterion must hold trivially rather than report a violation.
        let path =
            Graph::from_edges(vec![Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]).unwrap();
        let dual = dual_simulation(&pattern, &path).expect("the fold is a valid dual sim");
        assert_eq!(
            dual.to_sorted_pairs(),
            vec![(0, 0), (1, 1), (2, 1), (3, 2)],
            "the maximum relation maps both same-labelled pattern nodes to y"
        );
        assert!(undirected_cycles_preserved(
            &pattern,
            &path,
            &dual,
            RepetitionSemantics::Free
        ));
        // Un-folding the labels restores the guarantee — and path data then (rightly)
        // no longer dual-simulates the pattern at all.
        let unfolded = Pattern::from_edges(
            vec![Label(0), Label(1), Label(3), Label(2)],
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        .unwrap();
        assert!(undirected_cycle_guarantee_applies(
            &unfolded,
            RepetitionSemantics::Free
        ));
    }

    #[test]
    fn guarantee_applies_to_directed_and_label_distinct_cycles() {
        // Anti-parallel pair (directed cycle) with a repeated label: guaranteed under
        // every semantics — the directed clause does not depend on labels.
        let anti = Pattern::from_edges(vec![Label(0), Label(0)], &[(0, 1), (1, 0)]).unwrap();
        for semantics in [
            RepetitionSemantics::Free,
            RepetitionSemantics::Distinct,
            RepetitionSemantics::Equal,
        ] {
            assert!(undirected_cycle_guarantee_applies(&anti, semantics));
        }
        // Self-loop: guaranteed.
        let looped = Pattern::from_edges(vec![Label(0)], &[(0, 0)]).unwrap();
        assert!(undirected_cycle_guarantee_applies(
            &looped,
            RepetitionSemantics::Free
        ));
        // Label-distinct undirected triangle without any directed cycle: guaranteed.
        let tri = Pattern::from_edges(
            vec![Label(0), Label(1), Label(2)],
            &[(0, 1), (0, 2), (1, 2)],
        )
        .unwrap();
        assert!(undirected_cycle_guarantee_applies(
            &tri,
            RepetitionSemantics::Free
        ));
        // Acyclic pattern: nothing to guarantee, under any semantics.
        let chain = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        for semantics in [
            RepetitionSemantics::Free,
            RepetitionSemantics::Distinct,
            RepetitionSemantics::Equal,
        ] {
            assert!(!undirected_cycle_guarantee_applies(&chain, semantics));
        }
    }

    #[test]
    fn locality_and_boundedness() {
        let pattern = q1();
        let data = g1_like();
        let output = strong_simulation(&pattern, &data, &MatchConfig::basic());
        assert!(locality_preserved(&pattern, &data, &output));
        assert!(matches_bounded(&data, &output));
        assert!(connectivity_preserved(&data, &output));
    }
}

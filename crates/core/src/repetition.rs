//! Label-repetition matching semantics — the sixth oracle axis.
//!
//! The paper's strong simulation deliberately relaxes injectivity: two distinct pattern
//! nodes with equal labels may match the *same* data node, which is exactly why
//! repeated-label undirected cycles can fold onto paths (the pinned case-301 boundary of
//! Theorem 3). Following Mahfoud's label-repetition constraints, this module makes that
//! relaxation a tunable ([`RepetitionSemantics`]):
//!
//! * [`RepetitionSemantics::Free`] — the paper's behaviour (and the seed reference): no
//!   constraint between equal-labelled pattern nodes. The closure below is a no-op.
//! * [`RepetitionSemantics::Distinct`] — equal-labelled pattern nodes must be realised by
//!   pairwise *distinct* data nodes.
//! * [`RepetitionSemantics::Equal`] — equal-labelled pattern nodes must collapse onto one
//!   *shared* data node.
//!
//! # Semantics: witness-closed relations
//!
//! Enforcement is *witness-based*, applied per ball after the dual-simulation refinement
//! converges. A pair `(u, v)` of the converged relation `R` survives iff there exists a
//! full homomorphism `σ : V(Q) → ball` with `σ(u) = v`, `σ(u') ∈ R(u')` for every pattern
//! node, every pattern edge mapped to a data edge of the ball, and `σ` injective on each
//! equal-label class (`Distinct`) or constant on each class (`Equal`). Removing
//! witness-unsupported pairs can invalidate the dual-simulation support of neighbouring
//! pairs, so the closure alternates the witness filter with the dual-refinement cascade
//! until a fixpoint. Both steps are monotone and deflationary, so the greatest fixpoint is
//! unique — which is what makes the axis's output independent of engine shape, id space
//! and enforcement mode.
//!
//! When the pattern has **no repeated labels** every class is a singleton and both
//! constraints hold vacuously, so the closure is skipped outright: `Distinct` and `Equal`
//! are then bit-identical to `Free` at zero cost. This gating also keeps the
//! undirected-cycle guarantee complete (see [`crate::topology`]): a label-distinct cycle
//! falls under the classic clause, while any cycle on a repeated-label pattern is covered
//! by the witness argument — a class-injective label-preserving homomorphism maps a simple
//! undirected cycle to pairwise-distinct data nodes with covering data edges.
//!
//! # Budget and bail contract
//!
//! The witness search is exponential in the worst case. Before enforcing, the closure
//! computes the saturating product of the candidate-set sizes `∏ |R(u)|` over **all**
//! pattern nodes — an upper bound on the assignment tree — and when it exceeds
//! [`REPETITION_BUDGET`] the ball *bails*: enforcement is skipped (the ball behaves as
//! under `Free`) and [`RepetitionOutcome::bailed`] is reported, surfaced as
//! `MatchStats::repetition_bailed_balls`. The precondition reads only candidate-set sizes
//! of the converged relation — which every engine shape computes bit-identically — so the
//! bail decision, and hence the output, is identical across modes, substrates and
//! warm/scratch seeding. Callers needing guaranteed enforcement must check the counter.
//!
//! # Two implementations, one fixpoint
//!
//! As with every prior axis the semantics is implemented twice ([`RepetitionMode`]):
//!
//! * [`RepetitionMode::Integrated`] — the engine path: one witness search per *unmarked*
//!   pair (a found witness marks all `(u', σ(u'))` pairs it realises as supported, so
//!   they are never searched again), removals cascaded through the worklist suspect
//!   queue ([`crate::dual_filter`]'s removal-propagation core).
//! * [`RepetitionMode::NaiveOracle`] — the differential oracle: an independent witness
//!   search per pair and a naive while-changed re-scan for the cascade.
//!
//! A marked pair provably has a witness and an unmarked pair is decided by its own
//! search, so both modes remove the same pair set in every closure iteration and arrive
//! at the same fixpoint — `tests/repetition_equivalence.rs` pins the outputs (and the
//! repetition counters) bit-identical across the sampled six-axis matrix.

use crate::dual_filter::{pair_supported, refine_suspects};
use crate::relation::MatchRelation;
use ssim_graph::{AdjView, NodeId, Pattern};

/// How equal-labelled pattern nodes may be realised by data nodes. The sixth oracle axis
/// on `MatchConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepetitionSemantics {
    /// No constraint — the paper's strong simulation (and the seed reference).
    #[default]
    Free,
    /// Distinct pattern nodes with equal labels must match pairwise distinct data nodes.
    Distinct,
    /// Distinct pattern nodes with equal labels must match one shared data node.
    Equal,
}

/// Which implementation enforces a non-[`Free`](RepetitionSemantics::Free) semantics.
/// Both arrive at the same fixpoint; the oracle exists to differentially pin the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepetitionMode {
    /// Marked witness search + worklist suspect cascade (the engine path).
    #[default]
    Integrated,
    /// Independent per-pair witness search + naive while-changed cascade (the oracle).
    NaiveOracle,
}

/// Upper bound on the witness-search assignment tree (`∏ |R(u)|` over all pattern nodes)
/// above which a ball bails out of enforcement. See the module docs for the contract.
pub const REPETITION_BUDGET: u64 = 1 << 18;

/// What the per-ball repetition closure did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepetitionOutcome {
    /// The closure removed at least one pair (the relation differs from the dual fixpoint).
    pub changed: bool,
    /// The budget precondition failed: enforcement was skipped for this ball.
    pub bailed: bool,
    /// Total pairs removed by the closure (witness filter plus cascade).
    pub removed_pairs: usize,
}

/// Maps each pattern node to its repeated-label class, or `None` for nodes whose label is
/// unique. Returns `None` when every class is a singleton — the gating that makes
/// `Distinct`/`Equal` free on label-distinct patterns.
pub(crate) fn repeated_label_class_map(pattern: &Pattern) -> Option<Vec<Option<u32>>> {
    let n = pattern.node_count();
    let mut class_of: Vec<Option<u32>> = vec![None; n];
    let mut next = 0u32;
    for i in 0..n {
        if class_of[i].is_some() {
            continue;
        }
        let label = pattern.label(NodeId::from_index(i));
        let mut members = vec![i];
        for (j, slot) in class_of.iter().enumerate().skip(i + 1) {
            if slot.is_none() && pattern.label(NodeId::from_index(j)) == label {
                members.push(j);
            }
        }
        if members.len() >= 2 {
            for &m in &members {
                class_of[m] = Some(next);
            }
            next += 1;
        }
    }
    if next == 0 {
        None
    } else {
        Some(class_of)
    }
}

/// `true` when the pattern has at least two nodes sharing a label — the only patterns on
/// which `Distinct`/`Equal` can differ from `Free`.
pub fn has_repeated_labels(pattern: &Pattern) -> bool {
    repeated_label_class_map(pattern).is_some()
}

/// Backtracking search for a repetition-consistent witness homomorphism over the
/// converged relation. Node order is ascending pattern index, candidates are tried in
/// ascending id order — deterministic, though only *existence* feeds the output.
struct WitnessSearch<'a, V: AdjView> {
    pattern: &'a Pattern,
    view: &'a V,
    relation: &'a MatchRelation,
    class_of: &'a [Option<u32>],
    semantics: RepetitionSemantics,
    assignment: Vec<Option<NodeId>>,
}

impl<'a, V: AdjView> WitnessSearch<'a, V> {
    fn new(
        pattern: &'a Pattern,
        view: &'a V,
        relation: &'a MatchRelation,
        class_of: &'a [Option<u32>],
        semantics: RepetitionSemantics,
    ) -> Self {
        WitnessSearch {
            pattern,
            view,
            relation,
            class_of,
            semantics,
            assignment: vec![None; pattern.node_count()],
        }
    }

    /// `true` when a witness with `σ(root_u) = root_v` exists. On success `assignment`
    /// holds the full witness (used by the integrated mode's support marking).
    fn witness_for(&mut self, root_u: NodeId, root_v: NodeId) -> bool {
        self.assignment.fill(None);
        if !self.admissible(root_u, root_v) {
            return false;
        }
        self.assignment[root_u.index()] = Some(root_v);
        self.assign_from(0)
    }

    /// Assigns pattern nodes `next..` (skipping the preset root) left to right.
    fn assign_from(&mut self, next: usize) -> bool {
        let n = self.pattern.node_count();
        let mut k = next;
        while k < n && self.assignment[k].is_some() {
            k += 1;
        }
        if k == n {
            return true;
        }
        let u = NodeId::from_index(k);
        // Candidates ascending; the collect frees `self` for the recursive borrow.
        let candidates: Vec<usize> = self.relation.candidates(u).iter().collect();
        for vi in candidates {
            let v = NodeId::from_index(vi);
            if self.admissible(u, v) {
                self.assignment[k] = Some(v);
                if self.assign_from(k + 1) {
                    return true;
                }
                self.assignment[k] = None;
            }
        }
        false
    }

    /// Checks `σ(u) = v` against the partial assignment: the class constraint against
    /// assigned classmates and every pattern edge between `u` and an assigned node
    /// (self-loops included) against the ball's data edges.
    fn admissible(&self, u: NodeId, v: NodeId) -> bool {
        if let Some(class) = self.class_of[u.index()] {
            for (j, assigned) in self.assignment.iter().enumerate() {
                if j == u.index() {
                    continue;
                }
                if let Some(w) = assigned {
                    if self.class_of[j] == Some(class) {
                        let conflict = match self.semantics {
                            RepetitionSemantics::Distinct => *w == v,
                            RepetitionSemantics::Equal => *w != v,
                            RepetitionSemantics::Free => false,
                        };
                        if conflict {
                            return false;
                        }
                    }
                }
            }
        }
        let q = self.pattern.graph();
        for j in q.out_neighbors(u) {
            let target = if j == u {
                Some(v) // self-loop: σ(u) → σ(u)
            } else {
                self.assignment[j.index()]
            };
            if let Some(w) = target {
                if !self.view.out_neighbors(v).any(|x| x == w) {
                    return false;
                }
            }
        }
        for j in q.in_neighbors(u) {
            if j == u {
                continue; // self-loop already checked above
            }
            if let Some(w) = self.assignment[j.index()] {
                if !self.view.out_neighbors(w).any(|x| x == v) {
                    return false;
                }
            }
        }
        true
    }
}

/// Applies the repetition closure to a ball's converged dual-simulation relation in
/// place: alternates the witness filter with the dual-refinement cascade until the
/// fixpoint (or until some pattern node empties — callers treat a non-total relation as
/// "no match in this ball", exactly as after plain refinement).
///
/// No-op under [`RepetitionSemantics::Free`], on label-distinct patterns, and when the
/// budget precondition fails (see [`REPETITION_BUDGET`]). `relation` must be a converged
/// (maximum) dual-simulation relation over `view` — the closure's bit-identity across
/// engine shapes relies on every shape handing in the same fixpoint.
pub fn enforce_repetition<V: AdjView>(
    pattern: &Pattern,
    view: &V,
    relation: &mut MatchRelation,
    semantics: RepetitionSemantics,
    mode: RepetitionMode,
) -> RepetitionOutcome {
    let mut outcome = RepetitionOutcome::default();
    if semantics == RepetitionSemantics::Free {
        return outcome;
    }
    let Some(class_of) = repeated_label_class_map(pattern) else {
        return outcome;
    };
    // Budget precondition: a function of candidate-set sizes alone, so the decision is
    // identical whichever mode, substrate or seeding produced the fixpoint.
    let mut tree_bound = 1u64;
    for u in pattern.nodes() {
        tree_bound = tree_bound.saturating_mul(relation.candidates(u).len().max(1) as u64);
    }
    if tree_bound > REPETITION_BUDGET {
        outcome.bailed = true;
        return outcome;
    }
    loop {
        let unsupported = match mode {
            RepetitionMode::Integrated => {
                unsupported_marked(pattern, view, relation, &class_of, semantics)
            }
            RepetitionMode::NaiveOracle => {
                unsupported_independent(pattern, view, relation, &class_of, semantics)
            }
        };
        if unsupported.is_empty() {
            break;
        }
        outcome.changed = true;
        for &(u, v) in &unsupported {
            if relation.remove(u, v) {
                outcome.removed_pairs += 1;
            }
        }
        if !relation.is_total() {
            break;
        }
        // Cascade: removing a witness-unsupported pair can strip the dual-simulation
        // support of its neighbours, and the witness filter assumes a converged input.
        match mode {
            RepetitionMode::Integrated => {
                let suspects = cascade_suspects(pattern, view, relation, &unsupported);
                let taken = std::mem::replace(relation, MatchRelation::empty(0, 0));
                *relation = refine_suspects(
                    pattern,
                    view,
                    taken,
                    suspects,
                    Some(&mut outcome.removed_pairs),
                );
            }
            RepetitionMode::NaiveOracle => {
                naive_cascade(pattern, view, relation, &mut outcome.removed_pairs);
            }
        }
        if !relation.is_total() {
            break;
        }
    }
    outcome
}

/// Engine-path witness filter: pairs realised by an earlier witness are marked supported
/// and never searched. Returns the unsupported pairs in deterministic order.
fn unsupported_marked<V: AdjView>(
    pattern: &Pattern,
    view: &V,
    relation: &MatchRelation,
    class_of: &[Option<u32>],
    semantics: RepetitionSemantics,
) -> Vec<(NodeId, NodeId)> {
    let mut marks = MatchRelation::empty(pattern.node_count(), relation.data_node_capacity());
    let pairs: Vec<(NodeId, NodeId)> = relation.pairs().collect();
    let mut search = WitnessSearch::new(pattern, view, relation, class_of, semantics);
    let mut unsupported = Vec::new();
    for (u, v) in pairs {
        if marks.contains(u, v) {
            continue;
        }
        if search.witness_for(u, v) {
            for (j, assigned) in search.assignment.iter().enumerate() {
                let w = assigned.expect("a successful witness assigns every pattern node");
                marks.insert(NodeId::from_index(j), w);
            }
        } else {
            unsupported.push((u, v));
        }
    }
    unsupported
}

/// Oracle witness filter: one independent search per pair, no marking. Removes the same
/// pair set as [`unsupported_marked`] — a mark is only ever placed on a witnessed pair.
fn unsupported_independent<V: AdjView>(
    pattern: &Pattern,
    view: &V,
    relation: &MatchRelation,
    class_of: &[Option<u32>],
    semantics: RepetitionSemantics,
) -> Vec<(NodeId, NodeId)> {
    let pairs: Vec<(NodeId, NodeId)> = relation.pairs().collect();
    let mut search = WitnessSearch::new(pattern, view, relation, class_of, semantics);
    pairs
        .into_iter()
        .filter(|&(u, v)| !search.witness_for(u, v))
        .collect()
}

/// The pairs whose dual-simulation support one of `removed`'s pairs may have carried —
/// the seed set for the worklist cascade (mirrors the propagation step of
/// [`refine_suspects`], which re-verifies each suspect before removing it).
fn cascade_suspects<V: AdjView>(
    pattern: &Pattern,
    view: &V,
    relation: &MatchRelation,
    removed: &[(NodeId, NodeId)],
) -> Vec<(NodeId, NodeId)> {
    let q = pattern.graph();
    let mut suspects = Vec::new();
    for &(u, v) in removed {
        for u2 in q.in_neighbors(u) {
            for v2 in view.in_neighbors(v) {
                if relation.contains(u2, v2) {
                    suspects.push((u2, v2));
                }
            }
        }
        for u1 in q.out_neighbors(u) {
            for v1 in view.out_neighbors(v) {
                if relation.contains(u1, v1) {
                    suspects.push((u1, v1));
                }
            }
        }
    }
    suspects
}

/// Naive cascade: re-scan every pair for dual-simulation support until nothing changes.
/// Jacobi-style simultaneous removal — same greatest fixpoint as the worklist cascade.
fn naive_cascade<V: AdjView>(
    pattern: &Pattern,
    view: &V,
    relation: &mut MatchRelation,
    removed_pairs: &mut usize,
) {
    loop {
        let doomed: Vec<(NodeId, NodeId)> = relation
            .pairs()
            .filter(|&(u, v)| !pair_supported(pattern, view, relation, u, v))
            .collect();
        if doomed.is_empty() {
            break;
        }
        for (u, v) in doomed {
            if relation.remove(u, v) {
                *removed_pairs += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual::dual_simulation_view;
    use ssim_graph::{Ball, Graph, Label};

    /// The case-301 minimal shape: an equal-labelled diamond pattern over a 3-node path.
    /// Under `Free` the diamond folds onto the path; under `Distinct` the two Label(1)
    /// pattern nodes cannot share the single Label(1) data node, so the match dies.
    fn diamond_on_path() -> (Pattern, Graph) {
        let pattern = Pattern::from_edges(
            vec![Label(0), Label(1), Label(1), Label(2)],
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        .unwrap();
        let path =
            Graph::from_edges(vec![Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]).unwrap();
        (pattern, path)
    }

    /// A genuine diamond in the data: both semantics should accept, `Distinct` keeping
    /// both Label(1) branches on distinct data nodes.
    fn diamond_on_diamond() -> (Pattern, Graph) {
        let (pattern, _) = diamond_on_path();
        let data = Graph::from_edges(
            vec![Label(0), Label(1), Label(1), Label(2)],
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        .unwrap();
        (pattern, data)
    }

    fn converged(pattern: &Pattern, data: &Graph) -> MatchRelation {
        let ball = Ball::new(data, NodeId(0), data.node_count());
        let view = ball.view(data);
        dual_simulation_view(pattern, &view).expect("fixture dual-simulates")
    }

    fn enforce(
        pattern: &Pattern,
        data: &Graph,
        semantics: RepetitionSemantics,
        mode: RepetitionMode,
    ) -> (MatchRelation, RepetitionOutcome) {
        let ball = Ball::new(data, NodeId(0), data.node_count());
        let view = ball.view(data);
        let mut relation = converged(pattern, data);
        let outcome = enforce_repetition(pattern, &view, &mut relation, semantics, mode);
        (relation, outcome)
    }

    #[test]
    fn free_is_a_noop() {
        let (pattern, data) = diamond_on_path();
        let before = converged(&pattern, &data);
        let (after, outcome) = enforce(
            &pattern,
            &data,
            RepetitionSemantics::Free,
            RepetitionMode::Integrated,
        );
        assert_eq!(before.to_sorted_pairs(), after.to_sorted_pairs());
        assert_eq!(outcome, RepetitionOutcome::default());
    }

    #[test]
    fn label_distinct_patterns_gate_out() {
        let pattern =
            Pattern::from_edges(vec![Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]).unwrap();
        assert!(!has_repeated_labels(&pattern));
        let data =
            Graph::from_edges(vec![Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]).unwrap();
        let before = converged(&pattern, &data);
        for mode in [RepetitionMode::Integrated, RepetitionMode::NaiveOracle] {
            let (after, outcome) = enforce(&pattern, &data, RepetitionSemantics::Distinct, mode);
            assert_eq!(before.to_sorted_pairs(), after.to_sorted_pairs());
            assert_eq!(outcome, RepetitionOutcome::default());
        }
    }

    #[test]
    fn distinct_rejects_the_folded_diamond() {
        let (pattern, path) = diamond_on_path();
        for mode in [RepetitionMode::Integrated, RepetitionMode::NaiveOracle] {
            let (after, outcome) = enforce(&pattern, &path, RepetitionSemantics::Distinct, mode);
            assert!(outcome.changed, "folding must be detected under {mode:?}");
            assert!(!outcome.bailed);
            assert!(
                !after.is_total(),
                "no Distinct-consistent assignment exists on the path"
            );
        }
    }

    #[test]
    fn distinct_keeps_the_genuine_diamond() {
        let (pattern, data) = diamond_on_diamond();
        for mode in [RepetitionMode::Integrated, RepetitionMode::NaiveOracle] {
            let (after, outcome) = enforce(&pattern, &data, RepetitionSemantics::Distinct, mode);
            assert!(!outcome.bailed);
            assert!(after.is_total(), "the genuine diamond realises the pattern");
        }
    }

    #[test]
    fn equal_accepts_the_folded_diamond_and_rejects_the_chain() {
        // Equal forces both Label(1) pattern nodes onto one data node: exactly the
        // folded realisation of the diamond. On a repeated-label *chain* 0→1→1'→2 the
        // collapsed node would need a self-loop (the 1→1' edge maps to σ(1)→σ(1)),
        // which the loop-free data chain cannot provide — while Distinct accepts it.
        let (pattern, path) = diamond_on_path();
        let chain_pattern = Pattern::from_edges(
            vec![Label(0), Label(1), Label(1), Label(2)],
            &[(0, 1), (1, 2), (2, 3)],
        )
        .unwrap();
        let chain_data = Graph::from_edges(
            vec![Label(0), Label(1), Label(1), Label(2)],
            &[(0, 1), (1, 2), (2, 3)],
        )
        .unwrap();
        for mode in [RepetitionMode::Integrated, RepetitionMode::NaiveOracle] {
            let (after, outcome) = enforce(&pattern, &path, RepetitionSemantics::Equal, mode);
            assert!(!outcome.changed && !outcome.bailed);
            assert!(after.is_total());
            let (after, outcome) = enforce(
                &chain_pattern,
                &chain_data,
                RepetitionSemantics::Equal,
                mode,
            );
            assert!(outcome.changed);
            assert!(!after.is_total(), "Equal needs a Label(1) self-loop here");
            let (after, _) = enforce(
                &chain_pattern,
                &chain_data,
                RepetitionSemantics::Distinct,
                mode,
            );
            assert!(
                after.is_total(),
                "Distinct realises the chain node-for-node"
            );
        }
    }

    #[test]
    fn modes_agree_pairwise() {
        for (pattern, data) in [diamond_on_path(), diamond_on_diamond()] {
            for semantics in [RepetitionSemantics::Distinct, RepetitionSemantics::Equal] {
                let (a, oa) = enforce(&pattern, &data, semantics, RepetitionMode::Integrated);
                let (b, ob) = enforce(&pattern, &data, semantics, RepetitionMode::NaiveOracle);
                assert_eq!(a.to_sorted_pairs(), b.to_sorted_pairs());
                assert_eq!(oa, ob, "outcome counters must be mode-independent");
            }
        }
    }

    #[test]
    fn budget_bails_identically_in_both_modes() {
        // A clique of one label: every node is a candidate of every pattern node, so the
        // tree bound is |V|^|Vq|; 64^4 = 2^24 exceeds the 2^18 budget.
        let n = 64u32;
        let labels = vec![Label(0); n as usize];
        let mut edges = Vec::new();
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    edges.push((a, b));
                }
            }
        }
        let data = Graph::from_edges(labels, &edges).unwrap();
        let pattern = Pattern::from_edges(
            vec![Label(0), Label(0), Label(0), Label(0)],
            &[(0, 1), (1, 2), (2, 3)],
        )
        .unwrap();
        let before = converged(&pattern, &data);
        for mode in [RepetitionMode::Integrated, RepetitionMode::NaiveOracle] {
            let (after, outcome) = enforce(&pattern, &data, RepetitionSemantics::Distinct, mode);
            assert!(outcome.bailed, "the clique must exceed the budget");
            assert!(!outcome.changed);
            assert_eq!(before.to_sorted_pairs(), after.to_sorted_pairs());
        }
    }

    #[test]
    fn class_map_groups_by_label() {
        let pattern = Pattern::from_edges(
            vec![Label(7), Label(3), Label(7), Label(3), Label(9)],
            &[(0, 1), (1, 2), (2, 3), (3, 4)],
        )
        .unwrap();
        let map = repeated_label_class_map(&pattern).expect("two repeated classes");
        assert_eq!(map[0], map[2]);
        assert_eq!(map[1], map[3]);
        assert_ne!(map[0], map[1]);
        assert_eq!(map[4], None);
    }
}

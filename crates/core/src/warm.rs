//! Warm-started per-ball refinement: carry the converged relation across slid balls.
//!
//! Strong simulation refines a dual-simulation fixpoint inside every ball. With the
//! sliding [`crate::ball::BallForest`], adjacent centers share almost their whole ball —
//! and therefore almost their whole converged relation — yet the engine used to rebuild
//! the candidate sets and re-run the fixpoint from scratch per center. A [`WarmMatcher`]
//! instead carries the previous ball's *exact* maximum relation and repairs it:
//!
//! 1. **translate** the carried relation through the compact-index remap (previous local
//!    ids → global ids → new local ids); pairs on nodes that left the ball drop out,
//! 2. **re-open gains**: only pairs whose support can have *appeared* are re-added — the
//!    full base candidates of entered nodes, closed under pair-level propagation (a
//!    missing base pair `(a, v)` is re-opened when a neighbouring pair `(b, w)` along a
//!    pattern edge was re-opened, since `w` may now witness `v`'s support),
//! 3. **seed suspects**: exactly the delta — every gained pair plus every pair on a node
//!    adjacent to a departed node — is re-verified by a lazily-counted worklist; the
//!    counter cascade handles everything downstream.
//!
//! # Why this is exact
//!
//! Refinement computes the maximum dual-simulation relation contained in its start. The
//! warm start `S₀ = translate(GF_prev) ∪ gains` satisfies `GF_new ⊆ S₀ ⊆ base_new`:
//! the left inclusion holds because a `GF_new` pair missing from `S₀` would, together
//! with `GF_prev`, form a valid dual simulation on the *previous* ball (its witnesses are
//! either previous-ball pairs or re-opened gains — the gain closure chases exactly the
//! witness chains into the entered region), contradicting `GF_prev`'s maximality. Both
//! `GF_new ⊆ S₀` and `S₀ ⊆ base_new` force refinement from `S₀` to the unique maximum
//! `GF_new` — bit-identical, per candidate bitset, to
//! [`RefineSeed::FromScratch`](crate::simulation::RefineSeed). Distances play no role:
//! the ball subgraph is induced by *membership* alone, so entered/left nodes are the
//! entire delta and distance-only changes (every slide shifts most distances) are
//! invisible to refinement.
//!
//! The carry rides the forest's *slides*: their entered/left delta is exact and free. A
//! rebuild — a far jump or the forest's adaptive back-off — invalidates the carried
//! relation's relationship to the next delta, so the rebuilt ball refines from scratch
//! and re-seeds the carry. Warm attempts that *flood* (the gain closure exceeding its
//! budget because the fixpoint sits far below the base candidates) bail to scratch
//! seeding and open a doubling back-off window, so graphs whose per-ball relations churn
//! heavily pay only a vanishing probe overhead over the scratch engine.
//!
//! Patterns are connected by construction ([`ssim_graph::Pattern`] validates it), so an
//! emptied candidate set forces the *entire* fixpoint empty — emptiness cascades across
//! every pattern edge in both directions. The drain therefore keeps the worklist
//! engine's early exit without approximating: on an emptied set the carried relation is
//! cleared to the exact empty fixpoint instead of being left partially drained.
//!
//! The warm drain mirrors the counter-based worklist of [`crate::simulation`] but
//! initialises its capped support counters *lazily*, on first touch, instead of in a
//! phase-1 sweep over the whole relation — so a small delta only ever touches a small
//! counter neighbourhood. Laziness is safe because removal is gated by an authoritative
//! capped recount: decrements may over-fire (a counter initialised after an enqueued
//! removal gets decremented again), which at worst wastes a recount, and can never
//! under-fire, because untouched counters are recounted against the current relation.
//!
//! Connectivity pruning is center-dependent, so it cannot ride the carry. The warm path
//! refines to the pruning-free fixpoint (which *is* carried), then prunes and re-refines:
//! `GF(prune(GF(S))) = GF(prune(S))` because pruning is monotone and `GF(prune(S))` stays
//! connected-to-center inside `GF(S)` — the output matches the scratch pipeline exactly.
//!
//! On top of the carried relation, the per-ball **match graph** is maintained
//! incrementally (pruning off): rows are kept in global ids — stable across the remap —
//! and only *dirty sources* (entered/left/candidate-changed nodes and their in-neighbours)
//! are re-derived, the rest of the previous ball's edge list is spliced through.

use crate::ball::BallMove;
use crate::dual::refine_dual_with;
use crate::dual_filter::refine_projected;
use crate::match_graph::{extract_max_perfect_subgraph, MatchGraph, PerfectSubgraph};
use crate::pruning::prune_by_connectivity;
use crate::relation::MatchRelation;
use crate::repetition::{enforce_repetition, RepetitionMode, RepetitionSemantics};
use crate::simulation::{count_capped, initial_candidates, RefineStrategy};
use crate::strong::translate_subgraph;
use ssim_graph::{AdjView, CompactBall, Graph, Label, NodeId, Pattern};
use std::collections::VecDeque;

/// When the membership delta exceeds this fraction of the ball, the carried relation no
/// longer pays for its translation: refine from scratch instead (the carry is still
/// re-established for the next ball). Deltas of a couple of nodes always warm-start —
/// on tiny balls the translation is as cheap as the scratch seeding.
const DEGENERATE_DELTA_DIVISOR: usize = 2;

/// Gain-closure budget floor: a warm attempt that re-opens more than
/// `max(GAIN_BUDGET_MIN, translated_pairs / 4)` pairs is flooding — the ball's fixpoint
/// sits far below its base candidates, so chasing the missing set pair-by-pair costs
/// more than the scratch engine's linear phase-1 sweep. The attempt is abandoned and
/// the ball refined from scratch.
const GAIN_BUDGET_MIN: usize = 6;

/// After a flooded (bailed) warm attempt, this many balls are refined from scratch
/// before the next warm probe; the window doubles up to [`BAIL_BACKOFF_MAX`], mirroring
/// the [`crate::ball::BallForest`] slide back-off, so unstable-relation regions decay to
/// scratch seeding at negligible probe overhead while stable regions recover quickly.
const BAIL_BACKOFF_START: u32 = 16;

/// Upper bound for the bail back-off window.
const BAIL_BACKOFF_MAX: u32 = 128;

/// Work counters of one [`WarmMatcher`], merged into
/// [`MatchStats`](crate::strong::MatchStats) / `TrafficStats` by the drivers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WarmStats {
    /// Balls whose refinement was warm-started from the previous ball's fixpoint.
    pub warm_balls: usize,
    /// Balls the warm engine refined from scratch (first ball of a chain, or a
    /// degenerate membership delta).
    pub scratch_balls: usize,
    /// Suspect pairs enqueued for re-verification, over all balls (the seeded-worklist
    /// size; from-scratch balls count their full start relation).
    pub seeded_pairs: usize,
    /// Warm attempts abandoned because the gain closure exceeded its budget (counted
    /// among `scratch_balls`; they trigger the bail back-off).
    pub bailed_balls: usize,
    /// Balls whose match graph was updated incrementally instead of rebuilt.
    pub match_graphs_reused: usize,
    /// Pairs removed by the per-ball repetition closure (non-`Free` semantics only).
    /// The closure runs on a clone of the converged relation at the output stage — the
    /// carry keeps the plain dual fixpoint, on which the warm-start exactness argument
    /// rests — so these counters mirror the scratch pipeline's per-ball outcomes.
    pub repetition_filtered_pairs: usize,
    /// Balls whose repetition enforcement bailed on the witness-search budget
    /// precondition (see [`crate::repetition::REPETITION_BUDGET`]).
    pub repetition_bailed_balls: usize,
}

/// The state carried from the previous ball.
struct Carry {
    /// Previous ball's local→global map (`CompactBall::to_global`).
    members: Vec<NodeId>,
    /// The previous ball's exact maximum dual-simulation relation, in its local ids.
    /// `None` records the **empty** fixpoint — the common state on unmatchable
    /// stretches — without zeroing any bitset storage.
    relation: Option<MatchRelation>,
    /// The previous ball's match graph in **global** ids, when one was built (relation
    /// total, pruning off). Global ids survive the remap, so rows can be spliced.
    match_graph: Option<MatchGraph>,
}

/// The lazily-counted seeded worklist's scratch: the pattern's edge CSR (built once per
/// matcher) plus epoch-validated capped support counters sized to the largest ball seen.
struct SeededScratch {
    /// The pattern's edge list; counter blocks are indexed `edge * n + node`.
    edges: Vec<(NodeId, NodeId)>,
    /// Edge ids grouped by child endpoint (CSR offsets + ids).
    ein_off: Vec<u32>,
    ein: Vec<u32>,
    /// Edge ids grouped by parent endpoint (CSR offsets + ids).
    eout_off: Vec<u32>,
    eout: Vec<u32>,
    /// Capped child/parent support counters; an entry is meaningful only when its epoch
    /// matches the current ball's, so nothing is ever zeroed between balls.
    child_val: Vec<u32>,
    child_epoch: Vec<u32>,
    parent_val: Vec<u32>,
    parent_epoch: Vec<u32>,
    epoch: u32,
    /// Work queue of removed pairs awaiting propagation.
    queue: VecDeque<(NodeId, NodeId)>,
}

impl SeededScratch {
    fn new(pattern: &Pattern) -> Self {
        let q = pattern.graph();
        let edges: Vec<(NodeId, NodeId)> = q.edges().collect();
        let nq = q.node_count();
        let mut ein_off = vec![0u32; nq + 1];
        let mut eout_off = vec![0u32; nq + 1];
        for &(u, u_child) in &edges {
            eout_off[u.index() + 1] += 1;
            ein_off[u_child.index() + 1] += 1;
        }
        for i in 0..nq {
            ein_off[i + 1] += ein_off[i];
            eout_off[i + 1] += eout_off[i];
        }
        let mut ein = vec![0u32; edges.len()];
        let mut eout = vec![0u32; edges.len()];
        let mut ein_cursor: Vec<u32> = ein_off[..nq].to_vec();
        let mut eout_cursor: Vec<u32> = eout_off[..nq].to_vec();
        for (e, &(u, u_child)) in edges.iter().enumerate() {
            eout[eout_cursor[u.index()] as usize] = e as u32;
            eout_cursor[u.index()] += 1;
            ein[ein_cursor[u_child.index()] as usize] = e as u32;
            ein_cursor[u_child.index()] += 1;
        }
        SeededScratch {
            edges,
            ein_off,
            ein,
            eout_off,
            eout,
            child_val: Vec::new(),
            child_epoch: Vec::new(),
            parent_val: Vec::new(),
            parent_epoch: Vec::new(),
            epoch: 0,
            queue: VecDeque::new(),
        }
    }
}

/// Per-worker warm-started ball matcher: one per [`crate::ball::BallForest`], fed the
/// forest's membership deltas ball by ball. All per-ball buffers are reused across the
/// run, so the steady-state per-ball allocation cost is zero.
pub struct WarmMatcher {
    /// Data label → pattern nodes carrying it (base-candidate seeding without scanning
    /// the global label index per ball). A pattern has a handful of distinct labels, so
    /// a linear scan beats hashing on the per-entered-node hot path.
    classes: Vec<(Label, Vec<NodeId>)>,
    carry: Option<Carry>,
    /// Recycled relation storage: the ball-before-last's bitsets, reset per ball.
    spare: Option<MatchRelation>,
    seeded: SeededScratch,
    suspects: Vec<(NodeId, NodeId)>,
    touched: Vec<NodeId>,
    gain_queue: VecDeque<(NodeId, NodeId)>,
    entered_buf: Vec<NodeId>,
    left_buf: Vec<NodeId>,
    /// Ball-local nodes adjacent to a departed node (deduplicated suspect sources).
    near_left: Vec<NodeId>,
    /// Whether the carry corresponds to the *immediately previous* ball. A slide's
    /// entered/left delta is relative to that ball, so warm starts require freshness;
    /// rebuilds (including the forest's back-off) and skipped updates invalidate it.
    carry_fresh: bool,
    /// Remaining balls to refine from scratch before probing with a warm attempt again
    /// (set by flooded gain closures).
    flood_penalty: u32,
    flood_backoff: u32,
    /// Work counters, drained by the driver after the worker finishes.
    pub stats: WarmStats,
}

impl WarmMatcher {
    /// Creates a matcher for `pattern` with no carried state.
    pub fn new(pattern: &Pattern) -> Self {
        let mut classes: Vec<(Label, Vec<NodeId>)> = Vec::new();
        for u in pattern.nodes() {
            let label = pattern.label(u);
            match classes.iter_mut().find(|(l, _)| *l == label) {
                Some((_, nodes)) => nodes.push(u),
                None => classes.push((label, vec![u])),
            }
        }
        WarmMatcher {
            classes,
            carry: None,
            spare: None,
            seeded: SeededScratch::new(pattern),
            suspects: Vec::new(),
            touched: Vec::new(),
            gain_queue: VecDeque::new(),
            entered_buf: Vec::new(),
            left_buf: Vec::new(),
            near_left: Vec::new(),
            carry_fresh: false,
            flood_penalty: 0,
            flood_backoff: BAIL_BACKOFF_START,
            stats: WarmStats::default(),
        }
    }

    /// The per-ball dispatch gate shared by the drivers: returns `true` when the ball
    /// should go through [`WarmMatcher::match_ball`] (the carry rides slides), and
    /// `false` for rebuilt balls — far jumps and the forest's adaptive back-off — which
    /// must take the caller's plain scratch path. The invalidation of the carried
    /// relation lives *here* so no driver can forget it: a rebuild severs the carry's
    /// relationship to the next slide delta, and the next matcher-processed ball
    /// re-seeds the chain from its own scratch refinement.
    pub fn wants(&mut self, ball_move: BallMove) -> bool {
        if matches!(ball_move, BallMove::Same | BallMove::Slid) {
            true
        } else {
            self.carry_fresh = false;
            false
        }
    }

    /// Severs the carry chain and resets the flood back-off to its fresh-matcher state,
    /// exactly as a newly constructed matcher would start — while keeping the allocated
    /// relation buffers and the cumulative [`WarmStats`]. The chunk scheduler calls this
    /// at every chunk boundary so warm-start decisions are a function of chunk content
    /// alone, independent of which worker runs the chunk.
    pub fn reset_chain(&mut self) {
        if let Some(carry) = self.carry.take() {
            if let Some(relation) = carry.relation {
                self.spare = Some(relation);
            }
        }
        self.carry_fresh = false;
        self.flood_penalty = 0;
        self.flood_backoff = BAIL_BACKOFF_START;
    }

    /// The members (local → global) and converged relation carried from the last
    /// processed ball — the exact per-node candidate bitsets the next ball warm-starts
    /// from (`None` relation = the exact empty fixpoint). Exposed for the differential
    /// harness and diagnostics.
    pub fn carried_relation(&self) -> Option<(&[NodeId], Option<&MatchRelation>)> {
        self.carry
            .as_ref()
            .map(|c| (c.members.as_slice(), c.relation.as_ref()))
    }

    /// Whether the carry reflects the *last processed* ball (false inside a flood
    /// back-off window, where maintenance is skipped). A non-empty fresh carry's
    /// members are the last ball's; an empty fresh carry may keep stale members, since
    /// the empty fixpoint needs no translation.
    pub fn carry_is_fresh(&self) -> bool {
        self.carry_fresh
    }

    /// Matches one ball, warm-starting from the previous ball's fixpoint when the
    /// membership delta allows it. `ball_move`, `entered` and `left` come from the
    /// forest that produced `ball` ([`crate::ball::BallForest::last_move`] &c.);
    /// `global_relation` is the dual-filter base when that optimisation is on.
    ///
    /// Returns the extracted perfect subgraph (bit-identical to the from-scratch
    /// pipeline) plus the number of pairs the per-ball refinement removed — the
    /// dual-filter instrumentation, whose value is seed-dependent by design.
    #[allow(clippy::too_many_arguments)]
    pub fn match_ball(
        &mut self,
        pattern: &Pattern,
        data: &Graph,
        ball: &CompactBall,
        ball_move: BallMove,
        entered: &[NodeId],
        left: &[NodeId],
        global_relation: Option<&MatchRelation>,
        connectivity_pruning: bool,
        refine_strategy: RefineStrategy,
        repetition: RepetitionSemantics,
        repetition_mode: RepetitionMode,
    ) -> (Option<PerfectSubgraph>, usize) {
        let view = ball.view(data);
        let n = ball.node_count();
        let mut removed_pairs = 0usize;

        // The flood back-off window is measured in matcher-processed balls and counts
        // down unconditionally — gating the decrement on probe eligibility would
        // deadlock (a closed window keeps the carry stale, staleness blocks probes, and
        // blocked probes would never reopen the window).
        if self.flood_penalty > 0 {
            self.flood_penalty -= 1;
        }
        // A warm start needs (a) a carry that corresponds to the *previous* ball — the
        // forest's entered/left delta is relative to it, and a rebuild (including the
        // adaptive back-off) invalidated that relationship, so the carried relation is
        // reset by re-seeding it from this ball's scratch refinement — (b) a
        // non-degenerate delta, and (c) an open flood back-off window: after a flooded
        // gain closure, probes sit out a doubling window of scratch balls, so
        // unstable-relation regions decay to scratch seeding at negligible overhead,
        // mirroring the forest's slide back-off.
        let probe = self.carry.is_some()
            && self.carry_fresh
            && self.flood_penalty == 0
            && matches!(ball_move, BallMove::Same | BallMove::Slid);
        let mut warm = probe;
        if warm {
            self.touched.clear();
            self.suspects.clear();
            self.entered_buf.clear();
            self.entered_buf.extend_from_slice(entered);
            self.left_buf.clear();
            self.left_buf.extend_from_slice(left);
            warm = self.entered_buf.len() + self.left_buf.len()
                <= (n / DEGENERATE_DELTA_DIVISOR).max(2);
        }

        let mut attempt: Option<MatchRelation> = None;
        if warm {
            attempt =
                self.warm_attempt(pattern, data, ball, global_relation, n, &mut removed_pairs);
            match &attempt {
                Some(_) => {
                    self.stats.warm_balls += 1;
                    self.stats.seeded_pairs += self.suspects.len();
                    self.flood_backoff = BAIL_BACKOFF_START;
                }
                None => {
                    self.stats.bailed_balls += 1;
                    self.flood_penalty = self.flood_backoff;
                    self.flood_backoff = (self.flood_backoff * 2).min(BAIL_BACKOFF_MAX);
                    warm = false;
                    removed_pairs = 0;
                    self.touched.clear();
                    self.suspects.clear();
                }
            }
        }
        let relation: Option<MatchRelation> = if attempt.is_some() {
            // An emptied warm fixpoint — whether cleared by the drain or empty straight
            // out of translation — is recorded as `None`, the carry's buffer-free empty
            // representation, so hopeless stretches skip the member copy.
            match attempt {
                Some(rel) if rel.is_empty() => {
                    self.spare = Some(rel);
                    None
                }
                other => other,
            }
        } else {
            // First ball of a chain, a degenerate delta or a bail window: refine from
            // scratch with the stock engines (worklist / border-seeded dualFilter). A
            // non-total result means the exact fixpoint is empty (connected pattern),
            // recorded as `None` without touching any buffers.
            self.stats.scratch_balls += 1;
            let start = match global_relation {
                Some(global) => global.project_compact(ball),
                None => initial_candidates(pattern, &view),
            };
            self.stats.seeded_pairs += start.pair_count();
            if global_relation.is_some() {
                refine_projected(
                    pattern,
                    &view,
                    ball.border(),
                    start,
                    Some(&mut removed_pairs),
                )
            } else {
                refine_dual_with(pattern, &view, start, refine_strategy)
            }
        };

        // Output: totality gate, optional pruning (after the fact — see module docs),
        // then extraction; the *pruning-free* fixpoint is what the next ball inherits.
        let mut result = None;
        let mut match_graph = None;
        if let Some(rel) = relation.as_ref().filter(|r| r.is_total()) {
            if connectivity_pruning {
                // Non-`Free` semantics close the pruned-and-re-refined relation, exactly
                // where the scratch pipeline runs the closure (between convergence and
                // extraction); the pruning-free carry below is untouched by it.
                let mut repetition_stats = (0usize, 0usize);
                result = prune_by_connectivity(pattern, &view, ball.center(), rel)
                    .and_then(|pruned| refine_dual_with(pattern, &view, pruned, refine_strategy))
                    .and_then(|mut final_rel| {
                        let outcome = enforce_repetition(
                            pattern,
                            &view,
                            &mut final_rel,
                            repetition,
                            repetition_mode,
                        );
                        repetition_stats = (outcome.removed_pairs, usize::from(outcome.bailed));
                        final_rel.is_total().then_some(final_rel)
                    })
                    .and_then(|final_rel| {
                        extract_max_perfect_subgraph(
                            pattern,
                            &view,
                            &final_rel,
                            ball.center(),
                            ball.radius(),
                        )
                    })
                    .map(|s| translate_subgraph(s, ball));
                self.stats.repetition_filtered_pairs += repetition_stats.0;
                self.stats.repetition_bailed_balls += repetition_stats.1;
            } else if pattern.nodes().any(|u| rel.contains(u, ball.center())) {
                // Only extracting balls build (and carry) a match graph — an unmatched
                // center extracts nothing, exactly like the scratch pipeline, which
                // bails before building the graph.
                let mg = self.build_match_graph(pattern, data, ball, rel, warm);
                // The repetition closure runs on a *clone* of the converged relation:
                // the carry (and the match graph it maintains) must stay the plain dual
                // fixpoint the warm-start exactness argument is built on. A closure
                // that changed nothing leaves the match-graph extraction path — proven
                // bit-identical to the scratch extraction — in charge.
                let closed = (repetition != RepetitionSemantics::Free
                    && crate::repetition::has_repeated_labels(pattern))
                .then(|| {
                    let mut closed = rel.clone();
                    let outcome = enforce_repetition(
                        pattern,
                        &view,
                        &mut closed,
                        repetition,
                        repetition_mode,
                    );
                    self.stats.repetition_filtered_pairs += outcome.removed_pairs;
                    self.stats.repetition_bailed_balls += usize::from(outcome.bailed);
                    (closed, outcome.changed)
                });
                result = match closed {
                    Some((closed, true)) => closed
                        .is_total()
                        .then(|| {
                            extract_max_perfect_subgraph(
                                pattern,
                                &view,
                                &closed,
                                ball.center(),
                                ball.radius(),
                            )
                        })
                        .flatten()
                        .map(|s| translate_subgraph(s, ball)),
                    _ => extract_component(&mg, ball, rel),
                };
                match_graph = Some(mg);
            }
        }
        // Maintain the carry only when the next balls can consume it: deep inside a
        // flood back-off window nothing probes before the window closes, so the member
        // copy and relation hand-over would be pure overhead. The ball right before the
        // window closes (penalty ≤ 1) refreshes the carry for the probe.
        if self.flood_penalty <= 1 {
            match self.carry.as_mut() {
                Some(c) => {
                    match relation {
                        Some(rel) => {
                            if let Some(old) = c.relation.replace(rel) {
                                self.spare = Some(old);
                            }
                            c.members.clear();
                            c.members.extend_from_slice(ball.to_global());
                        }
                        None => {
                            // An empty carry is never translated, so its member list
                            // can stay stale — no per-ball copy on hopeless stretches.
                            if let Some(old) = c.relation.take() {
                                self.spare = Some(old);
                            }
                        }
                    }
                    c.match_graph = match_graph;
                }
                None => {
                    self.carry = Some(Carry {
                        members: ball.to_global().to_vec(),
                        relation,
                        match_graph,
                    });
                }
            }
            self.carry_fresh = true;
        } else {
            if let Some(rel) = relation {
                self.spare = Some(rel);
            }
            self.carry_fresh = false;
        }
        let removed = if global_relation.is_some() {
            removed_pairs
        } else {
            0 // removal counting is dual-filter instrumentation, as in the scratch path
        };
        (result, removed)
    }

    /// One warm attempt: translate, gain-closure (budgeted), suspect seeding and the
    /// seeded drain. Returns `None` when the closure flooded past its budget (the
    /// caller bails to scratch seeding). Kept out of line so the bootstrap-dominated
    /// hot path through [`WarmMatcher::match_ball`] stays compact.
    #[inline(never)]
    fn warm_attempt(
        &mut self,
        pattern: &Pattern,
        data: &Graph,
        ball: &CompactBall,
        global_relation: Option<&MatchRelation>,
        n: usize,
        removed_pairs: &mut usize,
    ) -> Option<MatchRelation> {
        let view = ball.view(data);
        // Disjoint borrows of the matcher's buffers for the seeding phase.
        let Self {
            classes,
            carry,
            spare,
            seeded,
            suspects,
            touched,
            gain_queue,
            entered_buf,
            left_buf,
            near_left,
            ..
        } = self;
        let carry = carry.as_ref().expect("warm implies a carry");
        'attempt: {
            // 1. Translate the carried fixpoint through the remap.
            let mut rel = spare.take().map_or_else(
                || MatchRelation::empty(pattern.node_count(), n),
                |mut r| {
                    r.reset(n);
                    r
                },
            );
            if let Some(prev_rel) = &carry.relation {
                for u in pattern.nodes() {
                    for old_local in prev_rel.candidates(u).iter() {
                        if let Some(new_local) = ball.local_of(carry.members[old_local]) {
                            rel.insert(u, new_local);
                        }
                    }
                }
            }
            // 2. Re-open gains: entered nodes get their full base candidates; the
            // pair-level closure chases potential support chains back into the
            // common region. A closure that floods past its budget means the
            // fixpoint sits far below the base — scratch seeding is cheaper there,
            // so the attempt is abandoned (the recycled relation is kept for later).
            let gain_budget = (rel.pair_count() / 4).max(GAIN_BUDGET_MIN);
            let mut gains = 0usize;
            let base_ok = |u: NodeId, g: NodeId| -> bool {
                pattern.label(u) == data.label(g)
                    && global_relation.is_none_or(|gr| gr.contains(u, g))
            };
            gain_queue.clear();
            for &g in entered_buf.iter() {
                let Some(v) = ball.local_of(g) else { continue };
                let label = data.label(g);
                let Some((_, class)) = classes.iter().find(|(l, _)| *l == label) else {
                    continue;
                };
                for &u in class {
                    if base_ok(u, g) && rel.insert(u, v) {
                        gains += 1;
                        if gains > gain_budget {
                            *spare = Some(rel);
                            break 'attempt None;
                        }
                        gain_queue.push_back((u, v));
                        suspects.push((u, v));
                        touched.push(v);
                    }
                }
            }
            let q = pattern.graph();
            while let Some((b, w)) = gain_queue.pop_front() {
                // (b, w) was re-opened: w may now witness the child support of
                // in-neighbour pairs along pattern edges (a, b) and the parent
                // support of out-neighbour pairs along pattern edges (b, c).
                for a in q.in_neighbors(b) {
                    for v in view.in_neighbors(w) {
                        if base_ok(a, ball.global_of(v)) && rel.insert(a, v) {
                            gains += 1;
                            if gains > gain_budget {
                                *spare = Some(rel);
                                break 'attempt None;
                            }
                            gain_queue.push_back((a, v));
                            suspects.push((a, v));
                            touched.push(v);
                        }
                    }
                }
                for c in q.out_neighbors(b) {
                    for v in view.out_neighbors(w) {
                        if base_ok(c, ball.global_of(v)) && rel.insert(c, v) {
                            gains += 1;
                            if gains > gain_budget {
                                *spare = Some(rel);
                                break 'attempt None;
                            }
                            gain_queue.push_back((c, v));
                            suspects.push((c, v));
                            touched.push(v);
                        }
                    }
                }
            }
            // 3. Suspect every pair that may have *lost* support: the pairs on
            // nodes adjacent to a departed node (their witness sets shrank). An
            // empty relation — the common case on unmatchable stretches — has
            // nothing to lose, so the adjacency scan is skipped outright.
            if !rel.is_empty() {
                near_left.clear();
                for &l in left_buf.iter() {
                    for w in data.out_neighbors(l).chain(data.in_neighbors(l)) {
                        if let Some(wl) = ball.local_of(w) {
                            near_left.push(wl);
                        }
                    }
                }
                near_left.sort_unstable();
                near_left.dedup();
                for &wl in near_left.iter() {
                    for u in pattern.nodes() {
                        if rel.contains(u, wl) {
                            suspects.push((u, wl));
                        }
                    }
                }
            }
            if !suspects.is_empty() {
                drain_seeded(seeded, &view, &mut rel, suspects, removed_pairs, touched);
            }
            Some(rel)
        }
    }

    /// Builds the ball's match graph in global ids — incrementally, when the previous
    /// ball left one behind and this ball warm-started, by re-deriving only the dirty
    /// sources' rows.
    fn build_match_graph(
        &mut self,
        pattern: &Pattern,
        data: &Graph,
        ball: &CompactBall,
        relation: &MatchRelation,
        warm: bool,
    ) -> MatchGraph {
        let mut nodes: Vec<NodeId> = relation
            .matched_data_nodes()
            .iter()
            .map(|i| ball.global_of(NodeId::from_index(i)))
            .collect();
        nodes.sort_unstable();
        let previous = if warm {
            self.carry.as_ref().and_then(|c| c.match_graph.as_ref())
        } else {
            None
        };
        // Dirty sources: a row (the match edges out of one node) changes only when the
        // node's own candidates changed, it entered or left the ball, or one of its
        // out-neighbours did — i.e. it is an in-neighbour of such a node. Splicing only
        // pays when that core is a small fraction of the matched set: on small or
        // delta-heavy balls the in-neighbour expansion plus merge costs more than
        // re-deriving every row, so fall back to a full (equally exact) rebuild.
        let spliceable = previous.and_then(|prev| {
            let mut core: Vec<NodeId> = self
                .entered_buf
                .iter()
                .chain(self.left_buf.iter())
                .copied()
                .chain(self.touched.iter().map(|&l| ball.global_of(l)))
                .collect();
            core.sort_unstable();
            core.dedup();
            // The dirty set still grows by the core's in-neighbourhoods before rows are
            // re-derived, so splicing needs a core well below the matched count to beat
            // a plain rebuild.
            (core.len() * 4 < nodes.len()).then_some((prev, core))
        });
        let edges = match spliceable {
            Some((prev, mut dirty)) => {
                self.stats.match_graphs_reused += 1;
                let core_len = dirty.len();
                for i in 0..core_len {
                    let g = dirty[i];
                    dirty.extend(data.in_neighbors(g));
                }
                dirty.sort_unstable();
                dirty.dedup();
                let mut fresh_rows: Vec<(NodeId, NodeId)> = Vec::new();
                for &g in &dirty {
                    if let Some(v) = ball.local_of(g) {
                        push_match_row(pattern, ball, relation, g, v, data, &mut fresh_rows);
                    }
                }
                splice_rows(&prev.edges, &dirty, fresh_rows)
            }
            None => {
                let mut rows = Vec::new();
                for &g in &nodes {
                    let v = ball.local_of(g).expect("matched node is a ball member");
                    push_match_row(pattern, ball, relation, g, v, data, &mut rows);
                }
                rows
            }
        };
        MatchGraph { nodes, edges }
    }
}

/// Empties every candidate set: the exact fixpoint of an unmatchable ball (connected
/// patterns — see the module docs).
fn clear_relation(relation: &mut MatchRelation) {
    let n = relation.data_node_capacity();
    relation.reset(n);
}

/// `ExtractMaxPG` over a global-id match graph and a ball-local relation: the center's
/// component with its edges and relation pairs, bit-identical to the scratch pipeline's
/// `extract_max_perfect_subgraph` + `translate_subgraph` but with ball-sized filtering
/// (the component bitset and the pair sort cover only the component, not the ball).
fn extract_component(
    mg: &MatchGraph,
    ball: &CompactBall,
    relation: &MatchRelation,
) -> Option<PerfectSubgraph> {
    let component = mg.component_containing(ball.center_global())?;
    let mut in_component = ssim_graph::BitSet::new(ball.node_count());
    for &g in &component {
        let local = ball.local_of(g).expect("component node is a ball member");
        in_component.insert(local.index());
    }
    let edges: Vec<(NodeId, NodeId)> = mg
        .edges
        .iter()
        .copied()
        .filter(|&(s, t)| {
            let sl = ball
                .local_of(s)
                .expect("match edge source is a ball member");
            let tl = ball
                .local_of(t)
                .expect("match edge target is a ball member");
            in_component.contains(sl.index()) && in_component.contains(tl.index())
        })
        .collect();
    let mut pairs: Vec<(NodeId, NodeId)> = relation
        .pairs()
        .filter(|&(_, v)| in_component.contains(v.index()))
        .map(|(u, v)| (u, ball.global_of(v)))
        .collect();
    pairs.sort_unstable();
    Some(PerfectSubgraph {
        center: ball.center_global(),
        radius: ball.radius(),
        nodes: component,
        edges,
        relation: pairs,
    })
}

/// The seeded, lazily-counted worklist drain: verifies the suspect pairs, removes the
/// unsupported ones and propagates through capped support counters initialised on first
/// touch. Computes the maximum dual-simulation relation contained in the start
/// **provided** `suspects` covers every initially unsupported pair. When some candidate
/// set empties mid-drain the relation is cleared to the exact empty fixpoint (connected
/// patterns — see the module docs) instead of being drained further.
fn drain_seeded<V: AdjView>(
    s: &mut SeededScratch,
    view: &V,
    relation: &mut MatchRelation,
    suspects: &[(NodeId, NodeId)],
    removed: &mut usize,
    touched: &mut Vec<NodeId>,
) {
    if s.edges.is_empty() {
        return; // no pattern edges: every pair is vacuously supported
    }
    let n = relation.data_node_capacity();
    let need = s.edges.len() * n;
    if s.child_val.len() < need {
        s.child_val.resize(need, 0);
        s.child_epoch.resize(need, 0);
        s.parent_val.resize(need, 0);
        s.parent_epoch.resize(need, 0);
    }
    s.epoch = s.epoch.wrapping_add(1);
    if s.epoch == 0 {
        s.child_epoch.fill(0);
        s.parent_epoch.fill(0);
        s.epoch = 1;
    }
    let epoch = s.epoch;
    s.queue.clear();

    // Verify the suspects, initialising their counters along the way.
    for &(u, v) in suspects {
        if !relation.contains(u, v) {
            continue; // re-suspected pair already removed
        }
        let ui = u.index();
        let mut dead = false;
        for &e in &s.eout[s.eout_off[ui] as usize..s.eout_off[ui + 1] as usize] {
            let e = e as usize;
            let u_child = s.edges[e].1;
            let c = count_capped(view.out_neighbors(v), |w| relation.contains(u_child, w));
            s.child_val[e * n + v.index()] = c;
            s.child_epoch[e * n + v.index()] = epoch;
            if c == 0 {
                dead = true;
                break;
            }
        }
        if !dead {
            for &e in &s.ein[s.ein_off[ui] as usize..s.ein_off[ui + 1] as usize] {
                let e = e as usize;
                let u_parent = s.edges[e].0;
                let c = count_capped(view.in_neighbors(v), |w| relation.contains(u_parent, w));
                s.parent_val[e * n + v.index()] = c;
                s.parent_epoch[e * n + v.index()] = epoch;
                if c == 0 {
                    dead = true;
                    break;
                }
            }
        }
        if dead {
            relation.remove(u, v);
            *removed += 1;
            touched.push(v);
            if relation.candidates(u).is_empty() {
                clear_relation(relation);
                return;
            }
            s.queue.push_back((u, v));
        }
    }

    // Propagate: each removal (u, v) may break the child support of in-neighbour pairs
    // along pattern edges (u2, u) and the parent support of out-neighbour pairs along
    // (u, u3) — exactly the worklist engine's cascade, with lazy counter init.
    while let Some((u, v)) = s.queue.pop_front() {
        let ui = u.index();
        for &e in &s.ein[s.ein_off[ui] as usize..s.ein_off[ui + 1] as usize] {
            let e = e as usize;
            let u2 = s.edges[e].0;
            let base = e * n;
            for w in view.in_neighbors(v) {
                if !relation.contains(u2, w) {
                    continue;
                }
                let idx = base + w.index();
                let (current, fresh) = if s.child_epoch[idx] == epoch {
                    let nv = s.child_val[idx].saturating_sub(1);
                    s.child_val[idx] = nv;
                    (nv, false)
                } else {
                    let c = count_capped(view.out_neighbors(w), |x| relation.contains(u, x));
                    s.child_epoch[idx] = epoch;
                    s.child_val[idx] = c;
                    (c, true)
                };
                if current == 0 {
                    // A decremented zero is only a suspicion (the cap, and possible
                    // over-fired decrements): recount before concluding.
                    let c = if fresh {
                        0
                    } else {
                        count_capped(view.out_neighbors(w), |x| relation.contains(u, x))
                    };
                    s.child_val[idx] = c;
                    if c == 0 && relation.remove(u2, w) {
                        *removed += 1;
                        touched.push(w);
                        if relation.candidates(u2).is_empty() {
                            clear_relation(relation);
                            return;
                        }
                        s.queue.push_back((u2, w));
                    }
                }
            }
        }
        for &e in &s.eout[s.eout_off[ui] as usize..s.eout_off[ui + 1] as usize] {
            let e = e as usize;
            let u3 = s.edges[e].1;
            let base = e * n;
            for w in view.out_neighbors(v) {
                if !relation.contains(u3, w) {
                    continue;
                }
                let idx = base + w.index();
                let (current, fresh) = if s.parent_epoch[idx] == epoch {
                    let nv = s.parent_val[idx].saturating_sub(1);
                    s.parent_val[idx] = nv;
                    (nv, false)
                } else {
                    let c = count_capped(view.in_neighbors(w), |x| relation.contains(u, x));
                    s.parent_epoch[idx] = epoch;
                    s.parent_val[idx] = c;
                    (c, true)
                };
                if current == 0 {
                    let c = if fresh {
                        0
                    } else {
                        count_capped(view.in_neighbors(w), |x| relation.contains(u, x))
                    };
                    s.parent_val[idx] = c;
                    if c == 0 && relation.remove(u3, w) {
                        *removed += 1;
                        touched.push(w);
                        if relation.candidates(u3).is_empty() {
                            clear_relation(relation);
                            return;
                        }
                        s.queue.push_back((u3, w));
                    }
                }
            }
        }
    }
}

/// Appends the sorted, deduplicated match-graph row of data node `g` (local id `v`):
/// every ball edge `g → w` covered by some pattern edge under `relation`.
fn push_match_row(
    pattern: &Pattern,
    ball: &CompactBall,
    relation: &MatchRelation,
    g: NodeId,
    v: NodeId,
    data: &Graph,
    out: &mut Vec<(NodeId, NodeId)>,
) {
    let view = ball.view(data);
    let start = out.len();
    for (a, b) in pattern.graph().edges() {
        if relation.contains(a, v) {
            for w in view.out_neighbors(v) {
                if relation.contains(b, w) {
                    out.push((g, ball.global_of(w)));
                }
            }
        }
    }
    // Sort and deduplicate only the row just appended (several pattern edges can cover
    // the same data edge); earlier rows have distinct sources and stay untouched.
    out[start..].sort_unstable();
    let mut write = start;
    for read in start..out.len() {
        if write == start || out[write - 1] != out[read] {
            out[write] = out[read];
            write += 1;
        }
    }
    out.truncate(write);
}

/// Merges the previous ball's edge list with freshly derived rows: edges sourced at a
/// dirty node are dropped (their row was re-derived — possibly to nothing), everything
/// else is spliced through. Both inputs are sorted; the output is too.
fn splice_rows(
    old: &[(NodeId, NodeId)],
    dirty_sorted: &[NodeId],
    fresh: Vec<(NodeId, NodeId)>,
) -> Vec<(NodeId, NodeId)> {
    let mut out = Vec::with_capacity(old.len() + fresh.len());
    let mut fresh = fresh.into_iter().peekable();
    for &(s, t) in old {
        if dirty_sorted.binary_search(&s).is_ok() {
            continue;
        }
        while let Some(&(fs, ft)) = fresh.peek() {
            if (fs, ft) < (s, t) {
                out.push((fs, ft));
                fresh.next();
            } else {
                break;
            }
        }
        out.push((s, t));
    }
    out.extend(fresh);
    out
}

//! Graph bisimulation (Section 3.2).
//!
//! A pattern `Q` matches a graph `Gs` via bisimulation, `Q ∼ Gs`, when `Q ≺ Gs` with the
//! maximum match relation `S` and `Gs ≺ Q` with the inverse `S⁻` as *its* maximum match
//! relation. Bisimulation preserves more topology than simulation but pattern matching via
//! bisimulation (finding subgraphs `Gs ⊆ G` with `Q ∼ Gs`) is NP-hard; the paper uses this
//! as one of the two negative results motivating strong simulation as the tractable sweet
//! spot. This module provides the (PTIME) whole-graph bisimulation check used in tests and
//! in the discussion material.

use crate::relation::MatchRelation;
use crate::simulation::graph_simulation;
use ssim_graph::{Graph, NodeId, Pattern};

/// Computes the maximum simulation relation of `a` over `b` in both directions and checks
/// the bisimulation condition of the paper: the maximum relation of `b` over `a` must be the
/// inverse of the maximum relation of `a` over `b`.
///
/// Returns the forward maximum relation when the graphs are bisimilar, `None` otherwise.
/// `a` must be connected (it is treated as the pattern side).
pub fn bisimulation(a: &Pattern, b: &Graph) -> Option<MatchRelation> {
    let forward = graph_simulation(a, b)?;
    // The reverse direction treats `b` as the pattern; `b` need not be connected, so run the
    // raw refinement rather than constructing a `Pattern`.
    let reverse = simulation_unchecked(b, a.graph())?;
    // Check that reverse == inverse(forward).
    let forward_pairs: std::collections::BTreeSet<(u32, u32)> =
        forward.pairs().map(|(u, v)| (u.0, v.0)).collect();
    let reverse_pairs: std::collections::BTreeSet<(u32, u32)> =
        reverse.pairs().map(|(u, v)| (v.0, u.0)).collect();
    if forward_pairs == reverse_pairs {
        Some(forward)
    } else {
        None
    }
}

/// Returns `true` when `Q ∼ G` (whole-graph bisimulation, PTIME).
pub fn bisimilar(a: &Pattern, b: &Graph) -> bool {
    bisimulation(a, b).is_some()
}

/// Maximum simulation relation of an arbitrary (possibly disconnected) "pattern" graph over a
/// data graph. Connectivity is irrelevant for the fixpoint itself.
fn simulation_unchecked(pattern_graph: &Graph, data: &Graph) -> Option<MatchRelation> {
    let mut relation = MatchRelation::empty(pattern_graph.node_count(), data.node_count());
    for u in pattern_graph.nodes() {
        for &v in data.nodes_with_label(pattern_graph.label(u)) {
            relation.insert(u, v);
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for (u, u_child) in pattern_graph.edges() {
            let removals: Vec<NodeId> = relation
                .candidates(u)
                .iter()
                .map(NodeId::from_index)
                .filter(|&v| !data.out_neighbors(v).any(|w| relation.contains(u_child, w)))
                .collect();
            for v in removals {
                relation.remove(u, v);
                changed = true;
            }
        }
    }
    if relation.is_total() {
        Some(relation)
    } else {
        None
    }
}

/// Partitions the nodes of a graph into bisimulation-equivalence classes (Kanellakis–Smolka
/// style iterative splitting on successor signatures). Two nodes are in the same class iff
/// they are bisimilar within the graph. Useful for building bisimulation-minimal graphs in
/// tests and examples.
pub fn bisimulation_partition(graph: &Graph) -> Vec<usize> {
    let n = graph.node_count();
    if n == 0 {
        return Vec::new();
    }
    // Initial partition: by label.
    let mut class: Vec<usize> = {
        let mut map = std::collections::HashMap::new();
        graph
            .nodes()
            .map(|v| {
                let next = map.len();
                *map.entry(graph.label(v)).or_insert(next)
            })
            .collect()
    };
    loop {
        // Signature: (current class, sorted classes of successors).
        let mut signatures: Vec<(usize, Vec<usize>)> = Vec::with_capacity(n);
        for v in graph.nodes() {
            let mut succ: Vec<usize> = graph.out_neighbors(v).map(|w| class[w.index()]).collect();
            succ.sort_unstable();
            succ.dedup();
            signatures.push((class[v.index()], succ));
        }
        let mut map = std::collections::HashMap::new();
        let mut new_class = vec![0usize; n];
        for (i, sig) in signatures.iter().enumerate() {
            let next = map.len();
            new_class[i] = *map.entry(sig.clone()).or_insert(next);
        }
        if new_class == class {
            return class;
        }
        class = new_class;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_graph::Label;

    #[test]
    fn isomorphic_graphs_are_bisimilar() {
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let data = Graph::from_edges(vec![Label(1), Label(0)], &[(1, 0)]).unwrap();
        assert!(bisimilar(&pattern, &data));
    }

    #[test]
    fn two_cycle_and_four_cycle_are_bisimilar() {
        // The classic example: an A<->B 2-cycle is bisimilar to an A->B->A->B 4-cycle.
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1), (1, 0)]).unwrap();
        let four = Graph::from_edges(
            vec![Label(0), Label(1), Label(0), Label(1)],
            &[(0, 1), (1, 2), (2, 3), (3, 0)],
        )
        .unwrap();
        assert!(bisimilar(&pattern, &four));
    }

    #[test]
    fn extra_unmatchable_structure_breaks_bisimulation() {
        // Data has an extra C node the pattern cannot simulate back.
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let data =
            Graph::from_edges(vec![Label(0), Label(1), Label(7)], &[(0, 1), (2, 1)]).unwrap();
        assert!(!bisimilar(&pattern, &data));
        // Simulation in the forward direction still holds.
        assert!(crate::simulation::simulates(&pattern, &data));
    }

    #[test]
    fn asymmetric_children_break_bisimulation() {
        // Pattern: A -> B. Data: A -> B, plus an A with no child. Forward simulation holds,
        // but the childless A cannot be simulated by the pattern's A... it actually can (the
        // pattern imposes no obligation on extra nodes) — the failure is that the childless
        // data A must map to the pattern A, whose edge A -> B it cannot mirror.
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let data = Graph::from_edges(vec![Label(0), Label(1), Label(0)], &[(0, 1)]).unwrap();
        assert!(!bisimilar(&pattern, &data));
    }

    #[test]
    fn bisimulation_partition_merges_equivalent_nodes() {
        // Two parallel A -> B branches from a root R: the two A's (and the two B's) are
        // bisimilar.
        let g = Graph::from_edges(
            vec![Label(9), Label(0), Label(0), Label(1), Label(1)],
            &[(0, 1), (0, 2), (1, 3), (2, 4)],
        )
        .unwrap();
        let classes = bisimulation_partition(&g);
        assert_eq!(classes[1], classes[2]);
        assert_eq!(classes[3], classes[4]);
        assert_ne!(classes[0], classes[1]);
        assert_ne!(classes[1], classes[3]);
    }

    #[test]
    fn bisimulation_partition_distinguishes_different_futures() {
        // A -> B -> C versus A -> B (no C): the two B's are not bisimilar, hence neither are
        // the two A's.
        let g = Graph::from_edges(
            vec![Label(0), Label(1), Label(2), Label(0), Label(1)],
            &[(0, 1), (1, 2), (3, 4)],
        )
        .unwrap();
        let classes = bisimulation_partition(&g);
        assert_ne!(classes[1], classes[4]);
        assert_ne!(classes[0], classes[3]);
    }

    #[test]
    fn empty_graph_partition() {
        let g = Graph::from_edges(vec![], &[]).unwrap();
        assert!(bisimulation_partition(&g).is_empty());
    }
}

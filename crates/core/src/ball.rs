//! Shared/incremental ball construction: the [`BallForest`].
//!
//! The per-ball cost of `Match` splits into (a) building the ball `Ĝ[w, dQ]` and
//! (b) refining the relation inside it. PR 1 made (b) fast; at small radii and on sparse
//! graphs (a) dominates, and the balls of *adjacent* centers overlap almost entirely — a
//! fresh BFS per center recomputes nearly the same member set over and over.
//!
//! A `BallForest` slides one distance-annotated ball along a locality-ordered sequence of
//! centers. Moving from center `c` to a center `c'` at distance `k = dist(c, c')` uses the
//! triangle inequality `dist(c, v) − k ≤ dist(c', v) ≤ dist(c, v) + k`: every stored
//! distance shifted up by `k` is a valid upper bound for the new center, and a
//! bucket-queue repair pass (a Dijkstra with upper-bound initialisation, specialised to
//! unit weights) settles the exact new distances. Only nodes whose distance *improves*
//! below the shifted bound are ever re-expanded; nodes drifting away from the center keep
//! their shifted value untouched. Nodes entering the ball are discovered through chains of
//! strictly-improved nodes (the predecessor of an entering node on a shortest path from
//! `c'` improves strictly, by induction down to `c'` itself), so no halo beyond the ball
//! needs to be tracked; nodes leaving the ball are dropped by a final retain over the
//! member list.
//!
//! When `c'` is outside the current ball, or farther than [`MAX_SLIDE`] (the ±k window
//! then covers most of the ball and the delta degenerates to a rebuild), the forest falls
//! back to a fresh bounded BFS. [`BallStrategy`] selects between the forest and the
//! seed's fresh-BFS-per-center behaviour, mirroring how
//! [`crate::simulation::RefineStrategy`] keeps the naive fixpoint as the refinement
//! oracle; the differential tests in `tests/ball_forest_equivalence.rs` hold the two
//! bit-identical.

use ssim_graph::traversal::UNREACHABLE;
use ssim_graph::{BallScratch, BitSet, CompactBall, Graph, NodeId};

/// How ball membership is computed for the candidate centers of a strong-simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BallStrategy {
    /// Slide a [`BallForest`] along a locality-ordered center sequence, repairing the
    /// member distances incrementally between nearby centers.
    #[default]
    Incremental,
    /// Run a fresh bounded BFS for every center (the seed's behaviour). Kept as the
    /// equivalence oracle and for ablation benches.
    FreshBfs,
}

/// Which graph the ball pipeline traverses when the global dual-simulation filter is on —
/// the fourth oracle axis, next to [`crate::simulation::RefineStrategy`],
/// [`BallStrategy`] and [`crate::simulation::RefineSeed`].
///
/// With dual filtering, only *matched* nodes can ever be candidates, support an in-ball
/// pair or appear in an extracted subgraph. The optimised `Match` of the paper (Fig. 5,
/// Proposition 5) therefore extracts the match graph `Gm` once and builds its balls
/// **inside `Gm`** — membership, distances and borders are all taken w.r.t. `Gm`, and on
/// selective patterns each ball's size tracks the candidate density instead of the raw
/// degree. Everything below `strong_simulation` then speaks `Gm` ids; results are
/// translated back at `PerfectSubgraph` emission.
///
/// The axis only takes effect when `dual_filter` is enabled (without the global relation
/// there is no `Gm`); every other configuration traverses the full graph regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BallSubstrate {
    /// Build balls inside the extracted match graph `Gm` (Fig. 5 semantics: ball
    /// membership and borders use `Gm` distances).
    #[default]
    MatchGraph,
    /// Build balls in the full data graph and only prune *centers* to matched nodes —
    /// the pre-extraction behaviour, kept as the equivalence oracle and as the baseline
    /// the `gm_substrate` bench ratios are measured against.
    FullGraph,
}

/// How the forest's last [`BallForest::advance`] moved the ball, with the membership delta
/// when it is known exactly. Consumers carrying per-ball state across advances (the
/// warm-started refinement of [`crate::warm`]) key their reuse off this record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BallMove {
    /// The requested center was already the current one: membership is unchanged.
    Same,
    /// The ball slid from an adjacent center; [`BallForest::entered`] and
    /// [`BallForest::left`] hold the exact membership delta.
    Slid,
    /// The ball was rebuilt by a fresh BFS (first ball, far jump, or adaptive back-off).
    /// Any slide-delta state is stale and has been invalidated — consumers must diff
    /// memberships themselves or drop their carried state.
    Rebuilt,
}

/// Centers farther than this from the current one trigger a fresh rebuild: a shift of `k`
/// widens every distance bound by `k`, so for `k > 2` the repair pass re-expands most of
/// the ball and loses to a plain BFS.
pub const MAX_SLIDE: u32 = 2;

/// Consecutive degenerate slides (a repair that expanded at least as many nodes as a
/// fresh BFS would have) before the forest backs off to fresh rebuilds.
const DEGENERATE_STREAK: u32 = 2;

/// First back-off length: how many balls are force-rebuilt before the next probe slide.
const BACKOFF_START: u32 = 4;

/// Back-off lengths double up to this cap, so on uniformly dense graphs — where sliding
/// structurally cannot win because adjacent centers keep most distances *equal* and every
/// equal node must still be re-expanded — the probe overhead decays to under a percent,
/// while mixed graphs recover sliding within one probe.
const BACKOFF_MAX: u32 = 64;

/// A sliding radius-`r` ball over a data graph.
///
/// The forest owns a `|V|`-sized distance array (allocated once, wiped only at touched
/// indices) plus the current member list; [`BallForest::advance`] moves the ball to the
/// next center and [`BallForest::compact`] materialises the current ball as a
/// [`CompactBall`] for the matching engine.
#[derive(Debug)]
pub struct BallForest<'g> {
    graph: &'g Graph,
    radius: usize,
    /// Distance of each graph node from the current center; [`UNREACHABLE`] outside the
    /// ball. Only entries listed in `members` are ever non-sentinel.
    dist: Vec<u32>,
    /// Current ball members, unordered (local ids are member positions at compact time).
    members: Vec<NodeId>,
    /// The current center, once the first ball was built.
    center: Option<NodeId>,
    /// Per-level bucket queue shared by rebuilds and repairs; always drained after use.
    buckets: Vec<Vec<NodeId>>,
    /// Consecutive degenerate slides observed (reset by any productive slide).
    degenerate_streak: u32,
    /// Remaining balls to force-rebuild before probing with a slide again.
    fresh_penalty: u32,
    /// Length of the next back-off window.
    backoff: u32,
    /// How the last `advance` moved the ball (delta validity signal for carried state).
    last_move: BallMove,
    /// Nodes that entered the ball during the last slide (exact only when
    /// `last_move == Slid`; cleared on rebuilds so stale deltas cannot leak).
    entered: Vec<NodeId>,
    /// Nodes that left the ball during the last slide (same validity rule).
    left: Vec<NodeId>,
    /// Balls built by a fresh bounded BFS.
    pub built_fresh: usize,
    /// Balls derived incrementally from the previous center's ball.
    pub reused: usize,
}

impl<'g> BallForest<'g> {
    /// Creates an empty forest for balls of radius `radius` over `graph`.
    pub fn new(graph: &'g Graph, radius: usize) -> Self {
        BallForest {
            graph,
            radius,
            dist: vec![UNREACHABLE; graph.node_count()],
            members: Vec::new(),
            center: None,
            buckets: vec![Vec::new(); radius + 2],
            degenerate_streak: 0,
            fresh_penalty: 0,
            backoff: BACKOFF_START,
            last_move: BallMove::Rebuilt,
            entered: Vec::new(),
            left: Vec::new(),
            built_fresh: 0,
            reused: 0,
        }
    }

    /// Severs the slide chain: wipes the current ball and every piece of adaptive
    /// back-off state so the next [`BallForest::advance`] rebuilds from scratch, exactly
    /// as a freshly constructed forest would — without reallocating the `|V|`-sized
    /// distance array. The chunk scheduler calls this at every chunk boundary (a stolen
    /// chunk's first center is not adjacent to the previous one), which is what makes
    /// per-ball behaviour a function of chunk content alone, independent of which worker
    /// runs the chunk. The cumulative `built_fresh`/`reused` counters are preserved;
    /// they are harvested once per worker.
    pub fn reset_chain(&mut self) {
        for v in self.members.drain(..) {
            self.dist[v.index()] = UNREACHABLE;
        }
        self.center = None;
        self.degenerate_streak = 0;
        self.fresh_penalty = 0;
        self.backoff = BACKOFF_START;
        self.last_move = BallMove::Rebuilt;
        self.entered.clear();
        self.left.clear();
    }

    /// Whether the adaptive back-off is currently engaged: recent slides degenerated
    /// (cost ≥ a fresh build) and the forest is rebuilding every ball. This is the chunk
    /// scheduler's re-split eligibility signal — a degraded chunk has no slide chain
    /// left to protect, so halving it costs nothing and lets an idle worker share the
    /// load. Deterministic for a given center sequence.
    pub fn degraded(&self) -> bool {
        self.fresh_penalty > 0 || self.backoff > BACKOFF_START
    }

    /// The ball radius.
    #[inline]
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// The current center, when a ball has been built.
    #[inline]
    pub fn center(&self) -> Option<NodeId> {
        self.center
    }

    /// Members of the current ball, in no particular order.
    #[inline]
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Distance of `node` from the current center, when inside the current ball.
    pub fn distance(&self, node: NodeId) -> Option<usize> {
        match self.dist.get(node.index()) {
            Some(&d) if d != UNREACHABLE => Some(d as usize),
            _ => None,
        }
    }

    /// How the last [`BallForest::advance`] moved the ball.
    #[inline]
    pub fn last_move(&self) -> BallMove {
        self.last_move
    }

    /// Nodes that entered the ball during the last advance. Exact only when
    /// [`BallForest::last_move`] is [`BallMove::Slid`] (empty for `Same`, invalidated —
    /// cleared — for `Rebuilt`).
    #[inline]
    pub fn entered(&self) -> &[NodeId] {
        &self.entered
    }

    /// Nodes that left the ball during the last advance, under the same validity rule as
    /// [`BallForest::entered`].
    #[inline]
    pub fn left(&self) -> &[NodeId] {
        &self.left
    }

    /// Moves the ball to `center`, incrementally when the new center lies within
    /// [`MAX_SLIDE`] of the current one and freshly otherwise. Returns `true` when the
    /// move reused the previous ball.
    ///
    /// # Panics
    /// Panics when `center` is not a node of the forest's graph.
    pub fn advance(&mut self, center: NodeId) -> bool {
        assert!(
            self.graph.contains_node(center),
            "ball center {center} out of range"
        );
        let slide = match self.center {
            Some(prev) if prev == center => {
                self.reused += 1; // already there: built_fresh + reused == advances
                self.entered.clear();
                self.left.clear();
                self.last_move = BallMove::Same;
                return true;
            }
            Some(_) if self.fresh_penalty > 0 => {
                // Recent slides degenerated (dense neighbourhood); sit out this window.
                self.fresh_penalty -= 1;
                None
            }
            Some(_) => match self.dist[center.index()] {
                UNREACHABLE => None,
                k if k <= MAX_SLIDE => Some(k),
                _ => None,
            },
            None => None,
        };
        match slide {
            Some(k) => {
                self.slide(center, k);
                self.reused += 1;
                true
            }
            None => {
                self.rebuild(center);
                self.built_fresh += 1;
                false
            }
        }
    }

    /// Materialises the current ball as a [`CompactBall`], reusing `scratch` for the
    /// global→local map exactly like [`CompactBall::build`].
    ///
    /// # Panics
    /// Panics when no ball has been built yet.
    pub fn compact(&self, scratch: &mut BallScratch) -> CompactBall {
        let center = self.center.expect("advance before compact");
        CompactBall::from_parts_by(
            self.graph,
            center,
            self.radius,
            &self.members,
            |v, _| self.dist[v.index()],
            scratch,
        )
    }

    /// Fresh bounded BFS from `center`, wiping the previous ball's touched entries first.
    ///
    /// Also invalidates the slide-delta tracking (`entered`/`left`): a rebuild — whether
    /// forced by a far jump or by the adaptive back-off — discards the incremental
    /// relationship to the previous ball, so any relation state carried against the old
    /// delta must not be translated through it. Carried-state consumers observe
    /// [`BallMove::Rebuilt`] and fall back to a full membership diff (or a reset).
    fn rebuild(&mut self, center: NodeId) {
        self.entered.clear();
        self.left.clear();
        self.last_move = BallMove::Rebuilt;
        let graph = self.graph;
        for &v in &self.members {
            self.dist[v.index()] = UNREACHABLE;
        }
        self.members.clear();
        self.dist[center.index()] = 0;
        self.members.push(center);
        self.buckets[0].push(center);
        for level in 0..=self.radius {
            while let Some(v) = self.buckets[level].pop() {
                if level == self.radius {
                    continue;
                }
                for w in graph.out_neighbors(v).chain(graph.in_neighbors(v)) {
                    if self.dist[w.index()] == UNREACHABLE {
                        self.dist[w.index()] = level as u32 + 1;
                        self.members.push(w);
                        self.buckets[level + 1].push(w);
                    }
                }
            }
        }
        self.center = Some(center);
    }

    /// Incremental move to a center at distance `k` from the current one.
    ///
    /// Shifts every stored distance up by `k` (a valid upper bound on the new distance by
    /// the triangle inequality), then repairs with a level-bucket queue: a node is
    /// (re-)expanded only when its distance estimate strictly improves, so the work is
    /// proportional to the nodes that moved *closer* plus the nodes entering the ball —
    /// not the whole ball. Nodes whose shifted bound ends up beyond the radius are
    /// dropped at the end.
    ///
    /// The repair counts its expansions against the interior size (what a fresh BFS would
    /// have expanded); slides that save nothing feed the back-off so dense regions fall
    /// back to rebuilds after [`DEGENERATE_STREAK`] wasted repairs.
    fn slide(&mut self, center: NodeId, k: u32) {
        debug_assert!(k > 0 && self.dist[center.index()] == k);
        let graph = self.graph;
        let radius = self.radius as u32;
        self.entered.clear();
        self.left.clear();
        self.last_move = BallMove::Slid;
        for &v in &self.members {
            self.dist[v.index()] += k;
        }
        self.dist[center.index()] = 0;
        self.buckets[0].push(center);
        let mut expanded = 0usize;
        for level in 0..=self.radius {
            while let Some(v) = self.buckets[level].pop() {
                if self.dist[v.index()] as usize != level {
                    continue; // stale entry: improved again after this push
                }
                if level == self.radius {
                    continue; // border nodes reach only outside the ball
                }
                expanded += 1;
                let cand = level as u32 + 1;
                for w in graph.out_neighbors(v).chain(graph.in_neighbors(v)) {
                    let dw = self.dist[w.index()];
                    if dw > cand {
                        if dw == UNREACHABLE {
                            self.members.push(w); // entering the ball
                            self.entered.push(w);
                        }
                        self.dist[w.index()] = cand;
                        self.buckets[level + 1].push(w);
                    }
                }
            }
        }
        let mut members = std::mem::take(&mut self.members);
        let mut interior = 0usize;
        let left = &mut self.left;
        members.retain(|&v| {
            let d = self.dist[v.index()];
            if d <= radius {
                interior += usize::from(d < radius);
                true
            } else {
                self.dist[v.index()] = UNREACHABLE; // left the ball
                left.push(v);
                false
            }
        });
        self.members = members;
        self.center = Some(center);
        // A fresh BFS expands every interior node; a slide that expanded as many saved
        // nothing and paid the shift/retain overhead on top.
        if expanded >= interior {
            self.degenerate_streak += 1;
            if self.degenerate_streak >= DEGENERATE_STREAK {
                self.degenerate_streak = 0;
                self.fresh_penalty = self.backoff;
                self.backoff = (self.backoff * 2).min(BACKOFF_MAX);
            }
        } else {
            self.degenerate_streak = 0;
            self.backoff = BACKOFF_START;
        }
    }
}

/// Orders `centers` along an undirected BFS traversal of `graph`, so that consecutive
/// centers are usually adjacent and a [`BallForest`] can slide instead of rebuilding.
///
/// The traversal starts at the smallest node id and restarts at the smallest unvisited id
/// per component, making the order deterministic. Returns exactly the nodes of `centers`
/// (a permutation of it); centers filtered out upstream (e.g. by the global
/// dual-simulation filter) simply leave gaps the forest bridges or rebuilds across.
pub fn locality_center_order(graph: &Graph, centers: &[NodeId]) -> Vec<NodeId> {
    let mut wanted = BitSet::new(graph.node_count());
    for &c in centers {
        wanted.insert(c.index());
    }
    let mut visited = BitSet::new(graph.node_count());
    let mut order = Vec::with_capacity(centers.len());
    let mut queue = std::collections::VecDeque::new();
    for start in graph.nodes() {
        if visited.contains(start.index()) {
            continue;
        }
        visited.insert(start.index());
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            if wanted.contains(u.index()) {
                order.push(u);
            }
            for v in graph.out_neighbors(u).chain(graph.in_neighbors(u)) {
                if !visited.contains(v.index()) {
                    visited.insert(v.index());
                    queue.push_back(v);
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_graph::{Ball, Label};

    fn line(n: u32) -> Graph {
        Graph::from_edges(
            vec![Label(0); n as usize],
            &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>(),
        )
        .unwrap()
    }

    /// Compares the forest's current ball against a fresh [`Ball`] (members + distances).
    fn assert_matches_fresh(forest: &BallForest<'_>, graph: &Graph, center: NodeId) {
        let fresh = Ball::new(graph, center, forest.radius());
        let mut got: Vec<NodeId> = forest.members().to_vec();
        got.sort_unstable();
        let mut want: Vec<NodeId> = fresh.members().to_vec();
        want.sort_unstable();
        assert_eq!(got, want, "members of ball({center}, {})", forest.radius());
        for &v in fresh.members() {
            assert_eq!(forest.distance(v), fresh.distance(v), "distance of {v}");
        }
    }

    #[test]
    fn sliding_along_a_line_matches_fresh_bfs() {
        let g = line(30);
        let mut forest = BallForest::new(&g, 3);
        for i in 0..30 {
            let reused = forest.advance(NodeId(i));
            assert_eq!(reused, i != 0, "center {i}");
            assert_matches_fresh(&forest, &g, NodeId(i));
        }
        assert_eq!(forest.built_fresh, 1);
        assert_eq!(forest.reused, 29);
    }

    #[test]
    fn jumping_far_falls_back_to_fresh_bfs() {
        let g = line(40);
        let mut forest = BallForest::new(&g, 2);
        assert!(!forest.advance(NodeId(0)));
        assert!(
            !forest.advance(NodeId(30)),
            "jump outside the ball rebuilds"
        );
        assert_matches_fresh(&forest, &g, NodeId(30));
        assert!(forest.advance(NodeId(32)), "distance 2 slides");
        assert_matches_fresh(&forest, &g, NodeId(32));
        assert_eq!((forest.built_fresh, forest.reused), (2, 1));
    }

    #[test]
    fn sliding_backwards_and_repeating_centers() {
        let g = line(12);
        let mut forest = BallForest::new(&g, 2);
        for &i in &[5u32, 6, 5, 5, 4, 3, 4] {
            forest.advance(NodeId(i));
            assert_matches_fresh(&forest, &g, NodeId(i));
        }
    }

    #[test]
    fn radius_zero_always_rebuilds_single_node_balls() {
        let g = line(5);
        let mut forest = BallForest::new(&g, 0);
        for i in 0..5 {
            assert!(!forest.advance(NodeId(i)));
            assert_eq!(forest.members(), &[NodeId(i)]);
        }
        assert_eq!(forest.built_fresh, 5);
    }

    #[test]
    fn compact_ball_from_forest_matches_direct_build() {
        let g = line(20);
        let mut forest = BallForest::new(&g, 2);
        let mut scratch = BallScratch::new();
        let mut direct_scratch = BallScratch::new();
        for i in 0..20 {
            forest.advance(NodeId(i));
            let ball = forest.compact(&mut scratch);
            let direct = CompactBall::build(&g, NodeId(i), 2, &mut direct_scratch);
            assert_eq!(ball.node_count(), direct.node_count());
            assert_eq!(ball.center_global(), NodeId(i));
            assert_eq!(ball.global_of(ball.center()), NodeId(i));
            let mut got: Vec<NodeId> = ball.border().iter().map(|&l| ball.global_of(l)).collect();
            got.sort_unstable();
            let mut want: Vec<NodeId> = direct
                .border()
                .iter()
                .map(|&l| direct.global_of(l))
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "border of ball({i})");
            ball.recycle(&mut scratch);
            direct.recycle(&mut direct_scratch);
        }
    }

    #[test]
    fn locality_order_is_a_permutation_preferring_adjacency() {
        let g = line(16);
        let centers: Vec<NodeId> = g.nodes().collect();
        let order = locality_center_order(&g, &centers);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, centers);
        // On a line the BFS order steps by one, so every consecutive pair is adjacent.
        for pair in order.windows(2) {
            let (a, b) = (pair[0].0 as i64, pair[1].0 as i64);
            assert_eq!((a - b).abs(), 1, "consecutive centers {a},{b}");
        }
    }

    #[test]
    fn slide_delta_tracks_entered_and_left_exactly() {
        let g = line(30);
        let mut forest = BallForest::new(&g, 3);
        forest.advance(NodeId(10));
        assert_eq!(forest.last_move(), BallMove::Rebuilt);
        assert!(forest.entered().is_empty() && forest.left().is_empty());
        // Slide 10 -> 11 on a line with radius 3: node 7 leaves, node 14 enters.
        forest.advance(NodeId(11));
        assert_eq!(forest.last_move(), BallMove::Slid);
        assert_eq!(forest.entered(), &[NodeId(14)]);
        assert_eq!(forest.left(), &[NodeId(7)]);
        // Same center again: delta is empty but valid.
        forest.advance(NodeId(11));
        assert_eq!(forest.last_move(), BallMove::Same);
        assert!(forest.entered().is_empty() && forest.left().is_empty());
        // The delta always reconciles the previous member set with the current one.
        let before: Vec<NodeId> = {
            let mut m = forest.members().to_vec();
            m.sort_unstable();
            m
        };
        forest.advance(NodeId(13));
        let mut expect: Vec<NodeId> = before
            .iter()
            .copied()
            .filter(|v| !forest.left().contains(v))
            .chain(forest.entered().iter().copied())
            .collect();
        expect.sort_unstable();
        let mut got = forest.members().to_vec();
        got.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn rebuild_invalidates_slide_delta() {
        let g = line(40);
        let mut forest = BallForest::new(&g, 2);
        forest.advance(NodeId(0));
        forest.advance(NodeId(1));
        assert_eq!(forest.last_move(), BallMove::Slid);
        assert!(!forest.entered().is_empty());
        // A far jump rebuilds and must clear the stale slide delta.
        forest.advance(NodeId(30));
        assert_eq!(forest.last_move(), BallMove::Rebuilt);
        assert!(
            forest.entered().is_empty() && forest.left().is_empty(),
            "rebuild left a stale slide delta behind"
        );
    }

    #[test]
    fn backoff_rebuilds_report_rebuilt_moves() {
        // A complete-ish dense graph makes every slide degenerate: after
        // DEGENERATE_STREAK slides the forest backs off and the forced rebuilds must
        // report Rebuilt (carried relation state hinges on this signal).
        let n = 12u32;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    edges.push((i, j));
                }
            }
        }
        let g = Graph::from_edges(vec![Label(0); n as usize], &edges).unwrap();
        let mut forest = BallForest::new(&g, 1);
        let mut saw_backoff_rebuild = false;
        let mut prev_contained_next = false;
        for i in 0..n {
            let reused = forest.advance(NodeId(i));
            if !reused && i > 0 && prev_contained_next {
                // The center was inside the previous ball yet the forest rebuilt:
                // that is the back-off, and the move must say so.
                assert_eq!(forest.last_move(), BallMove::Rebuilt);
                assert!(forest.entered().is_empty() && forest.left().is_empty());
                saw_backoff_rebuild = true;
            }
            prev_contained_next = forest.distance(NodeId((i + 1) % n)).is_some();
            assert_matches_fresh(&forest, &g, NodeId(i));
        }
        assert!(saw_backoff_rebuild, "dense graph never triggered back-off");
    }

    #[test]
    fn locality_order_respects_the_candidate_filter() {
        let g = line(10);
        let centers = vec![NodeId(8), NodeId(2), NodeId(4)];
        let order = locality_center_order(&g, &centers);
        assert_eq!(order, vec![NodeId(2), NodeId(4), NodeId(8)]);
    }
}

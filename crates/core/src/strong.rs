//! Strong simulation `Q ≺LD G`: the `Match` and `Match+` algorithms (Section 4, Fig. 3).
//!
//! `Match` inspects, for every data node `w`, the ball `Ĝ[w, dQ]` of radius `dQ` (the
//! pattern diameter), computes the maximum dual-simulation relation inside the ball
//! (procedure `DualSim`), and extracts the connected component of the resulting match graph
//! that contains `w` (procedure `ExtractMaxPG`). The set of all such *maximum perfect
//! subgraphs* is the answer; by Proposition 4 it contains at most `|V|` elements.
//!
//! `Match+` layers the three optimisations of Section 4.2 on top: query minimization
//! ([`crate::minimize`]), dual-simulation filtering ([`crate::dual_filter`]) and connectivity
//! pruning ([`crate::pruning`]). All of them preserve the result exactly; the configuration
//! is expressed with [`MatchConfig`] so the ablation benches can toggle them independently.

use crate::dual::{dual_simulation, refine_dual};
use crate::dual_filter::refine_projected;
use crate::match_graph::{extract_max_perfect_subgraph, PerfectSubgraph};
use crate::minimize::minimize_pattern;
use crate::pruning::prune_by_connectivity;
use crate::relation::MatchRelation;
use crate::simulation::initial_candidates;
use ssim_graph::{Ball, Graph, NodeId, Pattern};
use std::collections::BTreeSet;

/// Configuration of the strong-simulation matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchConfig {
    /// Minimise the pattern with `minQ` before matching (Theorem 6).
    pub minimize_query: bool,
    /// Compute the global dual-simulation relation once and filter it per ball
    /// (`dualFilter`, Fig. 5) instead of running `DualSim` from scratch in every ball.
    pub dual_filter: bool,
    /// Prune ball candidates that are not connected to the ball center through other
    /// candidates (Example 6) before refinement.
    pub connectivity_pruning: bool,
    /// Override the ball radius; `None` uses the pattern diameter `dQ` as in the paper.
    pub radius_override: Option<usize>,
    /// Drop structurally identical perfect subgraphs discovered from different centers.
    pub deduplicate: bool,
}

impl Default for MatchConfig {
    /// The plain `Match` algorithm of Fig. 3 — no optimisations, no deduplication.
    fn default() -> Self {
        MatchConfig {
            minimize_query: false,
            dual_filter: false,
            connectivity_pruning: false,
            radius_override: None,
            deduplicate: false,
        }
    }
}

impl MatchConfig {
    /// The plain `Match` algorithm (Fig. 3).
    pub fn basic() -> Self {
        Self::default()
    }

    /// `Match+`: all optimisations of Section 4.2 enabled.
    pub fn optimized() -> Self {
        MatchConfig {
            minimize_query: true,
            dual_filter: true,
            connectivity_pruning: true,
            radius_override: None,
            deduplicate: false,
        }
    }

    /// Sets an explicit ball radius instead of the pattern diameter.
    pub fn with_radius(mut self, radius: usize) -> Self {
        self.radius_override = Some(radius);
        self
    }

    /// Enables structural deduplication of the returned perfect subgraphs.
    pub fn with_deduplication(mut self) -> Self {
        self.deduplicate = true;
        self
    }
}

/// Counters describing the work performed by a strong-simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Number of candidate ball centers considered (= `|V|` without dual filtering).
    pub balls_considered: usize,
    /// Balls actually refined (centers surviving the global dual-simulation filter).
    pub balls_processed: usize,
    /// Balls skipped because their center cannot match any pattern node.
    pub balls_skipped: usize,
    /// Balls whose projected relation required at least one removal (dual filter only).
    pub balls_with_invalid_matches: usize,
    /// Total `(u, v)` pairs removed by the per-ball dual filter.
    pub filter_removed_pairs: usize,
    /// Perfect subgraphs found (before deduplication).
    pub perfect_subgraphs: usize,
    /// `(original, minimised)` pattern sizes when query minimization ran.
    pub pattern_sizes: Option<(usize, usize)>,
    /// Ball radius that was used.
    pub radius: usize,
}

/// The result of a strong-simulation run: the set `Θ` of maximum perfect subgraphs plus the
/// work statistics.
#[derive(Debug, Clone)]
pub struct MatchOutput {
    /// Maximum perfect subgraphs, in ascending order of their ball centers.
    pub subgraphs: Vec<PerfectSubgraph>,
    /// Work counters.
    pub stats: MatchStats,
}

impl MatchOutput {
    /// Returns `true` when at least one perfect subgraph was found, i.e. `Q ≺LD G`.
    pub fn is_match(&self) -> bool {
        !self.subgraphs.is_empty()
    }

    /// The union of data nodes across all perfect subgraphs.
    pub fn matched_nodes(&self) -> BTreeSet<NodeId> {
        self.subgraphs.iter().flat_map(|s| s.nodes.iter().copied()).collect()
    }

    /// Data nodes matched to a specific pattern node, across all perfect subgraphs.
    pub fn matches_of(&self, pattern_node: NodeId) -> BTreeSet<NodeId> {
        self.subgraphs.iter().flat_map(|s| s.matches_of(pattern_node)).collect()
    }

    /// Total number of matched data nodes (with multiplicity across subgraphs collapsed).
    pub fn matched_node_count(&self) -> usize {
        self.matched_nodes().len()
    }

    /// Structurally distinct perfect subgraphs (different centers may discover the same
    /// node/edge set).
    pub fn distinct_subgraphs(&self) -> Vec<&PerfectSubgraph> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for s in &self.subgraphs {
            let key: (Vec<u32>, Vec<(u32, u32)>) = (
                s.nodes.iter().map(|n| n.0).collect(),
                s.edges.iter().map(|(a, b)| (a.0, b.0)).collect(),
            );
            if seen.insert(key) {
                out.push(s);
            }
        }
        out
    }
}

/// Runs strong simulation of `pattern` over `data` with the given configuration.
///
/// This is Algorithm `Match` (Fig. 3) when `config` is [`MatchConfig::basic`] and `Match+`
/// when it is [`MatchConfig::optimized`]; any other combination toggles individual
/// optimisations for ablation studies.
pub fn strong_simulation(pattern: &Pattern, data: &Graph, config: &MatchConfig) -> MatchOutput {
    let mut stats = MatchStats::default();

    // Optimisation 1: query minimization. The ball radius stays the *original* diameter
    // (Lemma 3). Results are translated back to the original pattern nodes at the end so the
    // output is expressed against the caller's pattern regardless of the configuration.
    let minimized;
    let mut class_members: Vec<Vec<NodeId>> = Vec::new();
    let (effective_pattern, radius) = if config.minimize_query {
        minimized = minimize_pattern(pattern);
        stats.pattern_sizes = Some((minimized.original_size, minimized.pattern.size()));
        class_members = vec![Vec::new(); minimized.pattern.node_count()];
        for (original_index, class) in minimized.class_of.iter().enumerate() {
            class_members[class.index()].push(NodeId::from_index(original_index));
        }
        let radius = config.radius_override.unwrap_or(minimized.original_diameter);
        (&minimized.pattern, radius)
    } else {
        (pattern, config.radius_override.unwrap_or(pattern.diameter()))
    };
    stats.radius = radius;

    // Optimisation 2 (part 1): the global dual-simulation relation, computed once.
    let global_relation: Option<MatchRelation> = if config.dual_filter {
        match dual_simulation(effective_pattern, data) {
            Some(rel) => Some(rel),
            None => {
                // The whole graph does not even dual-simulate the pattern: no ball can.
                stats.balls_considered = data.node_count();
                stats.balls_skipped = data.node_count();
                return MatchOutput { subgraphs: Vec::new(), stats };
            }
        }
    } else {
        None
    };
    let global_matched = global_relation.as_ref().map(MatchRelation::matched_data_nodes);

    let mut subgraphs = Vec::new();
    for center in data.nodes() {
        stats.balls_considered += 1;
        // Balls whose center cannot match any pattern node are skipped outright.
        if let Some(matched) = &global_matched {
            if !matched.contains(center.index()) {
                stats.balls_skipped += 1;
                continue;
            }
        }
        stats.balls_processed += 1;
        let ball = Ball::new(data, center, radius);
        let view = ball.view(data);

        // Starting relation: either the projected global relation or fresh label candidates.
        let start = match &global_relation {
            Some(global) => global.project(ball.membership()),
            None => initial_candidates(effective_pattern, &view),
        };

        // Optimisation 3: connectivity pruning around the center.
        let start = if config.connectivity_pruning {
            match prune_by_connectivity(effective_pattern, &view, center, &start) {
                Some(pruned) => pruned,
                None => continue, // center cannot match: no perfect subgraph in this ball
            }
        } else {
            start
        };

        // Refinement: border-seeded work queue when starting from the projected global
        // relation, full fixpoint otherwise.
        let relation = if config.dual_filter {
            let mut removed = 0usize;
            let refined =
                refine_projected(effective_pattern, &view, &ball, start, Some(&mut removed));
            if removed > 0 {
                stats.balls_with_invalid_matches += 1;
                stats.filter_removed_pairs += removed;
            }
            refined
        } else {
            refine_dual(effective_pattern, &view, start)
        };
        let Some(relation) = relation else { continue };

        if let Some(mut subgraph) =
            extract_max_perfect_subgraph(effective_pattern, &view, &relation, center, radius)
        {
            // Express the relation in terms of the caller's pattern nodes when the matcher
            // ran on the minimised pattern.
            if config.minimize_query {
                let mut expanded = Vec::with_capacity(subgraph.relation.len());
                for (class_node, data_node) in &subgraph.relation {
                    for &original in &class_members[class_node.index()] {
                        expanded.push((original, *data_node));
                    }
                }
                expanded.sort_unstable();
                subgraph.relation = expanded;
            }
            subgraphs.push(subgraph);
        }
    }

    if config.deduplicate {
        let distinct: Vec<PerfectSubgraph> = {
            let output = MatchOutput { subgraphs, stats: stats.clone() };
            output.distinct_subgraphs().into_iter().cloned().collect()
        };
        subgraphs = distinct;
    }
    stats.perfect_subgraphs = subgraphs.len();
    MatchOutput { subgraphs, stats }
}

/// Returns `true` when `Q ≺LD G`, i.e. some ball of `G` contains a perfect subgraph.
pub fn strong_simulates(pattern: &Pattern, data: &Graph) -> bool {
    strong_simulation(pattern, data, &MatchConfig::basic()).is_match()
}

/// Convenience wrapper for the fully optimised matcher (`Match+`).
pub fn strong_simulation_plus(pattern: &Pattern, data: &Graph) -> MatchOutput {
    strong_simulation(pattern, data, &MatchConfig::optimized())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_graph::{GraphBuilder, Label};

    /// Builds the running example of the paper (Fig. 1): pattern Q1 and data graph G1.
    ///
    /// Q1: HR -> SE, HR -> Bio, SE -> Bio, DM -> Bio, DM <-> AI.
    /// G1: one connected component where Bio4 satisfies every requirement, plus components
    /// with partially-recommended biologists and a long AI/DM cycle.
    pub(crate) fn figure1() -> (Pattern, Graph, NodeId) {
        // Labels: HR=0, SE=1, Bio=2, DM=3, AI=4
        let pattern = Pattern::from_edges(
            vec![Label(0), Label(1), Label(2), Label(3), Label(4)],
            &[(0, 1), (0, 2), (1, 2), (3, 2), (3, 4), (4, 3)],
        )
        .unwrap();

        let mut b = GraphBuilder::new();
        // Component 1: HR1 -> Bio1 (recommended by HR only).
        let hr1 = b.add_node("HR");
        let bio1 = b.add_node("Bio");
        b.add_edge(hr1, bio1);
        // Component 2: SE1 -> Bio2 (recommended by SE only).
        let se1 = b.add_node("SE");
        let bio2 = b.add_node("Bio");
        b.add_edge(se1, bio2);
        // Component 3: the long AI/DM cycle feeding Bio3 (k = 3 pairs).
        let bio3 = b.add_node("Bio");
        let mut cycle_nodes = Vec::new();
        for _ in 0..3 {
            let ai = b.add_node("AI");
            let dm = b.add_node("DM");
            cycle_nodes.push((ai, dm));
            b.add_edge(dm, bio3);
        }
        for i in 0..cycle_nodes.len() {
            let (ai, dm) = cycle_nodes[i];
            b.add_edge(ai, dm);
            let (next_ai, _) = cycle_nodes[(i + 1) % cycle_nodes.len()];
            b.add_edge(dm, next_ai);
        }
        // Component 4: the good one around Bio4.
        let hr2 = b.add_node("HR");
        let se2 = b.add_node("SE");
        let bio4 = b.add_node("Bio");
        let dm1p = b.add_node("DM");
        let dm2p = b.add_node("DM");
        let ai1p = b.add_node("AI");
        let ai2p = b.add_node("AI");
        b.add_edge(hr2, se2);
        b.add_edge(hr2, bio4);
        b.add_edge(se2, bio4);
        b.add_edge(dm1p, bio4);
        b.add_edge(dm2p, bio4);
        b.add_edge(dm1p, ai1p);
        b.add_edge(ai1p, dm1p);
        b.add_edge(dm2p, ai2p);
        b.add_edge(ai2p, dm2p);
        let (graph, interner) = b.build_with_interner();
        // Translate the string labels to the numeric labels used by the pattern.
        // (The builder interned HR=0, Bio=1, SE=2, AI=3, DM=4 in insertion order; rebuild the
        // data graph with the pattern's labelling so both sides agree.)
        let relabel = |l: ssim_graph::Label| -> Label {
            match interner.name(l).unwrap() {
                "HR" => Label(0),
                "SE" => Label(1),
                "Bio" => Label(2),
                "DM" => Label(3),
                "AI" => Label(4),
                other => panic!("unexpected label {other}"),
            }
        };
        let labels: Vec<Label> = graph.nodes().map(|v| relabel(graph.label(v))).collect();
        let edges: Vec<(u32, u32)> = graph.edges().map(|(a, b)| (a.0, b.0)).collect();
        let data = Graph::from_edges(labels, &edges).unwrap();
        (pattern, data, bio4)
    }

    #[test]
    fn figure1_strong_simulation_finds_only_bio4() {
        let (pattern, data, bio4) = figure1();
        let bio_label = Label(2);
        // Plain simulation matches every biologist (Example 1)…
        let sim = crate::simulation::graph_simulation(&pattern, &data).unwrap();
        let sim_bios: Vec<NodeId> = sim
            .candidates(NodeId(2))
            .iter()
            .map(NodeId::from_index)
            .collect();
        assert_eq!(sim_bios.len(), 4, "graph simulation keeps all four biologists");
        // …strong simulation keeps only Bio4 (Example 2(3)).
        let result = strong_simulation(&pattern, &data, &MatchConfig::basic());
        assert!(result.is_match());
        let matched_bios: Vec<NodeId> = result
            .matches_of(NodeId(2))
            .into_iter()
            .filter(|v| data.label(*v) == bio_label)
            .collect();
        assert_eq!(matched_bios, vec![bio4]);
        // The long AI/DM cycle is not part of any perfect subgraph.
        let matched = result.matched_nodes();
        for v in data.nodes() {
            if matched.contains(&v) {
                // every matched node lives in Bio4's component
                assert!(
                    ssim_graph::traversal::undirected_distance(&data, v, bio4).is_some(),
                    "matched node {v} is outside Bio4's component"
                );
            }
        }
    }

    #[test]
    fn figure1_all_configs_agree() {
        let (pattern, data, _) = figure1();
        let base = strong_simulation(&pattern, &data, &MatchConfig::basic());
        for config in [
            MatchConfig { dual_filter: true, ..MatchConfig::basic() },
            MatchConfig { connectivity_pruning: true, ..MatchConfig::basic() },
            MatchConfig { minimize_query: true, ..MatchConfig::basic() },
            MatchConfig::optimized(),
        ] {
            let out = strong_simulation(&pattern, &data, &config);
            assert_eq!(
                base.matched_nodes(),
                out.matched_nodes(),
                "config {config:?} changed the matched node set"
            );
            assert_eq!(
                base.subgraphs.len(),
                out.subgraphs.len(),
                "config {config:?} changed the number of perfect subgraphs"
            );
        }
    }

    #[test]
    fn dual_filter_skips_unmatchable_centers() {
        let (pattern, data, _) = figure1();
        let out = strong_simulation(&pattern, &data, &MatchConfig::optimized());
        assert!(out.stats.balls_skipped > 0, "expected the global filter to skip some balls");
        assert_eq!(
            out.stats.balls_considered,
            data.node_count(),
            "every node is considered as a potential center"
        );
        assert_eq!(
            out.stats.balls_processed + out.stats.balls_skipped,
            out.stats.balls_considered
        );
        assert!(out.stats.pattern_sizes.is_some());
        assert_eq!(out.stats.radius, pattern.diameter());
    }

    #[test]
    fn no_match_when_label_absent() {
        let pattern = Pattern::from_edges(vec![Label(0), Label(9)], &[(0, 1)]).unwrap();
        let data = Graph::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        for config in [MatchConfig::basic(), MatchConfig::optimized()] {
            let out = strong_simulation(&pattern, &data, &config);
            assert!(!out.is_match());
            assert_eq!(out.stats.perfect_subgraphs, 0);
        }
        assert!(!strong_simulates(&pattern, &data));
    }

    #[test]
    fn proposition4_bounded_number_of_matches() {
        let (pattern, data, _) = figure1();
        let out = strong_simulation(&pattern, &data, &MatchConfig::basic());
        assert!(out.subgraphs.len() <= data.node_count());
    }

    #[test]
    fn proposition3_diameter_bound() {
        let (pattern, data, _) = figure1();
        let out = strong_simulation(&pattern, &data, &MatchConfig::basic());
        for s in &out.subgraphs {
            let d = ssim_graph::metrics::induced_diameter(&data, &s.nodes);
            assert!(
                d <= 2 * pattern.diameter(),
                "perfect subgraph diameter {d} exceeds 2·dQ = {}",
                2 * pattern.diameter()
            );
        }
    }

    #[test]
    fn radius_override_and_dedup() {
        let (pattern, data, _) = figure1();
        let config = MatchConfig::basic().with_radius(1).with_deduplication();
        let out = strong_simulation(&pattern, &data, &config);
        assert_eq!(out.stats.radius, 1);
        // Deduplicated output has no structurally identical subgraphs.
        let distinct = out.distinct_subgraphs().len();
        assert_eq!(distinct, out.subgraphs.len());
    }

    #[test]
    fn single_node_pattern_matches_every_labelled_node() {
        let pattern = Pattern::from_edges(vec![Label(2)], &[]).unwrap();
        let (_, data, _) = figure1();
        let out = strong_simulation(&pattern, &data, &MatchConfig::basic());
        // Every Bio node forms its own perfect subgraph (radius 0 balls).
        let bios = data.nodes().filter(|v| data.label(*v) == Label(2)).count();
        assert_eq!(out.subgraphs.len(), bios);
        assert!(out.subgraphs.iter().all(|s| s.node_count() == 1));
    }

    #[test]
    fn strong_simulation_plus_matches_basic() {
        let (pattern, data, _) = figure1();
        let basic = strong_simulation(&pattern, &data, &MatchConfig::basic());
        let plus = strong_simulation_plus(&pattern, &data);
        assert_eq!(basic.matched_nodes(), plus.matched_nodes());
    }
}

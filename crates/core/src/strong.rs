//! Strong simulation `Q ≺LD G`: the `Match` and `Match+` algorithms (Section 4, Fig. 3).
//!
//! `Match` inspects, for every data node `w`, the ball `Ĝ[w, dQ]` of radius `dQ` (the
//! pattern diameter), computes the maximum dual-simulation relation inside the ball
//! (procedure `DualSim`), and extracts the connected component of the resulting match graph
//! that contains `w` (procedure `ExtractMaxPG`). The set of all such *maximum perfect
//! subgraphs* is the answer; by Proposition 4 it contains at most `|V|` elements.
//!
//! `Match+` layers the three optimisations of Section 4.2 on top: query minimization
//! ([`crate::minimize`]), dual-simulation filtering ([`crate::dual_filter`]) and connectivity
//! pruning ([`crate::pruning`]). All of them preserve the result exactly; the configuration
//! is expressed with [`MatchConfig`] so the ablation benches can toggle them independently.
//!
//! # Engine
//!
//! Independent of the paper-level optimisations, the engine has five performance layers,
//! each with a seed-compatible fallback kept for ablation and as an equivalence oracle:
//!
//! * **worklist refinement** ([`RefineStrategy::Worklist`]) — counter-based incremental
//!   removal propagation instead of the naive `while changed` re-scan,
//! * **ball-local compact indexing** (`compact_balls`) — each ball is remapped to dense ids
//!   `0..|ball|` ([`CompactBall`]) so relations, counters and adjacency are ball-sized
//!   instead of `|V|`-sized,
//! * **incremental ball construction** ([`BallStrategy::Incremental`]) — candidate centers
//!   are walked in locality order and each worker slides one [`crate::ball::BallForest`]
//!   ball along its range, repairing distances between adjacent centers instead of
//!   re-running a BFS per center ([`BallStrategy::FreshBfs`] is the oracle),
//! * **warm-started refinement** ([`RefineSeed::WarmStart`]) — on the sliding path each
//!   worker also carries the previous ball's converged relation and incrementally
//!   maintained match graph across the slide ([`crate::warm`]), re-verifying only the
//!   membership delta instead of refining from scratch ([`RefineSeed::FromScratch`] is
//!   the oracle),
//! * **parallel ball processing** (`parallel`) — the center order is cut into
//!   locality-contiguous chunks ([`crate::parallel::chunk_plan`], a function of the
//!   center count alone) and fanned out over scoped worker threads through a
//!   work-stealing scheduler ([`crate::parallel::StealScheduler`]): each worker keeps
//!   its ball forest and warm carry intact *within* a chunk, resets them at every chunk
//!   boundary, and idle workers steal whole chunks; subgraphs are re-sorted by center id
//!   and stats merged by summation, so the output — including every counter except the
//!   scheduling-dependent `chunks_stolen` — is bit-identical to the sequential run at
//!   any thread count,
//! * **match-graph ball substrate** ([`BallSubstrate::MatchGraph`]) — with `dual_filter`
//!   on, the matched-node set is extracted once as a dense renumbered subgraph `Gm`
//!   ([`ssim_graph::ExtractedSubgraph`]) and the entire ball pipeline — locality order,
//!   forest slides, compact balls, warm carries, pruning, extraction — runs inside it,
//!   translating ids back only at [`PerfectSubgraph`] emission
//!   ([`BallSubstrate::FullGraph`] is the oracle).

use crate::ball::{locality_center_order, BallForest, BallStrategy, BallSubstrate};
use crate::dual::{dual_simulation_with, refine_dual_with};
use crate::dual_filter::refine_projected;
use crate::incremental::{PreparedGlobal, UpdatePlan};
use crate::match_graph::{extract_max_perfect_subgraph, PerfectSubgraph};
use crate::minimize::minimize_pattern;
use crate::parallel::{
    available_threads, chunk_plan, effective_workers, panic_message, par_workers, StealScheduler,
};
use crate::pruning::prune_by_connectivity;
use crate::relation::MatchRelation;
use crate::repetition::{
    enforce_repetition, RepetitionMode, RepetitionOutcome, RepetitionSemantics,
};
use crate::simulation::{initial_candidates, RefineSeed, RefineStrategy};
use crate::warm::WarmMatcher;
use ssim_graph::{
    Ball, BallScratch, BitSet, CompactBall, ExtractedSubgraph, Graph, NodeId, Pattern,
};
use std::cell::Cell;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Configuration of the strong-simulation matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchConfig {
    /// Minimise the pattern with `minQ` before matching (Theorem 6).
    pub minimize_query: bool,
    /// Compute the global dual-simulation relation once and filter it per ball
    /// (`dualFilter`, Fig. 5) instead of running `DualSim` from scratch in every ball.
    pub dual_filter: bool,
    /// Prune ball candidates that are not connected to the ball center through other
    /// candidates (Example 6) before refinement.
    pub connectivity_pruning: bool,
    /// Override the ball radius; `None` uses the pattern diameter `dQ` as in the paper.
    pub radius_override: Option<usize>,
    /// Drop structurally identical perfect subgraphs discovered from different centers.
    pub deduplicate: bool,
    /// Which refinement engine to run inside each ball (and for the global dual filter).
    pub refine_strategy: RefineStrategy,
    /// Process balls on all available cores. The output is deterministic either way.
    pub parallel: bool,
    /// Explicit worker count for the ball fan-out (benchmarks, scaling tests). `None`
    /// sizes the pool automatically and runs small inputs inline.
    pub thread_limit: Option<usize>,
    /// Remap each ball to dense local ids and match over ball-sized bitsets. Disabling
    /// falls back to the seed's `|V|`-sized relations over membership-filtered views.
    pub compact_balls: bool,
    /// How ball membership is produced: a sliding incremental [`BallForest`] per worker
    /// (the default) or a fresh BFS per center (the seed's behaviour, kept as the
    /// equivalence oracle). Only effective together with `compact_balls`; the legacy
    /// `|V|`-sized path always builds fresh balls.
    pub ball_strategy: BallStrategy,
    /// How the per-ball refinement is seeded on the sliding-ball path: warm-started from
    /// the previous ball's converged relation (the default) or from scratch (the
    /// equivalence oracle, and the only behaviour of every non-sliding engine shape).
    pub refine_seed: RefineSeed,
    /// Which graph the ball pipeline traverses when `dual_filter` is on: the extracted
    /// match graph `Gm` (the default — Fig. 5's ball substrate) or the full data graph
    /// (the pre-extraction behaviour, kept as the equivalence oracle). Ignored without
    /// `dual_filter` — there is no `Gm` to extract.
    pub ball_substrate: BallSubstrate,
    /// How [`crate::incremental::IncrementalMatcher`] reacts to graph deltas: maintain
    /// the cached state under the update and re-run only the dirty balls (the default)
    /// or recompute the whole match from scratch (the equivalence oracle). One-shot
    /// [`strong_simulation`] calls ignore the axis — there is no cached state to update.
    pub update_plan: UpdatePlan,
    /// How equal-labelled pattern nodes may be realised by data nodes — the sixth oracle
    /// axis. [`RepetitionSemantics::Free`] is the paper's behaviour (and the seed
    /// reference); `Distinct`/`Equal` run the per-ball repetition closure of
    /// [`crate::repetition`] after refinement converges (subject to its budget/bail
    /// contract).
    pub repetition: RepetitionSemantics,
    /// Which implementation enforces a non-`Free` repetition semantics: the integrated
    /// marked witness search (the default) or the naive per-pair oracle (the
    /// equivalence oracle). Ignored under [`RepetitionSemantics::Free`].
    pub repetition_mode: RepetitionMode,
}

impl Default for MatchConfig {
    /// The plain `Match` algorithm of Fig. 3 — no paper optimisations, no deduplication —
    /// running on the fast engine (worklist + compact balls + parallel).
    fn default() -> Self {
        MatchConfig {
            minimize_query: false,
            dual_filter: false,
            connectivity_pruning: false,
            radius_override: None,
            deduplicate: false,
            refine_strategy: RefineStrategy::Worklist,
            parallel: true,
            thread_limit: None,
            compact_balls: true,
            ball_strategy: BallStrategy::Incremental,
            refine_seed: RefineSeed::WarmStart,
            ball_substrate: BallSubstrate::MatchGraph,
            update_plan: UpdatePlan::Incremental,
            repetition: RepetitionSemantics::Free,
            repetition_mode: RepetitionMode::Integrated,
        }
    }
}

impl MatchConfig {
    /// The plain `Match` algorithm (Fig. 3).
    pub fn basic() -> Self {
        Self::default()
    }

    /// `Match+`: all optimisations of Section 4.2 enabled.
    pub fn optimized() -> Self {
        MatchConfig {
            minimize_query: true,
            dual_filter: true,
            connectivity_pruning: true,
            ..Self::default()
        }
    }

    /// The seed's engine: naive fixpoint refinement, sequential, `|V|`-sized ball
    /// relations. Used by benches as the speedup baseline and by tests as an oracle.
    pub fn seed_reference() -> Self {
        MatchConfig {
            refine_strategy: RefineStrategy::NaiveFixpoint,
            parallel: false,
            compact_balls: false,
            ball_strategy: BallStrategy::FreshBfs,
            refine_seed: RefineSeed::FromScratch,
            ball_substrate: BallSubstrate::FullGraph,
            update_plan: UpdatePlan::Recompute,
            ..Self::default()
        }
    }

    /// Sets an explicit ball radius instead of the pattern diameter.
    pub fn with_radius(mut self, radius: usize) -> Self {
        self.radius_override = Some(radius);
        self
    }

    /// Enables structural deduplication of the returned perfect subgraphs.
    pub fn with_deduplication(mut self) -> Self {
        self.deduplicate = true;
        self
    }

    /// Forces sequential ball processing.
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Forces an explicit worker count for the ball fan-out (bypasses the small-input
    /// cutoff; used by scaling benches and the parallel-merge tests).
    pub fn with_thread_limit(mut self, threads: usize) -> Self {
        self.parallel = true;
        self.thread_limit = Some(threads);
        self
    }

    /// Selects the refinement engine.
    pub fn with_refine_strategy(mut self, strategy: RefineStrategy) -> Self {
        self.refine_strategy = strategy;
        self
    }

    /// Selects how balls are constructed.
    pub fn with_ball_strategy(mut self, strategy: BallStrategy) -> Self {
        self.ball_strategy = strategy;
        self
    }

    /// Selects how the per-ball refinement is seeded on the sliding-ball path.
    pub fn with_refine_seed(mut self, seed: RefineSeed) -> Self {
        self.refine_seed = seed;
        self
    }

    /// Selects which graph the ball pipeline traverses under `dual_filter`.
    pub fn with_ball_substrate(mut self, substrate: BallSubstrate) -> Self {
        self.ball_substrate = substrate;
        self
    }

    /// Selects how the incremental matcher reacts to graph deltas.
    pub fn with_update_plan(mut self, plan: UpdatePlan) -> Self {
        self.update_plan = plan;
        self
    }

    /// Selects how equal-labelled pattern nodes may be realised by data nodes.
    pub fn with_repetition(mut self, semantics: RepetitionSemantics) -> Self {
        self.repetition = semantics;
        self
    }

    /// Selects which implementation enforces a non-`Free` repetition semantics.
    pub fn with_repetition_mode(mut self, mode: RepetitionMode) -> Self {
        self.repetition_mode = mode;
        self
    }
}

/// Counters describing the work performed by a strong-simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Number of candidate ball centers considered (= `|V|` without dual filtering).
    pub balls_considered: usize,
    /// Balls actually refined (centers surviving the global dual-simulation filter).
    pub balls_processed: usize,
    /// Balls skipped because their center cannot match any pattern node.
    pub balls_skipped: usize,
    /// Balls whose projected relation required at least one removal (dual filter only).
    pub balls_with_invalid_matches: usize,
    /// Total `(u, v)` pairs removed by the per-ball dual filter.
    pub filter_removed_pairs: usize,
    /// Balls constructed by a fresh bounded BFS.
    pub balls_built: usize,
    /// Balls derived incrementally from the previous center's ball
    /// ([`BallStrategy::Incremental`] only; `balls_built + balls_reused ==
    /// balls_processed`).
    pub balls_reused: usize,
    /// Balls whose refinement was warm-started from the previous ball's converged
    /// relation ([`RefineSeed::WarmStart`] on the sliding path only).
    pub balls_warm_started: usize,
    /// Pairs fed to the per-ball refinement: the delta suspects on warm-started balls,
    /// the full start relation otherwise. Seed-dependent instrumentation by design —
    /// the warm/scratch ratio is the `refine_warm` bench's `seeded_ratio`.
    pub seeded_pairs: usize,
    /// Balls whose match graph was updated incrementally from the previous ball's
    /// instead of rebuilt (warm path with connectivity pruning off).
    pub match_graphs_reused: usize,
    /// Nodes of the extracted match graph `Gm` ([`BallSubstrate::MatchGraph`] with
    /// `dual_filter` only; 0 when no extraction ran). `gm_nodes / balls_considered` is
    /// the extraction selectivity the experiment reports print.
    pub gm_nodes: usize,
    /// Edges of the extracted match graph `Gm` (same validity rule as `gm_nodes`).
    pub gm_edges: usize,
    /// Chunks of the center order executed by the fan-out: the
    /// [`crate::parallel::chunk_plan`] chunks plus any re-splits. Both the plan and the
    /// re-split decisions are functions of the input alone, so this is identical at
    /// every thread count (including the sequential run).
    pub chunks_processed: usize,
    /// Chunks executed by a worker other than the one they were dealt to. **The one
    /// scheduling-dependent counter**: it varies with thread count and steal timing, so
    /// the equivalence suites exclude it from their bit-identity comparisons.
    pub chunks_stolen: usize,
    /// Chunks halved mid-run because their slide chain had degenerated to fresh
    /// rebuilds ([`crate::ball::BallForest::degraded`]), making the remainder stealable.
    pub chunks_split: usize,
    /// Pairs removed by the per-ball repetition closure, witness filter plus cascade
    /// ([`RepetitionSemantics::Distinct`]/[`RepetitionSemantics::Equal`] only). Identical
    /// between the integrated path and the naive oracle at any fixed configuration (the
    /// modes remove the same pair set per closure iteration); like `seeded_pairs` it may
    /// differ across engine shapes, which skip the closure on balls they never evaluate.
    pub repetition_filtered_pairs: usize,
    /// Balls whose repetition enforcement was skipped because the witness-search budget
    /// precondition failed (see [`crate::repetition::REPETITION_BUDGET`]): those balls
    /// behave as under [`RepetitionSemantics::Free`]. The bail decision reads only
    /// candidate-set sizes of the converged relation, so it is mode-independent.
    pub repetition_bailed_balls: usize,
    /// Perfect subgraphs found (before deduplication).
    pub perfect_subgraphs: usize,
    /// `(original, minimised)` pattern sizes when query minimization ran.
    pub pattern_sizes: Option<(usize, usize)>,
    /// Ball radius that was used.
    pub radius: usize,
}

/// The result of a strong-simulation run: the set `Θ` of maximum perfect subgraphs plus the
/// work statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchOutput {
    /// Maximum perfect subgraphs, in ascending order of their ball centers.
    pub subgraphs: Vec<PerfectSubgraph>,
    /// Work counters.
    pub stats: MatchStats,
}

impl MatchOutput {
    /// Returns `true` when at least one perfect subgraph was found, i.e. `Q ≺LD G`.
    pub fn is_match(&self) -> bool {
        !self.subgraphs.is_empty()
    }

    /// The union of data nodes across all perfect subgraphs.
    pub fn matched_nodes(&self) -> BTreeSet<NodeId> {
        self.subgraphs
            .iter()
            .flat_map(|s| s.nodes.iter().copied())
            .collect()
    }

    /// Data nodes matched to a specific pattern node, across all perfect subgraphs.
    pub fn matches_of(&self, pattern_node: NodeId) -> BTreeSet<NodeId> {
        self.subgraphs
            .iter()
            .flat_map(|s| s.matches_of(pattern_node))
            .collect()
    }

    /// Total number of matched data nodes (with multiplicity across subgraphs collapsed).
    pub fn matched_node_count(&self) -> usize {
        self.matched_nodes().len()
    }

    /// Structurally distinct perfect subgraphs (different centers may discover the same
    /// node/edge set).
    pub fn distinct_subgraphs(&self) -> Vec<&PerfectSubgraph> {
        distinct_indices(&self.subgraphs)
            .into_iter()
            .map(|i| &self.subgraphs[i])
            .collect()
    }
}

/// Hashes a subgraph's structural identity (node and edge sets) without cloning them.
fn structural_hash(s: &PerfectSubgraph) -> u64 {
    let mut h = DefaultHasher::new();
    s.nodes.len().hash(&mut h);
    for n in &s.nodes {
        n.0.hash(&mut h);
    }
    for (a, b) in &s.edges {
        a.0.hash(&mut h);
        b.0.hash(&mut h);
    }
    h.finish()
}

/// Indices of the structurally distinct subgraphs, keeping the first occurrence of each
/// structure. Deduplication is hash-based with an equality check on collision, so it does
/// not clone the node/edge vectors into set keys the way the seed did.
pub(crate) fn distinct_indices(subgraphs: &[PerfectSubgraph]) -> Vec<usize> {
    let mut buckets: HashMap<u64, Vec<usize>> = HashMap::with_capacity(subgraphs.len());
    let mut keep = Vec::with_capacity(subgraphs.len());
    for (i, s) in subgraphs.iter().enumerate() {
        let bucket = buckets.entry(structural_hash(s)).or_default();
        let duplicate = bucket
            .iter()
            .any(|&j| subgraphs[j].nodes == s.nodes && subgraphs[j].edges == s.edges);
        if !duplicate {
            bucket.push(i);
            keep.push(i);
        }
    }
    keep
}

/// The data argument of the matcher: the flat graph itself, or — on maintained
/// (`prepared`) paths whose entire ball pipeline runs inside the cached `Gm` extraction —
/// just its node count. The count-only shape is what lets the incremental driver keep its
/// serving state as an [`ssim_graph::OverlayGraph`] without materialising a flat CSR per
/// update: stats accounting needs `|V|`, not adjacency.
enum DataRef<'a> {
    Flat(&'a Graph),
    CountOnly(usize),
}

impl DataRef<'_> {
    #[inline]
    fn node_count(&self) -> usize {
        match self {
            DataRef::Flat(g) => g.node_count(),
            DataRef::CountOnly(n) => *n,
        }
    }

    /// The flat graph, on paths that traverse raw data adjacency.
    ///
    /// # Panics
    /// Panics on a count-only reference — the caller picked the counted entry point for a
    /// configuration whose pipeline does not stay inside the prepared `Gm`.
    #[inline]
    fn flat(&self) -> &Graph {
        match self {
            DataRef::Flat(g) => g,
            DataRef::CountOnly(_) => panic!(
                "this matcher configuration traverses the flat data graph; \
                 the counted entry point only serves prepared match-graph-substrate runs"
            ),
        }
    }
}

/// Per-worker partial result of the ball-processing fan-out.
#[derive(Default)]
struct WorkerResult {
    subgraphs: Vec<PerfectSubgraph>,
    balls_with_invalid_matches: usize,
    filter_removed_pairs: usize,
    balls_built: usize,
    balls_reused: usize,
    balls_warm_started: usize,
    seeded_pairs: usize,
    match_graphs_reused: usize,
    repetition_filtered_pairs: usize,
    repetition_bailed_balls: usize,
    chunks_processed: usize,
    chunks_stolen: usize,
    chunks_split: usize,
}

impl WorkerResult {
    /// Folds one ball's repetition-closure outcome into the worker's counters.
    fn record_repetition(&mut self, outcome: RepetitionOutcome) {
        self.repetition_filtered_pairs += outcome.removed_pairs;
        self.repetition_bailed_balls += usize::from(outcome.bailed);
    }
}

/// Runs strong simulation of `pattern` over `data` with the given configuration.
///
/// This is Algorithm `Match` (Fig. 3) when `config` is [`MatchConfig::basic`] and `Match+`
/// when it is [`MatchConfig::optimized`]; any other combination toggles individual
/// optimisations for ablation studies.
pub fn strong_simulation(pattern: &Pattern, data: &Graph, config: &MatchConfig) -> MatchOutput {
    match_with_prepared(pattern, data, config, None, None)
}

/// [`strong_simulation`] with the incremental driver's two hooks:
///
/// * `prepared` — a maintained global dual-simulation state ([`PreparedGlobal`]): the
///   exact global fixpoint plus, on the match-graph substrate, the cached `Gm`
///   extraction. When given, the global fixpoint and the extraction are *not* recomputed
///   here — that is the point of maintaining them across updates.
/// * `dirty` — a center filter in **data-graph** (outer) ids: only balls whose center is
///   in the set are evaluated. Every per-ball unit of work is independent of which other
///   centers run (the invariant the PR 2–4 differential suites pin), so the rows
///   produced here are bit-identical to the same centers' rows in an unrestricted pass —
///   which is what lets the incremental matcher splice them into a cached result.
///
/// One-shot callers pass `None` for both and get exactly [`strong_simulation`].
pub fn match_with_prepared(
    pattern: &Pattern,
    data: &Graph,
    config: &MatchConfig,
    prepared: Option<PreparedGlobal<'_>>,
    dirty: Option<&BitSet>,
) -> MatchOutput {
    match_impl(pattern, DataRef::Flat(data), config, prepared, dirty)
}

/// [`match_with_prepared`] without the flat data graph: the prepared state plus the data
/// node count are everything the match-graph-substrate pipeline reads. This is the entry
/// point the incremental driver uses when its serving state is an overlay — the whole run
/// stays inside the cached `Gm` extraction, so no flat CSR ever needs to exist.
///
/// # Panics
/// Panics when the configuration would traverse raw data adjacency after all: `dual_filter`
/// off, or a total relation on the [`BallSubstrate::FullGraph`] oracle substrate (no `Gm`
/// to run in). Callers route those shapes through [`match_with_prepared`] with a
/// materialised graph instead.
pub fn match_with_prepared_counted(
    pattern: &Pattern,
    data_node_count: usize,
    config: &MatchConfig,
    prepared: PreparedGlobal<'_>,
    dirty: Option<&BitSet>,
) -> MatchOutput {
    match_impl(
        pattern,
        DataRef::CountOnly(data_node_count),
        config,
        Some(prepared),
        dirty,
    )
}

fn match_impl(
    pattern: &Pattern,
    data: DataRef<'_>,
    config: &MatchConfig,
    prepared: Option<PreparedGlobal<'_>>,
    dirty: Option<&BitSet>,
) -> MatchOutput {
    let mut stats = MatchStats::default();

    // Optimisation 1: query minimization. The ball radius stays the *original* diameter
    // (Lemma 3). Results are translated back to the original pattern nodes at the end so the
    // output is expressed against the caller's pattern regardless of the configuration.
    let minimized;
    let mut class_members: Vec<Vec<NodeId>> = Vec::new();
    let (effective_pattern, radius) = if config.minimize_query {
        minimized = minimize_pattern(pattern);
        stats.pattern_sizes = Some((minimized.original_size, minimized.pattern.size()));
        class_members = vec![Vec::new(); minimized.pattern.node_count()];
        for (original_index, class) in minimized.class_of.iter().enumerate() {
            class_members[class.index()].push(NodeId::from_index(original_index));
        }
        let radius = config
            .radius_override
            .unwrap_or(minimized.original_diameter);
        (&minimized.pattern, radius)
    } else {
        (
            pattern,
            config.radius_override.unwrap_or(pattern.diameter()),
        )
    };
    stats.radius = radius;

    // Optimisation 2 (part 1): the global dual-simulation relation — computed once here,
    // or handed in already maintained by the incremental driver.
    let computed_global: Option<MatchRelation> = match (config.dual_filter, prepared) {
        (true, None) => {
            match dual_simulation_with(effective_pattern, data.flat(), config.refine_strategy) {
                Some(rel) => Some(rel),
                None => {
                    // The whole graph does not even dual-simulate the pattern: no ball can.
                    stats.balls_considered = data.node_count();
                    stats.balls_skipped = data.node_count();
                    return MatchOutput {
                        subgraphs: Vec::new(),
                        stats,
                    };
                }
            }
        }
        _ => None,
    };
    let global_relation: Option<&MatchRelation> = if config.dual_filter {
        match prepared {
            Some(p) => {
                debug_assert_eq!(
                    p.relation.pattern_node_count(),
                    effective_pattern.node_count(),
                    "prepared relation must be over the effective (minimised) pattern"
                );
                if !p.relation.is_total() {
                    // The maintained fixpoint is empty: no ball can match.
                    stats.balls_considered = data.node_count();
                    stats.balls_skipped = data.node_count();
                    return MatchOutput {
                        subgraphs: Vec::new(),
                        stats,
                    };
                }
                Some(p.relation)
            }
            None => computed_global.as_ref(),
        }
    } else {
        None
    };
    // Ball substrate: with the dual filter on, only matched nodes can ever be candidates,
    // support an in-ball pair or appear in an extracted subgraph, so the default substrate
    // materialises the match graph `Gm` once and runs the entire ball pipeline inside it
    // (Fig. 5). One matched-set buffer serves both the extraction and the center filter.
    stats.balls_considered = data.node_count();
    let mut matched_buf = BitSet::new(0);
    let extracted: Option<(ExtractedSubgraph, MatchRelation)> = match (global_relation, prepared) {
        (Some(global), None) if config.ball_substrate == BallSubstrate::MatchGraph => {
            Some(global.extract_matched_subgraph(data.flat(), &mut matched_buf))
        }
        _ => None,
    };
    let gm: Option<(&ExtractedSubgraph, &MatchRelation)> = match (global_relation, prepared) {
        (Some(_), Some(p)) if config.ball_substrate == BallSubstrate::MatchGraph => {
            Some(p.gm.expect("prepared state must carry Gm on the match-graph substrate"))
        }
        (Some(_), None) if config.ball_substrate == BallSubstrate::MatchGraph => {
            extracted.as_ref().map(|(sub, inner)| (sub, inner))
        }
        _ => None,
    };
    if let Some((sub, _)) = gm {
        stats.gm_nodes = sub.node_count();
        stats.gm_edges = sub.edge_count();
    }
    // Everything below speaks `match_data` ids: `Gm` ids on the match-graph substrate,
    // data-graph ids otherwise. Results are translated back at emission.
    let (match_data, local_relation): (&Graph, Option<&MatchRelation>) = match gm {
        Some((sub, inner)) => (sub.graph(), Some(inner)),
        None => (data.flat(), global_relation),
    };

    // Balls whose center cannot match any pattern node are skipped outright; on the
    // match-graph substrate the extraction already performed exactly that filter, so the
    // skipped/considered accounting is identical on both substrates.
    let centers: Vec<NodeId> = match (gm, global_relation) {
        (Some((sub, _)), _) => sub.graph().nodes().collect(),
        (None, Some(global)) => {
            global.matched_data_nodes_into(&mut matched_buf);
            data.flat()
                .nodes()
                .filter(|c| matched_buf.contains(c.index()))
                .collect()
        }
        (None, None) => data.flat().nodes().collect(),
    };
    stats.balls_skipped = data.node_count() - centers.len();
    // Incremental updates restrict the run to the centers a delta marked dirty;
    // everything below is center-set agnostic, so the surviving rows are bit-identical
    // to the same centers' rows in an unrestricted pass.
    let centers: Vec<NodeId> = match dirty {
        Some(dirty) => centers
            .into_iter()
            .filter(|&c| {
                let outer = gm.map_or(c, |(sub, _)| sub.outer_of(c));
                dirty.contains(outer.index())
            })
            .collect(),
        None => centers,
    };
    stats.balls_processed = centers.len();

    // The sliding-ball strategy wants consecutive centers to be adjacent, so it reorders
    // the candidates along an undirected BFS of the substrate graph. The merge re-sorts
    // subgraphs by center and all other stats are order-independent sums, so the
    // reordering is invisible in the output.
    let use_forest = config.compact_balls && config.ball_strategy == BallStrategy::Incremental;
    let centers = if use_forest {
        locality_center_order(match_data, &centers)
    } else {
        centers
    };

    // Fan the per-ball work out over worker threads. The center order is cut into
    // locality-contiguous chunks whose boundaries depend only on the center count, each
    // worker is dealt a contiguous block of chunks, and idle workers steal whole chunks
    // — never single centers — so a worker's forest slide chain and warm carry stay
    // intact within a chunk and are reset at every chunk boundary. Because both the
    // chunk plan and the re-split decisions below are functions of the input alone, the
    // per-ball work (and every stat except `chunks_stolen`) is bit-identical at any
    // thread count. Below the cutoff, thread spawn/join costs more than the matching
    // itself, so small inputs run inline even when `parallel` is requested — unless an
    // explicit `thread_limit` asks for real fan-out.
    const PARALLEL_CUTOFF: usize = 128;
    // A chunk whose forest has degraded to rebuild-every-ball is checked every
    // `RESPLIT_CHECK` centers and halved while at least `RESPLIT_MIN` centers remain:
    // with no slide chain left to protect, the remainder might as well be stealable.
    const RESPLIT_CHECK: usize = 8;
    const RESPLIT_MIN: usize = 16;
    let threads = match (config.parallel, config.thread_limit) {
        (false, _) => 1,
        (true, Some(n)) => n.max(1),
        (true, None) if centers.len() >= PARALLEL_CUTOFF => available_threads(),
        (true, None) => 1,
    };
    let use_warm = use_forest && config.refine_seed == RefineSeed::WarmStart;
    let plan = chunk_plan(centers.len());
    let workers = effective_workers(threads, plan.len());
    let scheduler = StealScheduler::new(workers, plan);
    let worker = |t: usize| -> WorkerResult {
        let mut result = WorkerResult::default();
        let mut scratch = BallScratch::new();
        let mut forest = use_forest.then(|| BallForest::new(match_data, radius));
        let mut warm = use_warm.then(|| WarmMatcher::new(effective_pattern));
        while let Some((chunk, stolen)) = scheduler.next(t) {
            result.chunks_processed += 1;
            result.chunks_stolen += usize::from(stolen);
            // A chunk boundary severs the slide and carry chains: the previous chunk's
            // last center is not adjacent to this chunk's first, and resetting here
            // makes per-ball behaviour a function of chunk content alone — independent
            // of which worker runs the chunk or what it ran before.
            if let Some(forest) = forest.as_mut() {
                forest.reset_chain();
            }
            if let Some(warm) = warm.as_mut() {
                warm.reset_chain();
            }
            let current = Cell::new(None::<NodeId>);
            let bounds = chunk.clone();
            let caught = catch_unwind(AssertUnwindSafe(|| {
                let mut pos = chunk.start;
                let mut end = chunk.end;
                while pos < end {
                    let i = pos;
                    let center = centers[i];
                    current.set(Some(center));
                    let (subgraph, removed) = if let Some(forest) = forest.as_mut() {
                        forest.advance(center);
                        let ball = forest.compact(&mut scratch);
                        // Warm-starting rides slides; rebuilt balls take the byte-identical
                        // scratch path (`WarmMatcher::wants` invalidates the carry, and the
                        // next slide re-seeds the chain from its own scratch refinement).
                        let ball_move = forest.last_move();
                        let use_warm_ball = warm.as_mut().is_some_and(|w| w.wants(ball_move));
                        let out = if use_warm_ball {
                            let warm = warm.as_mut().expect("gate implies matcher");
                            warm.match_ball(
                                effective_pattern,
                                match_data,
                                &ball,
                                ball_move,
                                forest.entered(),
                                forest.left(),
                                local_relation,
                                config.connectivity_pruning,
                                config.refine_strategy,
                                config.repetition,
                                config.repetition_mode,
                            )
                        } else {
                            let (subgraph, removed, seeded, repetition) = match_prepared_ball(
                                effective_pattern,
                                match_data,
                                &ball,
                                config,
                                local_relation,
                            );
                            result.seeded_pairs += seeded;
                            result.record_repetition(repetition);
                            (subgraph, removed)
                        };
                        ball.recycle(&mut scratch);
                        out
                    } else if config.compact_balls {
                        result.balls_built += 1;
                        let (subgraph, removed, seeded, repetition) = match_ball_compact(
                            effective_pattern,
                            match_data,
                            center,
                            radius,
                            config,
                            local_relation,
                            &mut scratch,
                        );
                        result.seeded_pairs += seeded;
                        result.record_repetition(repetition);
                        (subgraph, removed)
                    } else {
                        result.balls_built += 1;
                        let (subgraph, removed, seeded, repetition) = match_ball_legacy(
                            effective_pattern,
                            match_data,
                            center,
                            radius,
                            config,
                            local_relation,
                        );
                        result.seeded_pairs += seeded;
                        result.record_repetition(repetition);
                        (subgraph, removed)
                    };
                    if removed > 0 {
                        result.balls_with_invalid_matches += 1;
                        result.filter_removed_pairs += removed;
                    }
                    if let Some(mut subgraph) = subgraph {
                        // Cross the id-translation boundary: everything above spoke substrate
                        // ids; emitted subgraphs speak the caller's data-graph ids.
                        if let Some((sub, _)) = gm {
                            subgraph = translate_to_outer(subgraph, sub);
                        }
                        // Express the relation in terms of the caller's pattern nodes when the
                        // matcher ran on the minimised pattern.
                        if config.minimize_query {
                            let mut expanded = Vec::with_capacity(subgraph.relation.len());
                            for (class_node, data_node) in &subgraph.relation {
                                for &original in &class_members[class_node.index()] {
                                    expanded.push((original, *data_node));
                                }
                            }
                            expanded.sort_unstable();
                            subgraph.relation = expanded;
                        }
                        result.subgraphs.push(subgraph);
                    }
                    pos += 1;
                    // Re-split a degraded chunk: when the forest's back-off has engaged
                    // (every recent slide degenerated to a fresh rebuild), the rest of
                    // the chunk has no chain worth protecting, so hand the far half
                    // back to the scheduler for anyone idle to steal. The trigger
                    // depends only on the chunk's own content, keeping the executed
                    // chunk set — and `chunks_processed`/`chunks_split` — identical at
                    // every thread count.
                    if (pos - chunk.start) % RESPLIT_CHECK == 0
                        && end - pos >= RESPLIT_MIN
                        && forest.as_ref().is_some_and(|f| f.degraded())
                    {
                        let mid = pos + (end - pos) / 2;
                        scheduler.push(t, mid..end);
                        result.chunks_split += 1;
                        end = mid;
                    }
                }
            }));
            if let Err(payload) = caught {
                // Re-raise with the fan-out position so a failure in the parallel
                // suites names the chunk and center that died, not just "a worker".
                panic!(
                    "worker {t} panicked in chunk {}..{} at center {}: {}",
                    bounds.start,
                    bounds.end,
                    current
                        .get()
                        .map_or_else(|| "?".to_string(), |c| c.to_string()),
                    panic_message(&*payload)
                );
            }
        }
        // The forest is the single source of truth for the built/reused split, the warm
        // matcher for the seeding split.
        if let Some(forest) = &forest {
            result.balls_built += forest.built_fresh;
            result.balls_reused += forest.reused;
        }
        if let Some(warm) = &warm {
            result.balls_warm_started += warm.stats.warm_balls;
            result.seeded_pairs += warm.stats.seeded_pairs;
            result.match_graphs_reused += warm.stats.match_graphs_reused;
            result.repetition_filtered_pairs += warm.stats.repetition_filtered_pairs;
            result.repetition_bailed_balls += warm.stats.repetition_bailed_balls;
        }
        result
    };
    let results = par_workers(workers, worker);

    // Deterministic merge: stats are sums; subgraphs are re-sorted by their ball center
    // (each center yields at most one subgraph, so the order is total).
    let mut subgraphs = Vec::new();
    for r in results {
        stats.balls_with_invalid_matches += r.balls_with_invalid_matches;
        stats.filter_removed_pairs += r.filter_removed_pairs;
        stats.balls_built += r.balls_built;
        stats.balls_reused += r.balls_reused;
        stats.balls_warm_started += r.balls_warm_started;
        stats.seeded_pairs += r.seeded_pairs;
        stats.match_graphs_reused += r.match_graphs_reused;
        stats.repetition_filtered_pairs += r.repetition_filtered_pairs;
        stats.repetition_bailed_balls += r.repetition_bailed_balls;
        stats.chunks_processed += r.chunks_processed;
        stats.chunks_stolen += r.chunks_stolen;
        stats.chunks_split += r.chunks_split;
        subgraphs.extend(r.subgraphs);
    }
    subgraphs.sort_by_key(|s| s.center);

    if config.deduplicate {
        let keep = distinct_indices(&subgraphs);
        let mut iter = keep.into_iter().peekable();
        let mut index = 0usize;
        subgraphs.retain(|_| {
            let keep_this = iter.peek() == Some(&index);
            if keep_this {
                iter.next();
            }
            index += 1;
            keep_this
        });
    }
    stats.perfect_subgraphs = subgraphs.len();
    MatchOutput { subgraphs, stats }
}

/// Matches one ball using the compact (ball-local ids) engine, building the ball with a
/// fresh BFS. Returns the translated perfect subgraph, if any, plus the number of pairs
/// the dual filter removed.
fn match_ball_compact(
    pattern: &Pattern,
    data: &Graph,
    center: NodeId,
    radius: usize,
    config: &MatchConfig,
    global_relation: Option<&MatchRelation>,
    scratch: &mut BallScratch,
) -> (Option<PerfectSubgraph>, usize, usize, RepetitionOutcome) {
    let ball = CompactBall::build(data, center, radius, scratch);
    let result = match_prepared_ball(pattern, data, &ball, config, global_relation);
    ball.recycle(scratch);
    result
}

/// Matches one prebuilt compact ball — the shared back half of both ball strategies. The
/// ball may come from a fresh BFS ([`CompactBall::build`]) or a [`BallForest`] slide; the
/// member *order* (and hence the local id assignment) differs between the two, but every
/// downstream step works on id sets and re-sorts at extraction, so the output is
/// bit-identical either way.
fn match_prepared_ball(
    pattern: &Pattern,
    data: &Graph,
    ball: &CompactBall,
    config: &MatchConfig,
    global_relation: Option<&MatchRelation>,
) -> (Option<PerfectSubgraph>, usize, usize, RepetitionOutcome) {
    let view = ball.view(data);

    // Starting relation (ball-local ids): either the projected global relation or fresh
    // label candidates.
    let start = match global_relation {
        Some(global) => global.project_compact(ball),
        None => initial_candidates(pattern, &view),
    };

    // Optimisation 3: connectivity pruning around the center.
    let start = if config.connectivity_pruning {
        match prune_by_connectivity(pattern, &view, ball.center(), &start) {
            Some(pruned) => pruned,
            // Center cannot match: no perfect subgraph in this ball.
            None => return (None, 0, 0, RepetitionOutcome::default()),
        }
    } else {
        start
    };
    let seeded = start.pair_count();

    // Refinement: border-seeded work queue when starting from the projected global
    // relation, full (worklist) fixpoint otherwise.
    let mut removed = 0usize;
    let relation = if config.dual_filter {
        refine_projected(pattern, &view, ball.border(), start, Some(&mut removed))
    } else {
        refine_dual_with(pattern, &view, start, config.refine_strategy)
    };
    // The repetition closure runs between refinement convergence and extraction; a
    // closure that empties some candidate set turns the ball into a non-match exactly
    // like an emptied refinement would.
    let mut repetition = RepetitionOutcome::default();
    let relation = relation.and_then(|mut relation| {
        repetition = enforce_repetition(
            pattern,
            &view,
            &mut relation,
            config.repetition,
            config.repetition_mode,
        );
        relation.is_total().then_some(relation)
    });
    let result = relation.and_then(|relation| {
        extract_max_perfect_subgraph(pattern, &view, &relation, ball.center(), ball.radius())
            .map(|s| translate_subgraph(s, ball))
    });
    (result, removed, seeded, repetition)
}

/// Translates a perfect subgraph expressed in ball-local ids back to global ids.
///
/// Local ids follow BFS order, so the mapped vectors are re-sorted to restore the
/// ascending-global-id invariants of [`PerfectSubgraph`]. This runs once per *extracted*
/// subgraph — a tiny fraction of the per-ball work.
pub(crate) fn translate_subgraph(local: PerfectSubgraph, ball: &CompactBall) -> PerfectSubgraph {
    let mut nodes: Vec<NodeId> = local.nodes.into_iter().map(|n| ball.global_of(n)).collect();
    nodes.sort_unstable();
    let mut edges: Vec<(NodeId, NodeId)> = local
        .edges
        .into_iter()
        .map(|(a, b)| (ball.global_of(a), ball.global_of(b)))
        .collect();
    edges.sort_unstable();
    let mut relation: Vec<(NodeId, NodeId)> = local
        .relation
        .into_iter()
        .map(|(u, v)| (u, ball.global_of(v)))
        .collect();
    relation.sort_unstable();
    PerfectSubgraph {
        center: ball.center_global(),
        radius: local.radius,
        nodes,
        edges,
        relation,
    }
}

/// Translates a perfect subgraph expressed in `Gm` (extraction-inner) ids back to the
/// outer data-graph ids — the emission side of the match-graph ball substrate.
///
/// Inner ids ascend with outer ids ([`ExtractedSubgraph`] assigns them in ascending
/// member order), so the map is monotone and the sorted-vector invariants of
/// [`PerfectSubgraph`] survive without re-sorting. Shared with the distributed runtime,
/// whose sites emit in the same boundary position.
pub fn translate_to_outer(local: PerfectSubgraph, sub: &ExtractedSubgraph) -> PerfectSubgraph {
    PerfectSubgraph {
        center: sub.outer_of(local.center),
        radius: local.radius,
        nodes: local.nodes.into_iter().map(|n| sub.outer_of(n)).collect(),
        edges: local
            .edges
            .into_iter()
            .map(|(a, b)| (sub.outer_of(a), sub.outer_of(b)))
            .collect(),
        relation: local
            .relation
            .into_iter()
            .map(|(u, v)| (u, sub.outer_of(v)))
            .collect(),
    }
}

/// Matches one ball the seed way: `|V|`-sized relation bitsets over a membership-filtered
/// view of the original graph. Kept for ablation benches and as the engine oracle.
fn match_ball_legacy(
    pattern: &Pattern,
    data: &Graph,
    center: NodeId,
    radius: usize,
    config: &MatchConfig,
    global_relation: Option<&MatchRelation>,
) -> (Option<PerfectSubgraph>, usize, usize, RepetitionOutcome) {
    let ball = Ball::new(data, center, radius);
    let view = ball.view(data);
    let start = match global_relation {
        Some(global) => global.project(ball.membership()),
        None => initial_candidates(pattern, &view),
    };
    let start = if config.connectivity_pruning {
        match prune_by_connectivity(pattern, &view, center, &start) {
            Some(pruned) => pruned,
            None => return (None, 0, 0, RepetitionOutcome::default()),
        }
    } else {
        start
    };
    let seeded = start.pair_count();
    let mut removed = 0usize;
    let relation = if config.dual_filter {
        refine_projected(
            pattern,
            &view,
            &ball.border_nodes(),
            start,
            Some(&mut removed),
        )
    } else {
        refine_dual_with(pattern, &view, start, config.refine_strategy)
    };
    let Some(mut relation) = relation else {
        return (None, removed, seeded, RepetitionOutcome::default());
    };
    // Same position as on the compact path: closure after convergence, before
    // extraction. The witness filter works on id *sets*, so the `|V|`-sized relation
    // over the membership-filtered view removes the same pairs the compact path does.
    let repetition = enforce_repetition(
        pattern,
        &view,
        &mut relation,
        config.repetition,
        config.repetition_mode,
    );
    if !relation.is_total() {
        return (None, removed, seeded, repetition);
    }
    (
        extract_max_perfect_subgraph(pattern, &view, &relation, center, radius),
        removed,
        seeded,
        repetition,
    )
}

/// Matches a single prebuilt compact ball with fresh label candidates and worklist
/// refinement — the unit of work the distributed runtime's sites execute.
pub fn match_compact_ball(
    pattern: &Pattern,
    ball: &CompactBall,
    data: &Graph,
) -> Option<PerfectSubgraph> {
    match_compact_ball_with(
        pattern,
        ball,
        data,
        RepetitionSemantics::Free,
        RepetitionMode::Integrated,
    )
    .0
}

/// [`match_compact_ball`] with an explicit repetition semantics — the distributed
/// runtime's per-site emission path. Returns the closure outcome alongside the subgraph
/// so callers can account bails and removals.
pub fn match_compact_ball_with(
    pattern: &Pattern,
    ball: &CompactBall,
    data: &Graph,
    repetition: RepetitionSemantics,
    repetition_mode: RepetitionMode,
) -> (Option<PerfectSubgraph>, RepetitionOutcome) {
    let view = ball.view(data);
    let start = initial_candidates(pattern, &view);
    let Some(mut relation) = refine_dual_with(pattern, &view, start, RefineStrategy::Worklist)
    else {
        return (None, RepetitionOutcome::default());
    };
    let outcome = enforce_repetition(pattern, &view, &mut relation, repetition, repetition_mode);
    if !relation.is_total() {
        return (None, outcome);
    }
    let subgraph =
        extract_max_perfect_subgraph(pattern, &view, &relation, ball.center(), ball.radius())
            .map(|s| translate_subgraph(s, ball));
    (subgraph, outcome)
}

/// [`match_compact_ball`] under the dual filter: the per-ball start is the projection of
/// the global dual-simulation relation (in `data`'s id space — `Gm` ids when the ball was
/// built inside an extraction) and refinement is border-seeded (`dualFilter`, Fig. 5).
pub fn match_compact_ball_filtered(
    pattern: &Pattern,
    ball: &CompactBall,
    data: &Graph,
    global_relation: &MatchRelation,
) -> Option<PerfectSubgraph> {
    match_compact_ball_filtered_with(
        pattern,
        ball,
        data,
        global_relation,
        RepetitionSemantics::Free,
        RepetitionMode::Integrated,
    )
    .0
}

/// [`match_compact_ball_filtered`] with an explicit repetition semantics.
pub fn match_compact_ball_filtered_with(
    pattern: &Pattern,
    ball: &CompactBall,
    data: &Graph,
    global_relation: &MatchRelation,
    repetition: RepetitionSemantics,
    repetition_mode: RepetitionMode,
) -> (Option<PerfectSubgraph>, RepetitionOutcome) {
    let view = ball.view(data);
    let start = global_relation.project_compact(ball);
    let Some(mut relation) = refine_projected(pattern, &view, ball.border(), start, None) else {
        return (None, RepetitionOutcome::default());
    };
    let outcome = enforce_repetition(pattern, &view, &mut relation, repetition, repetition_mode);
    if !relation.is_total() {
        return (None, outcome);
    }
    let subgraph =
        extract_max_perfect_subgraph(pattern, &view, &relation, ball.center(), ball.radius())
            .map(|s| translate_subgraph(s, ball));
    (subgraph, outcome)
}

/// Returns `true` when `Q ≺LD G`, i.e. some ball of `G` contains a perfect subgraph.
pub fn strong_simulates(pattern: &Pattern, data: &Graph) -> bool {
    strong_simulation(pattern, data, &MatchConfig::basic()).is_match()
}

/// Convenience wrapper for the fully optimised matcher (`Match+`).
pub fn strong_simulation_plus(pattern: &Pattern, data: &Graph) -> MatchOutput {
    strong_simulation(pattern, data, &MatchConfig::optimized())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_graph::{GraphBuilder, Label};

    /// Builds the running example of the paper (Fig. 1): pattern Q1 and data graph G1.
    ///
    /// Q1: HR -> SE, HR -> Bio, SE -> Bio, DM -> Bio, DM <-> AI.
    /// G1: one connected component where Bio4 satisfies every requirement, plus components
    /// with partially-recommended biologists and a long AI/DM cycle.
    pub(crate) fn figure1() -> (Pattern, Graph, NodeId) {
        // Labels: HR=0, SE=1, Bio=2, DM=3, AI=4
        let pattern = Pattern::from_edges(
            vec![Label(0), Label(1), Label(2), Label(3), Label(4)],
            &[(0, 1), (0, 2), (1, 2), (3, 2), (3, 4), (4, 3)],
        )
        .unwrap();

        let mut b = GraphBuilder::new();
        // Component 1: HR1 -> Bio1 (recommended by HR only).
        let hr1 = b.add_node("HR");
        let bio1 = b.add_node("Bio");
        b.add_edge(hr1, bio1);
        // Component 2: SE1 -> Bio2 (recommended by SE only).
        let se1 = b.add_node("SE");
        let bio2 = b.add_node("Bio");
        b.add_edge(se1, bio2);
        // Component 3: the long AI/DM cycle feeding Bio3 (k = 3 pairs).
        let bio3 = b.add_node("Bio");
        let mut cycle_nodes = Vec::new();
        for _ in 0..3 {
            let ai = b.add_node("AI");
            let dm = b.add_node("DM");
            cycle_nodes.push((ai, dm));
            b.add_edge(dm, bio3);
        }
        for i in 0..cycle_nodes.len() {
            let (ai, dm) = cycle_nodes[i];
            b.add_edge(ai, dm);
            let (next_ai, _) = cycle_nodes[(i + 1) % cycle_nodes.len()];
            b.add_edge(dm, next_ai);
        }
        // Component 4: the good one around Bio4.
        let hr2 = b.add_node("HR");
        let se2 = b.add_node("SE");
        let bio4 = b.add_node("Bio");
        let dm1p = b.add_node("DM");
        let dm2p = b.add_node("DM");
        let ai1p = b.add_node("AI");
        let ai2p = b.add_node("AI");
        b.add_edge(hr2, se2);
        b.add_edge(hr2, bio4);
        b.add_edge(se2, bio4);
        b.add_edge(dm1p, bio4);
        b.add_edge(dm2p, bio4);
        b.add_edge(dm1p, ai1p);
        b.add_edge(ai1p, dm1p);
        b.add_edge(dm2p, ai2p);
        b.add_edge(ai2p, dm2p);
        let (graph, interner) = b.build_with_interner();
        // Translate the string labels to the numeric labels used by the pattern.
        // (The builder interned HR=0, Bio=1, SE=2, AI=3, DM=4 in insertion order; rebuild the
        // data graph with the pattern's labelling so both sides agree.)
        let relabel = |l: ssim_graph::Label| -> Label {
            match interner.name(l).unwrap() {
                "HR" => Label(0),
                "SE" => Label(1),
                "Bio" => Label(2),
                "DM" => Label(3),
                "AI" => Label(4),
                other => panic!("unexpected label {other}"),
            }
        };
        let labels: Vec<Label> = graph.nodes().map(|v| relabel(graph.label(v))).collect();
        let edges: Vec<(u32, u32)> = graph.edges().map(|(a, b)| (a.0, b.0)).collect();
        let data = Graph::from_edges(labels, &edges).unwrap();
        (pattern, data, bio4)
    }

    #[test]
    fn figure1_strong_simulation_finds_only_bio4() {
        let (pattern, data, bio4) = figure1();
        let bio_label = Label(2);
        // Plain simulation matches every biologist (Example 1)…
        let sim = crate::simulation::graph_simulation(&pattern, &data).unwrap();
        let sim_bios: Vec<NodeId> = sim
            .candidates(NodeId(2))
            .iter()
            .map(NodeId::from_index)
            .collect();
        assert_eq!(
            sim_bios.len(),
            4,
            "graph simulation keeps all four biologists"
        );
        // …strong simulation keeps only Bio4 (Example 2(3)).
        let result = strong_simulation(&pattern, &data, &MatchConfig::basic());
        assert!(result.is_match());
        let matched_bios: Vec<NodeId> = result
            .matches_of(NodeId(2))
            .into_iter()
            .filter(|v| data.label(*v) == bio_label)
            .collect();
        assert_eq!(matched_bios, vec![bio4]);
        // The long AI/DM cycle is not part of any perfect subgraph.
        let matched = result.matched_nodes();
        for v in data.nodes() {
            if matched.contains(&v) {
                // every matched node lives in Bio4's component
                assert!(
                    ssim_graph::traversal::undirected_distance(&data, v, bio4).is_some(),
                    "matched node {v} is outside Bio4's component"
                );
            }
        }
    }

    #[test]
    fn figure1_all_configs_agree() {
        let (pattern, data, _) = figure1();
        let base = strong_simulation(&pattern, &data, &MatchConfig::basic());
        for config in [
            MatchConfig {
                dual_filter: true,
                ..MatchConfig::basic()
            },
            MatchConfig {
                connectivity_pruning: true,
                ..MatchConfig::basic()
            },
            MatchConfig {
                minimize_query: true,
                ..MatchConfig::basic()
            },
            MatchConfig::optimized(),
            // Engine ablations must not change results either.
            MatchConfig::seed_reference(),
            MatchConfig::basic().sequential(),
            MatchConfig::basic().with_thread_limit(4),
            MatchConfig::optimized().with_thread_limit(3),
            MatchConfig {
                compact_balls: false,
                ..MatchConfig::basic()
            },
            MatchConfig::basic().with_refine_strategy(RefineStrategy::NaiveFixpoint),
            MatchConfig {
                compact_balls: false,
                ..MatchConfig::optimized()
            },
            MatchConfig::optimized().sequential(),
            // Ball-construction ablations.
            MatchConfig::basic().with_ball_strategy(BallStrategy::FreshBfs),
            MatchConfig::optimized().with_ball_strategy(BallStrategy::FreshBfs),
            MatchConfig::basic()
                .with_ball_strategy(BallStrategy::FreshBfs)
                .with_thread_limit(3),
            // Refinement-seed ablations.
            MatchConfig::basic().with_refine_seed(RefineSeed::FromScratch),
            MatchConfig::optimized().with_refine_seed(RefineSeed::FromScratch),
            MatchConfig::basic()
                .with_refine_seed(RefineSeed::FromScratch)
                .with_thread_limit(3),
        ] {
            let out = strong_simulation(&pattern, &data, &config);
            assert_eq!(
                base.matched_nodes(),
                out.matched_nodes(),
                "config {config:?} changed the matched node set"
            );
            assert_eq!(
                base.subgraphs.len(),
                out.subgraphs.len(),
                "config {config:?} changed the number of perfect subgraphs"
            );
        }
    }

    #[test]
    fn engine_paths_produce_identical_subgraphs() {
        let (pattern, data, _) = figure1();
        for base_config in [MatchConfig::basic(), MatchConfig::optimized()] {
            let fast = strong_simulation(&pattern, &data, &base_config);
            let seed = strong_simulation(
                &pattern,
                &data,
                &MatchConfig {
                    refine_strategy: RefineStrategy::NaiveFixpoint,
                    parallel: false,
                    compact_balls: false,
                    ..base_config
                },
            );
            assert_eq!(fast.subgraphs.len(), seed.subgraphs.len());
            for (a, b) in fast.subgraphs.iter().zip(&seed.subgraphs) {
                assert_eq!(a.center, b.center);
                assert_eq!(a.nodes, b.nodes);
                assert_eq!(a.edges, b.edges);
                assert_eq!(a.relation, b.relation);
            }
        }
    }

    #[test]
    fn dual_filter_skips_unmatchable_centers() {
        let (pattern, data, _) = figure1();
        let out = strong_simulation(&pattern, &data, &MatchConfig::optimized());
        assert!(
            out.stats.balls_skipped > 0,
            "expected the global filter to skip some balls"
        );
        assert_eq!(
            out.stats.balls_considered,
            data.node_count(),
            "every node is considered as a potential center"
        );
        assert_eq!(
            out.stats.balls_processed + out.stats.balls_skipped,
            out.stats.balls_considered
        );
        assert!(out.stats.pattern_sizes.is_some());
        assert_eq!(out.stats.radius, pattern.diameter());
    }

    #[test]
    fn no_match_when_label_absent() {
        let pattern = Pattern::from_edges(vec![Label(0), Label(9)], &[(0, 1)]).unwrap();
        let data = Graph::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        for config in [MatchConfig::basic(), MatchConfig::optimized()] {
            let out = strong_simulation(&pattern, &data, &config);
            assert!(!out.is_match());
            assert_eq!(out.stats.perfect_subgraphs, 0);
        }
        assert!(!strong_simulates(&pattern, &data));
    }

    #[test]
    fn proposition4_bounded_number_of_matches() {
        let (pattern, data, _) = figure1();
        let out = strong_simulation(&pattern, &data, &MatchConfig::basic());
        assert!(out.subgraphs.len() <= data.node_count());
    }

    #[test]
    fn proposition3_diameter_bound() {
        let (pattern, data, _) = figure1();
        let out = strong_simulation(&pattern, &data, &MatchConfig::basic());
        for s in &out.subgraphs {
            let d = ssim_graph::metrics::induced_diameter(&data, &s.nodes);
            assert!(
                d <= 2 * pattern.diameter(),
                "perfect subgraph diameter {d} exceeds 2·dQ = {}",
                2 * pattern.diameter()
            );
        }
    }

    #[test]
    fn radius_override_and_dedup() {
        let (pattern, data, _) = figure1();
        let config = MatchConfig::basic().with_radius(1).with_deduplication();
        let out = strong_simulation(&pattern, &data, &config);
        assert_eq!(out.stats.radius, 1);
        // Deduplicated output has no structurally identical subgraphs.
        let distinct = out.distinct_subgraphs().len();
        assert_eq!(distinct, out.subgraphs.len());
    }

    #[test]
    fn identical_subgraphs_from_different_centers_deduplicate() {
        // Pattern A -> B over data A -> B: both centers see the same radius-1 ball and
        // extract the identical perfect subgraph {0, 1}.
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let data = Graph::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let plain = strong_simulation(&pattern, &data, &MatchConfig::basic());
        assert_eq!(plain.subgraphs.len(), 2, "one subgraph per center");
        assert_eq!(
            plain.subgraphs[0].structural_key(),
            plain.subgraphs[1].structural_key()
        );
        let deduped =
            strong_simulation(&pattern, &data, &MatchConfig::basic().with_deduplication());
        assert_eq!(deduped.subgraphs.len(), 1);
        // Dedup keeps the first occurrence in center order.
        assert_eq!(deduped.subgraphs[0].center, NodeId(0));
        assert_eq!(deduped.stats.perfect_subgraphs, 1);
    }

    #[test]
    fn ball_stats_split_built_and_reused() {
        let (pattern, data, _) = figure1();
        let incremental = strong_simulation(&pattern, &data, &MatchConfig::basic());
        assert_eq!(
            incremental.stats.balls_built + incremental.stats.balls_reused,
            incremental.stats.balls_processed,
            "every processed ball is either built or reused"
        );
        assert!(
            incremental.stats.balls_reused > 0,
            "figure 1 has adjacent centers to slide across"
        );
        let fresh = strong_simulation(
            &pattern,
            &data,
            &MatchConfig::basic().with_ball_strategy(BallStrategy::FreshBfs),
        );
        assert_eq!(fresh.stats.balls_reused, 0);
        assert_eq!(fresh.stats.balls_built, fresh.stats.balls_processed);
        // The legacy |V|-sized path never reuses either.
        let legacy = strong_simulation(
            &pattern,
            &data,
            &MatchConfig {
                compact_balls: false,
                ..MatchConfig::basic()
            },
        );
        assert_eq!(legacy.stats.balls_reused, 0);
    }

    #[test]
    fn warm_stats_split_is_consistent() {
        let (pattern, data, _) = figure1();
        let warm = strong_simulation(&pattern, &data, &MatchConfig::basic());
        assert!(
            warm.stats.balls_warm_started > 0,
            "figure 1's locality chains never warm-started"
        );
        assert!(warm.stats.balls_warm_started <= warm.stats.balls_processed);
        assert!(warm.stats.seeded_pairs > 0);
        let scratch = strong_simulation(
            &pattern,
            &data,
            &MatchConfig::basic().with_refine_seed(RefineSeed::FromScratch),
        );
        assert_eq!(scratch.stats.balls_warm_started, 0);
        assert_eq!(scratch.stats.match_graphs_reused, 0);
        assert!(
            warm.stats.seeded_pairs <= scratch.stats.seeded_pairs,
            "warm seeding ({}) re-verified more pairs than scratch seeding started ({})",
            warm.stats.seeded_pairs,
            scratch.stats.seeded_pairs
        );
        // The non-sliding engine shapes ignore the seed axis entirely.
        let fresh = strong_simulation(
            &pattern,
            &data,
            &MatchConfig::basic().with_ball_strategy(BallStrategy::FreshBfs),
        );
        assert_eq!(fresh.stats.balls_warm_started, 0);
    }

    #[test]
    fn dedup_matches_seed_semantics() {
        // Dedup keeps the first occurrence of each structure, like the seed's BTreeSet key.
        let (pattern, data, _) = figure1();
        let plain = strong_simulation(&pattern, &data, &MatchConfig::basic().with_radius(1));
        let deduped = strong_simulation(
            &pattern,
            &data,
            &MatchConfig::basic().with_radius(1).with_deduplication(),
        );
        let expected: Vec<&PerfectSubgraph> = plain.distinct_subgraphs();
        assert_eq!(deduped.subgraphs.len(), expected.len());
        for (a, b) in deduped.subgraphs.iter().zip(expected) {
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.edges, b.edges);
        }
    }

    #[test]
    fn single_node_pattern_matches_every_labelled_node() {
        let pattern = Pattern::from_edges(vec![Label(2)], &[]).unwrap();
        let (_, data, _) = figure1();
        let out = strong_simulation(&pattern, &data, &MatchConfig::basic());
        // Every Bio node forms its own perfect subgraph (radius 0 balls).
        let bios = data.nodes().filter(|v| data.label(*v) == Label(2)).count();
        assert_eq!(out.subgraphs.len(), bios);
        assert!(out.subgraphs.iter().all(|s| s.node_count() == 1));
    }

    #[test]
    fn strong_simulation_plus_matches_basic() {
        let (pattern, data, _) = figure1();
        let basic = strong_simulation(&pattern, &data, &MatchConfig::basic());
        let plus = strong_simulation_plus(&pattern, &data);
        assert_eq!(basic.matched_nodes(), plus.matched_nodes());
    }

    #[test]
    fn match_compact_ball_agrees_with_engine() {
        let (pattern, data, _) = figure1();
        let radius = pattern.diameter();
        let out = strong_simulation(&pattern, &data, &MatchConfig::basic());
        let mut scratch = BallScratch::new();
        let mut found = Vec::new();
        for center in data.nodes() {
            let ball = CompactBall::build(&data, center, radius, &mut scratch);
            if let Some(s) = match_compact_ball(&pattern, &ball, &data) {
                found.push(s);
            }
        }
        assert_eq!(found.len(), out.subgraphs.len());
        for (a, b) in found.iter().zip(&out.subgraphs) {
            assert_eq!(a.center, b.center);
            assert_eq!(a.nodes, b.nodes);
        }
    }

    /// One dense community (a clique, every slide degenerate) amid a long cheap chain.
    /// Under the old static contiguous split this community pinned one worker for the
    /// whole run; the re-split path must detect the degraded forest, halve the
    /// community's chunks, and still produce the oracle result with the same
    /// deterministic chunk accounting at every thread count.
    fn clique_and_chain() -> (Pattern, Graph) {
        let clique = 64u32;
        let total = 2048u32;
        let mut labels = vec![Label(2); clique as usize];
        for i in clique..total {
            labels.push(Label(i % 2));
        }
        let mut edges = Vec::new();
        for i in 0..clique {
            for j in 0..clique {
                if i != j {
                    edges.push((i, j));
                }
            }
        }
        for i in clique..total - 1 {
            edges.push((i, i + 1));
        }
        let data = Graph::from_edges(labels, &edges).unwrap();
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        (pattern, data)
    }

    #[test]
    fn degraded_chunks_resplit_and_stay_exact() {
        let (pattern, data) = clique_and_chain();
        let oracle = strong_simulation(
            &pattern,
            &data,
            &MatchConfig::basic()
                .sequential()
                .with_ball_strategy(BallStrategy::FreshBfs)
                .with_refine_seed(RefineSeed::FromScratch),
        );
        let mut chunk_counts = Vec::new();
        for threads in [1usize, 4] {
            let out = strong_simulation(
                &pattern,
                &data,
                &MatchConfig::basic().with_thread_limit(threads),
            );
            assert_eq!(out.subgraphs.len(), oracle.subgraphs.len());
            for (a, b) in out.subgraphs.iter().zip(&oracle.subgraphs) {
                assert_eq!(a.center, b.center);
                assert_eq!(a.nodes, b.nodes);
                assert_eq!(a.relation, b.relation);
            }
            assert!(
                out.stats.chunks_split > 0,
                "dense community never triggered a re-split (threads={threads})"
            );
            chunk_counts.push((out.stats.chunks_processed, out.stats.chunks_split));
        }
        // The re-split decisions depend on chunk content alone, so the chunk accounting
        // (everything but `chunks_stolen`) is identical at every thread count.
        assert_eq!(chunk_counts[0], chunk_counts[1]);
    }
}

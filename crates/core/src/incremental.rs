//! Incremental matching under graph updates: the continuously-serving engine.
//!
//! A one-shot [`crate::strong::strong_simulation`] call answers one query; real traffic
//! mutates the data graph between queries and today's alternative is a full recompute
//! per change. The paper's locality results make updates intrinsically local: every
//! perfect subgraph lives in a ball of radius `dQ` around its center (Proposition 3), so
//! an edge change can only affect the balls whose members lie within substrate distance
//! `dQ` of a node the change touched. [`IncrementalMatcher`] exploits exactly that:
//!
//! 1. **Global relation maintenance.** Under `dual_filter`, the exact global
//!    dual-simulation fixpoint is *maintained* across a [`GraphDelta`] instead of
//!    recomputed: deletions seed the suspect queue of the existing removal-propagation
//!    engine ([`crate::dual_filter`]'s `refine_suspects` — the same capped-counter
//!    cascade the per-ball worklist uses), and insertions run a **bounded candidate
//!    re-admission**: a pair-level closure over `pattern adjacency × data adjacency`
//!    from the inserted endpoints collects every label-eligible pair the new edges can
//!    possibly have revived, which is then re-verified by the same suspect cascade.
//!    The closure is exact — a superset of the true fixpoint gain (see
//!    [`update_global_fixpoint`] for the argument) — and budgeted: floods fall back to a
//!    from-scratch fixpoint, mirroring the warm matcher's flood bail.
//! 2. **`Gm` re-extraction policy.** The match-graph substrate re-extracts `Gm` only
//!    when the matched-node set changed or a delta edge lands inside it; otherwise the
//!    cached extraction (and its id translation) is reused and only the renumbered
//!    relation is refreshed.
//! 3. **Dirty-ball invalidation.** Candidacy-changed nodes seed a dQ-bounded
//!    multi-source BFS (any ball holding such a node is suspect); delta edges dirty
//!    exactly the balls *containing* them — the centers within `dQ` of **both**
//!    endpoints ([`mark_edge_ball_centers`]), marked on the side of the update where
//!    the edge exists (pre-update substrate for deletions, post-update for
//!    insertions; `Gm` extractions on the match-graph substrate). Everything outside
//!    the sweeps is provably bit-identical.
//! 4. **Row splicing.** Only dirty centers re-run through the (unchanged) ball
//!    pipeline — forest slides, warm carries, pruning, extraction — via
//!    [`crate::strong::match_with_prepared`]; their rows are spliced into the cached
//!    pre-deduplication row set, and deduplication is re-applied over the splice, so the
//!    assembled [`MatchOutput`] is bit-identical to a full recompute.
//!
//! [`UpdatePlan::Recompute`] is the oracle (pinned by
//! [`crate::strong::MatchConfig::seed_reference`]): it applies the delta and re-runs the
//! full matcher. `tests/incremental_update_equivalence.rs` holds both plans bit-identical
//! along random delta streams, across the sequential, parallel and distributed runtimes,
//! with the other four engine axes pinned and composed.

use crate::ball::BallSubstrate;
use crate::dual_filter::refine_suspects;
use crate::match_graph::PerfectSubgraph;
use crate::minimize::minimize_pattern;
use crate::relation::MatchRelation;
use crate::simulation::{initial_candidates, refine_with, RefineMode, RefineStrategy};
use crate::strong::{
    distinct_indices, match_with_prepared, match_with_prepared_counted, translate_to_outer,
    MatchConfig, MatchOutput, MatchStats,
};
use ssim_graph::delta::{mark_edge_ball_centers, mark_within_distance};
use ssim_graph::{
    AdjView, BitSet, ExtractedSubgraph, Graph, GraphDelta, GraphEpoch, GraphError, NodeId,
    OverlayGraph, Pattern,
};
use std::collections::VecDeque;

/// How a cached match result reacts to a graph delta — the fifth oracle axis, next to
/// `RefineStrategy × BallStrategy × RefineSeed × BallSubstrate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdatePlan {
    /// Maintain the global relation under the delta, invalidate only the dirty balls
    /// (Prop. 3 locality) and splice their fresh rows into the cached output.
    #[default]
    Incremental,
    /// Apply the delta and recompute the whole match from scratch. The equivalence
    /// oracle, and the baseline the `incremental_update` bench ratios are measured
    /// against.
    Recompute,
}

/// The maintained global dual-simulation state handed to
/// [`crate::strong::match_with_prepared`]: the exact global fixpoint plus, on the
/// match-graph substrate, the cached `Gm` extraction and the fixpoint renumbered into it.
#[derive(Clone, Copy)]
pub struct PreparedGlobal<'a> {
    /// Exact global fixpoint for the *effective* (minimised) pattern over the data
    /// graph. Non-total means empty — patterns are connected, so the true non-total
    /// fixpoint is exactly the empty relation.
    pub relation: &'a MatchRelation,
    /// The `Gm` extraction and the renumbered relation; present exactly when the
    /// consuming configuration runs on [`BallSubstrate::MatchGraph`] and the fixpoint is
    /// total.
    pub gm: Option<(&'a ExtractedSubgraph, &'a MatchRelation)>,
}

/// Computes the exact greatest dual-simulation fixpoint of `pattern` over `data`, with
/// the non-total case normalised to the literal empty relation.
///
/// `dual_simulation_with` discards non-total results, and the worklist engine exits
/// early on an emptied candidate set with a partially refined relation — either would
/// poison incremental maintenance, which needs the true fixpoint as its base. Patterns
/// are connected, so a non-total fixpoint is exactly empty (an empty candidate set makes
/// every pair on an adjacent pattern node unsupported, and emptiness spreads over the
/// whole pattern), which makes the normalisation exact.
///
/// Generic over [`AdjView`] so the fixpoint can be computed directly against a flat
/// [`Graph`] or an [`OverlayGraph`] — the overlay merges its patches during iteration,
/// so no flat materialisation is needed to (re)establish the relation.
pub fn global_fixpoint<V: AdjView>(
    pattern: &Pattern,
    data: &V,
    strategy: RefineStrategy,
) -> MatchRelation {
    let start = initial_candidates(pattern, data);
    let rel = refine_with(
        pattern,
        data,
        RefineMode::ChildrenAndParents,
        start,
        strategy,
    )
    .expect("refinement always yields a relation");
    if rel.is_total() {
        rel
    } else {
        MatchRelation::empty(pattern.node_count(), data.id_space())
    }
}

/// The result of maintaining the global fixpoint across one delta.
pub struct FixpointUpdate {
    /// The exact fixpoint over the updated graph (empty when non-total).
    pub relation: MatchRelation,
    /// Data nodes whose candidacy changed for at least one pattern node.
    pub changed_nodes: BitSet,
    /// Pairs present after the update that were absent before.
    pub pairs_gained: usize,
    /// Pairs present before the update that are absent after.
    pub pairs_lost: usize,
    /// The re-admission closure flooded and the fixpoint was recomputed from scratch
    /// (still exact; the budget only bounds the incremental path's work).
    pub recomputed: bool,
}

/// Maintains the exact global dual-simulation fixpoint across one [`GraphDelta`].
///
/// `old` must be the exact fixpoint of `pattern` over the pre-delta graph and
/// `new_data` the post-delta graph. Deletions can only *remove* pairs: each deleted data
/// edge seeds the pairs on its endpoints as suspects of the removal cascade. Insertions
/// can only *add* pairs: the re-admission closure collects, starting from the
/// label-eligible pairs on inserted endpoints and propagating through
/// `pattern adjacency × data adjacency`, every pair the insertions can have revived.
///
/// **Exactness.** Let `M` be the true fixpoint over `new_data`, `R` the old fixpoint and
/// `B` the closure. Every pair of `M \ R` has, for each pattern edge, a support witness
/// in `M`; if any witness edge is newly inserted the pair is a closure seed, and if a
/// witness pair is itself in `M \ R` the closure's propagation step reaches the pair
/// from it — so a pair of `M` outside `R ∪ B` would have all its support on old edges
/// and `R`-or-likewise-outside pairs, making `R ∪ (M \ (R ∪ B))` a valid pre-fixpoint
/// over the *old* graph and contradicting `R`'s maximality. Hence `M ⊆ R ∪ B`, and the
/// suspect cascade (which verifies every admitted pair and every deletion-affected pair,
/// and re-checks neighbours of each removal) refines `R ∪ B` down to exactly `M`.
pub fn update_global_fixpoint<V: AdjView>(
    pattern: &Pattern,
    new_data: &V,
    delta: &GraphDelta,
    old: &MatchRelation,
    strategy: RefineStrategy,
) -> FixpointUpdate {
    let n = new_data.id_space();
    let q = pattern.graph();
    let mut rel = old.clone();
    let mut suspects: Vec<(NodeId, NodeId)> = Vec::new();

    // Deletions: a removed data edge carried child support only for pairs on its source
    // and parent support only for pairs on its target.
    for (v, w) in delta.deleted_edges() {
        for u in rel.pattern_nodes_matching(v) {
            suspects.push((u, v));
        }
        for u in rel.pattern_nodes_matching(w) {
            suspects.push((u, w));
        }
    }

    // Insertions: bounded candidate re-admission. `admitted` doubles as the dedup set
    // and the record of what to splice in; the budget bounds the closure at roughly the
    // relation's own size before bailing to a scratch fixpoint — a flood means the
    // insertions revived a region comparable to the whole relation, where scratch
    // refinement does the same work with better constants.
    let mut admitted = MatchRelation::empty(pattern.node_count(), n);
    let mut admit_count = 0usize;
    let budget = 2 * old.pair_count() + 16 * delta.op_count() * pattern.node_count() + 256;
    let mut queue: VecDeque<(NodeId, NodeId)> = VecDeque::new();
    let mut flooded = false;
    for (v, w) in delta.inserted_edges() {
        for (u, u_child) in q.edges() {
            for (pu, pv) in [(u, v), (u_child, w)] {
                if pattern.label(pu) == new_data.label(pv)
                    && !rel.contains(pu, pv)
                    && admitted.insert(pu, pv)
                {
                    admit_count += 1;
                    queue.push_back((pu, pv));
                }
            }
        }
    }
    while let Some((u, w)) = queue.pop_front() {
        if admit_count > budget {
            flooded = true;
            break;
        }
        // (u, w)'s presence can revive child support of in-neighbour pairs under
        // pattern in-edges of u…
        for u2 in q.in_neighbors(u) {
            for w2 in new_data.in_neighbors(w) {
                if pattern.label(u2) == new_data.label(w2)
                    && !rel.contains(u2, w2)
                    && admitted.insert(u2, w2)
                {
                    admit_count += 1;
                    queue.push_back((u2, w2));
                }
            }
        }
        // …and parent support of out-neighbour pairs under pattern out-edges of u.
        for u3 in q.out_neighbors(u) {
            for w3 in new_data.out_neighbors(w) {
                if pattern.label(u3) == new_data.label(w3)
                    && !rel.contains(u3, w3)
                    && admitted.insert(u3, w3)
                {
                    admit_count += 1;
                    queue.push_back((u3, w3));
                }
            }
        }
    }

    let relation = if flooded {
        global_fixpoint(pattern, new_data, strategy)
    } else {
        for (u, w) in admitted.pairs() {
            rel.insert(u, w);
            suspects.push((u, w));
        }
        let refined = refine_suspects(pattern, new_data, rel, suspects, None);
        debug_assert!(
            refined.is_total() || refined.is_empty(),
            "connected patterns have all-or-nothing fixpoints"
        );
        if refined.is_total() {
            refined
        } else {
            MatchRelation::empty(pattern.node_count(), n)
        }
    };

    let mut changed_nodes = BitSet::new(n);
    let mut pairs_gained = 0usize;
    let mut pairs_lost = 0usize;
    for u in pattern.nodes() {
        let before = old.candidates(u);
        let after = relation.candidates(u);
        changed_nodes.union_symmetric_diff(before, after);
        pairs_gained += after.iter().filter(|&v| !before.contains(v)).count();
        pairs_lost += before.iter().filter(|&v| !after.contains(v)).count();
    }
    FixpointUpdate {
        relation,
        changed_nodes,
        pairs_gained,
        pairs_lost,
        recomputed: flooded,
    }
}

/// What one delta did to a maintained [`IncrementalState`].
pub struct DeltaEffect {
    /// Ball centers whose cached result can have changed, in data-graph ids: nodes
    /// within substrate distance `≤ radius` of a touched node in the pre- or post-update
    /// substrate (Prop. 3 locality).
    pub dirty: BitSet,
    /// See [`FixpointUpdate::pairs_gained`] (0 without `dual_filter`).
    pub pairs_gained: usize,
    /// See [`FixpointUpdate::pairs_lost`] (0 without `dual_filter`).
    pub pairs_lost: usize,
    /// See [`FixpointUpdate::recomputed`].
    pub relation_recomputed: bool,
    /// The `Gm` extraction was rebuilt (matched set changed, or a delta edge landed
    /// inside `Gm`); `false` when the cached extraction was reused or none exists.
    pub gm_reextracted: bool,
    /// The overlay's patch mass crossed the compaction threshold during this apply and
    /// was folded back into a flat base CSR.
    pub compacted: bool,
    /// Epoch of the substrate after the apply.
    pub epoch: GraphEpoch,
}

/// The per-pattern half of a maintained incremental session: everything a standing
/// query carries *except* the data graph — the effective pattern, its localisation
/// parameters, the exact global fixpoint (under `dual_filter`), the matched-node set
/// and the cached `Gm` extraction.
///
/// Splitting this off the substrate is what makes multi-pattern serving possible: a
/// [`crate::service::QueryService`] holds **one** shared [`OverlayGraph`] and one
/// `PatternState` per registered query, applies each delta to the substrate once, and
/// moves every pattern across it via [`PatternState::advance_applied`] — handing the
/// substrate-only edge-ball sweeps in pre-computed, so they are paid once per radius
/// instead of once per pattern. A single-pattern [`IncrementalState`] is exactly the
/// `{substrate, pattern}` pair.
///
/// `Clone` is deliberate: the state is a pure, deterministic function of its
/// construction inputs over the current graph, so a clone is bit-identical to
/// recomputing — which lets a registry reuse the fixpoint of an already-registered
/// identical query instead of paying it again.
#[derive(Clone)]
pub struct PatternState {
    /// The effective pattern: minimised when the configuration minimises queries.
    pub effective: Pattern,
    /// Ball radius (the *original* pattern's diameter unless overridden — Lemma 3).
    pub radius: usize,
    /// Whether a global fixpoint is maintained at all.
    pub dual_filter: bool,
    /// Which substrate the consuming pipeline localises in.
    pub substrate: BallSubstrate,
    /// Refinement engine used for scratch fixpoints.
    pub refine_strategy: RefineStrategy,
    /// Exact global fixpoint over the shared data graph (`dual_filter` only).
    pub fixpoint: Option<MatchRelation>,
    /// Matched-node set of the fixpoint, in data-graph ids.
    pub matched: BitSet,
    /// Cached `Gm` extraction plus the fixpoint renumbered into it; present exactly
    /// when `dual_filter`, the match-graph substrate and a total fixpoint coincide.
    pub gm_cache: Option<(ExtractedSubgraph, MatchRelation)>,
}

/// What one (already-applied) delta did to a [`PatternState`] — the pattern-local
/// subset of [`DeltaEffect`], without the substrate bookkeeping.
pub struct PatternEffect {
    /// See [`DeltaEffect::dirty`].
    pub dirty: BitSet,
    /// See [`FixpointUpdate::pairs_gained`] (0 without `dual_filter`).
    pub pairs_gained: usize,
    /// See [`FixpointUpdate::pairs_lost`] (0 without `dual_filter`).
    pub pairs_lost: usize,
    /// See [`FixpointUpdate::recomputed`].
    pub relation_recomputed: bool,
    /// See [`DeltaEffect::gm_reextracted`].
    pub gm_reextracted: bool,
}

impl PatternState {
    /// Builds the pattern state against the current `data`: computes the global
    /// fixpoint and the `Gm` extraction the configuration calls for.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        pattern: &Pattern,
        data: &OverlayGraph,
        minimize: bool,
        radius_override: Option<usize>,
        dual_filter: bool,
        substrate: BallSubstrate,
        refine_strategy: RefineStrategy,
    ) -> Self {
        let (effective, radius) = if minimize {
            let m = minimize_pattern(pattern);
            let radius = radius_override.unwrap_or(m.original_diameter);
            (m.pattern, radius)
        } else {
            (
                pattern.clone(),
                radius_override.unwrap_or(pattern.diameter()),
            )
        };
        let mut state = PatternState {
            effective,
            radius,
            dual_filter,
            substrate,
            refine_strategy,
            matched: BitSet::new(data.node_count()),
            fixpoint: None,
            gm_cache: None,
        };
        if dual_filter {
            let fix = global_fixpoint(&state.effective, data, refine_strategy);
            fix.matched_data_nodes_into(&mut state.matched);
            if state.substrate == BallSubstrate::MatchGraph && fix.is_total() {
                let sub = ExtractedSubgraph::induced(data, &state.matched);
                let inner = fix.renumber_through(&sub);
                state.gm_cache = Some((sub, inner));
            }
            state.fixpoint = Some(fix);
        }
        state
    }

    /// The maintained state in the form [`match_with_prepared`] consumes; `None` when no
    /// fixpoint is maintained (configurations without `dual_filter`).
    pub fn prepared(&self) -> Option<PreparedGlobal<'_>> {
        self.fixpoint.as_ref().map(|relation| PreparedGlobal {
            relation,
            gm: self.gm_cache.as_ref().map(|(sub, inner)| (sub, inner)),
        })
    }

    /// Whether this pattern's dirty sweep runs over the raw data graph (and therefore
    /// consumes the shared pre/post edge-ball sweeps), as opposed to sweeping its own
    /// cached `Gm` extractions. The data-graph sweeps depend only on `(graph, delta
    /// edges, radius)`, so every pattern for which this returns `true` shares them at
    /// equal radius.
    pub fn sweeps_data_edges(&self) -> bool {
        !(self.dual_filter && self.substrate == BallSubstrate::MatchGraph)
    }

    /// Moves the pattern state across a delta that has **already landed** on `data`,
    /// and reports the pattern's dirty centers.
    ///
    /// `pre_edge_dirty` / `post_edge_dirty` are the substrate-only halves of the dirty
    /// sweep — [`mark_edge_ball_centers`] over the *deleted* edges on the pre-update
    /// graph and over the *inserted* edges on the post-update graph, both at
    /// [`PatternState::radius`]. They are inputs (rather than computed here) so a
    /// multi-pattern caller can compute them once per distinct radius and fan them out;
    /// they are ignored when [`PatternState::sweeps_data_edges`] is `false` (the `Gm`
    /// path sweeps its own extractions). [`IncrementalState::advance`] shows the
    /// single-pattern composition.
    pub fn advance_applied(
        &mut self,
        data: &OverlayGraph,
        delta: &GraphDelta,
        pre_edge_dirty: &BitSet,
        post_edge_dirty: &BitSet,
    ) -> PatternEffect {
        let n = data.node_count();
        let mut touched = BitSet::new(n);
        let use_gm = self.dual_filter && self.substrate == BallSubstrate::MatchGraph;
        let mut effect = PatternEffect {
            dirty: BitSet::new(n),
            pairs_gained: 0,
            pairs_lost: 0,
            relation_recomputed: false,
            gm_reextracted: false,
        };

        let old_matched = std::mem::replace(&mut self.matched, BitSet::new(n));
        let mut old_gm_sub: Option<ExtractedSubgraph> = self.gm_cache.take().map(|(sub, _)| sub);

        if self.dual_filter {
            let old_fix = self
                .fixpoint
                .take()
                .expect("dual-filter state carries a fixpoint");
            let up = update_global_fixpoint(
                &self.effective,
                data,
                delta,
                &old_fix,
                self.refine_strategy,
            );
            touched.union_with(&up.changed_nodes);
            effect.pairs_gained = up.pairs_gained;
            effect.pairs_lost = up.pairs_lost;
            effect.relation_recomputed = up.recomputed;
            let fix = up.relation;
            fix.matched_data_nodes_into(&mut self.matched);
            if use_gm && fix.is_total() {
                // Gm re-extraction policy: the induced subgraph on the matched set can
                // only change when the set itself changed or a delta edge has both
                // endpoints inside it.
                let delta_inside_gm =
                    delta
                        .inserted_edges()
                        .chain(delta.deleted_edges())
                        .any(|(a, b)| {
                            self.matched.contains(a.index()) && self.matched.contains(b.index())
                        });
                let reuse = self.matched == old_matched && !delta_inside_gm && old_gm_sub.is_some();
                let sub = if reuse {
                    old_gm_sub
                        .take()
                        .expect("reuse implies a cached extraction")
                } else {
                    effect.gm_reextracted = true;
                    ExtractedSubgraph::induced(data, &self.matched)
                };
                let inner = fix.renumber_through(&sub);
                self.gm_cache = Some((sub, inner));
            }
            self.fixpoint = Some(fix);
        }

        // Material delta edges on the match-graph substrate. A deleted edge lives in
        // the old `Gm` iff both endpoints were matched before; an inserted edge lives
        // in the new `Gm` iff both are matched now. An edge material to neither side
        // appears in neither extraction, so — candidacies unchanged — the substrate is
        // untouched around it and its balls are provably clean; endpoints whose
        // candidacy *did* change are already seeds via `changed_nodes`.
        let mut deleted_in_old: Vec<(NodeId, NodeId)> = Vec::new();
        let mut inserted_in_new: Vec<(NodeId, NodeId)> = Vec::new();
        if use_gm {
            deleted_in_old.extend(delta.deleted_edges().filter(|(a, b)| {
                old_matched.contains(a.index()) && old_matched.contains(b.index())
            }));
            inserted_in_new.extend(delta.inserted_edges().filter(|(a, b)| {
                self.matched.contains(a.index()) && self.matched.contains(b.index())
            }));
        }

        // Dirty sweep, one per update side. Candidacy-changed nodes dirty every ball
        // holding them (dQ-bounded BFS from `touched`); delta edges dirty exactly the
        // balls *containing* them — centers within `dQ` of both endpoints, marked on
        // the side of the update where the edge exists. A clean center's ball has
        // identical membership, borders and projected relation on both sides of the
        // delta, so its cached row stands.
        if use_gm {
            // Reused extractions leave `old_gm_sub` empty — reuse required an unchanged
            // matched set and no delta edge inside `Gm`, so the new-side sweep covers
            // the identical graph.
            if let Some(sub) = old_gm_sub.as_ref() {
                sweep_extraction(
                    sub,
                    &touched,
                    &deleted_in_old,
                    self.radius,
                    &mut effect.dirty,
                );
            }
            if let Some((sub, _)) = self.gm_cache.as_ref() {
                sweep_extraction(
                    sub,
                    &touched,
                    &inserted_in_new,
                    self.radius,
                    &mut effect.dirty,
                );
            }
        } else {
            effect.dirty.union_with(pre_edge_dirty);
            effect.dirty.union_with(post_edge_dirty);
            if !touched.is_empty() {
                mark_within_distance(
                    data,
                    touched.iter().map(NodeId::from_index),
                    self.radius,
                    &mut effect.dirty,
                );
            }
        }
        effect
    }
}

/// The maintained substrate shared by the centralized and distributed incremental
/// drivers: the current graph (as a layered [`OverlayGraph`] — deltas land as per-node
/// patches in `O(patches)` instead of an `O(|V|+|E|)` CSR rebuild) plus the per-pattern
/// half ([`PatternState`]: the exact global fixpoint under `dual_filter`, its
/// matched-node set and the cached `Gm` extraction).
///
/// [`IncrementalState::advance`] moves the whole bundle across one delta and returns
/// the dirty-center set; the drivers then re-run only those centers and splice.
pub struct IncrementalState {
    /// The current data graph (post all applied deltas), as a versioned overlay: the
    /// base flat CSR plus per-node sorted insert/tombstone patches, compacted back to
    /// flat when the patch mass crosses the policy threshold.
    pub data: OverlayGraph,
    /// The per-pattern maintained state over [`Self::data`].
    pub pattern: PatternState,
}

impl IncrementalState {
    /// Builds the state for a fresh graph: computes the global fixpoint and the `Gm`
    /// extraction the configuration calls for.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        pattern: &Pattern,
        data: Graph,
        minimize: bool,
        radius_override: Option<usize>,
        dual_filter: bool,
        substrate: BallSubstrate,
        refine_strategy: RefineStrategy,
    ) -> Self {
        let data = OverlayGraph::new(data);
        let pattern = PatternState::new(
            pattern,
            &data,
            minimize,
            radius_override,
            dual_filter,
            substrate,
            refine_strategy,
        );
        IncrementalState { data, pattern }
    }

    /// The maintained state in the form [`match_with_prepared`] consumes; `None` when no
    /// fixpoint is maintained (configurations without `dual_filter`).
    pub fn prepared(&self) -> Option<PreparedGlobal<'_>> {
        self.pattern.prepared()
    }

    /// Moves the state across one delta and reports the dirty centers.
    ///
    /// The delta lands on the overlay in `O(patches)` — validation runs against the
    /// merged state, the per-node patch arrays absorb the edits, and the epoch advances;
    /// a flat CSR is rebuilt only when the overlay's compaction threshold trips. The
    /// substrate-only edge-ball sweeps run here (pre-update side before the patches
    /// land, post-update side after), then [`PatternState::advance_applied`] does the
    /// pattern-local half — the exact composition a multi-pattern service performs with
    /// the sweeps shared across patterns.
    pub fn advance(&mut self, delta: &GraphDelta) -> Result<DeltaEffect, GraphError> {
        let n = self.data.node_count();

        // The non-Gm dirty sweep walks the *pre-update* substrate too — but only the
        // *deleted* edges matter there: an edge's effects (its presence in a ball, and
        // any ball-membership shift riding a path through it) exist on the side of the
        // update where the edge does, so deletions localise in the pre-update graph and
        // insertions in the post-update one. Per edge, exactly the centers holding both
        // endpoints within `dQ` are dirtied — the balls that contain the edge. Sweeping
        // the old side before the patches land costs bounded walks and no snapshot. The
        // Gm path sweeps the cached old extraction instead.
        let mut pre_edge_dirty = BitSet::new(n);
        if self.pattern.sweeps_data_edges() {
            let deleted: Vec<(NodeId, NodeId)> = delta.deleted_edges().collect();
            mark_edge_ball_centers(
                &self.data,
                &deleted,
                self.pattern.radius,
                &mut pre_edge_dirty,
            );
        }
        let compactions_before = self.data.compactions();
        // Validates against the merged state first; the whole bundle is untouched on error.
        self.data.apply_delta(delta)?;
        let mut post_edge_dirty = BitSet::new(n);
        if self.pattern.sweeps_data_edges() {
            let inserted: Vec<(NodeId, NodeId)> = delta.inserted_edges().collect();
            mark_edge_ball_centers(
                &self.data,
                &inserted,
                self.pattern.radius,
                &mut post_edge_dirty,
            );
        }

        let eff =
            self.pattern
                .advance_applied(&self.data, delta, &pre_edge_dirty, &post_edge_dirty);
        Ok(DeltaEffect {
            dirty: eff.dirty,
            pairs_gained: eff.pairs_gained,
            pairs_lost: eff.pairs_lost,
            relation_recomputed: eff.relation_recomputed,
            gm_reextracted: eff.gm_reextracted,
            compacted: self.data.compactions() > compactions_before,
            epoch: self.data.epoch(),
        })
    }
}

/// Sweeps one cached `Gm` extraction for dirty centers: dQ-bounded BFS from the
/// candidacy-changed seeds plus exact ball-containment marking for the delta edges
/// material to this side, all in the extraction's dense ids, translated back to outer
/// ids into `dirty`.
fn sweep_extraction(
    sub: &ExtractedSubgraph,
    changed: &BitSet,
    edges: &[(NodeId, NodeId)],
    radius: usize,
    dirty: &mut BitSet,
) {
    let seeds: Vec<NodeId> = changed
        .iter()
        .filter_map(|o| sub.inner_of(NodeId::from_index(o)))
        .collect();
    let edges_inner: Vec<(NodeId, NodeId)> = edges
        .iter()
        .filter_map(|&(a, b)| Some((sub.inner_of(a)?, sub.inner_of(b)?)))
        .collect();
    if seeds.is_empty() && edges_inner.is_empty() {
        return;
    }
    let mut marked = BitSet::new(sub.node_count());
    mark_within_distance(sub.graph(), seeds, radius, &mut marked);
    mark_edge_ball_centers(sub.graph(), &edges_inner, radius, &mut marked);
    for inner in marked.iter() {
        dirty.insert(sub.outer_of(NodeId::from_index(inner)).index());
    }
}

/// Splices freshly computed rows for the dirty centers into a cached row set: cached
/// rows on dirty centers are dropped (their ball may no longer yield a subgraph), fresh
/// rows take their place, and the merge keeps the ascending-center order.
pub fn splice_rows(
    rows: &mut Vec<PerfectSubgraph>,
    dirty: &BitSet,
    new_rows: Vec<PerfectSubgraph>,
) {
    let old_rows = std::mem::take(rows);
    let mut merged: Vec<PerfectSubgraph> = Vec::with_capacity(old_rows.len() + new_rows.len());
    let mut old_it = old_rows
        .into_iter()
        .filter(|r| !dirty.contains(r.center.index()))
        .peekable();
    let mut new_it = new_rows.into_iter().peekable();
    loop {
        match (old_it.peek(), new_it.peek()) {
            (Some(a), Some(b)) => {
                debug_assert_ne!(a.center, b.center, "dirty filter must drop dirty rows");
                if a.center < b.center {
                    merged.push(old_it.next().expect("peeked"));
                } else {
                    merged.push(new_it.next().expect("peeked"));
                }
            }
            (Some(_), None) => merged.push(old_it.next().expect("peeked")),
            (None, Some(_)) => merged.push(new_it.next().expect("peeked")),
            (None, None) => break,
        }
    }
    *rows = merged;
}

/// Work accounting of the most recent [`IncrementalMatcher::apply`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Centers the delta marked dirty (re-evaluated through the ball pipeline).
    /// `dirty_balls + clean_balls == |V|`.
    pub dirty_balls: usize,
    /// Centers whose cached result was reused untouched.
    pub clean_balls: usize,
    /// Global-relation pairs the update added (`dual_filter` only).
    pub pairs_gained: usize,
    /// Global-relation pairs the update removed (`dual_filter` only).
    pub pairs_lost: usize,
    /// The insertion re-admission closure flooded and the global fixpoint was
    /// recomputed from scratch.
    pub relation_recomputed: bool,
    /// The `Gm` extraction was rebuilt rather than reused.
    pub gm_reextracted: bool,
    /// The dirty fraction crossed [`DIRTY_BAIL_FRACTION`] and the matcher fell back to
    /// one unrestricted pass instead of paying region extraction and splicing on top of
    /// a near-total invalidation (`dirty_balls` reports `|V|` in that case).
    pub dirty_bailed: bool,
    /// The overlay compacted back to a flat base CSR during this apply.
    pub overlay_compacted: bool,
}

/// Per-plan state of the matcher: the incremental plan maintains
/// [`IncrementalState`] + cached rows, the recompute oracle only the graph.
enum PlanState {
    Incremental {
        state: Box<IncrementalState>,
        /// Pre-deduplication rows (ascending ball center, data-graph ids) — kept
        /// separately only when the configuration deduplicates, because deduplication
        /// is a cross-row operation that must be re-applied over every splice. With
        /// dedup off, `output.subgraphs` itself is the row cache and splices happen in
        /// place, clone-free.
        dedup_rows: Option<Vec<PerfectSubgraph>>,
    },
    Recompute {
        data: Graph,
    },
}

/// A strong-simulation session over a mutating data graph.
///
/// Construct once, then feed [`GraphDelta`]s through [`IncrementalMatcher::apply`]; the
/// cached [`MatchOutput`] after every apply is bit-identical (subgraph rows) to running
/// [`crate::strong::strong_simulation`] on the updated graph with the same
/// configuration. `config.update_plan` picks the maintenance strategy —
/// [`UpdatePlan::Incremental`] (the default) or the [`UpdatePlan::Recompute`] oracle.
pub struct IncrementalMatcher {
    pattern: Pattern,
    config: MatchConfig,
    plan: PlanState,
    output: MatchOutput,
    last_update: UpdateStats,
}

impl IncrementalMatcher {
    /// Runs the initial match over `data` and caches everything the chosen plan needs.
    pub fn new(pattern: &Pattern, data: Graph, config: MatchConfig) -> Self {
        let n = data.node_count();
        let (plan, output) = match config.update_plan {
            UpdatePlan::Recompute => {
                let output = crate::strong::strong_simulation(pattern, &data, &config);
                (PlanState::Recompute { data }, output)
            }
            UpdatePlan::Incremental => {
                let state = Box::new(IncrementalState::new(
                    pattern,
                    data,
                    config.minimize_query,
                    config.radius_override,
                    config.dual_filter,
                    config.ball_substrate,
                    config.refine_strategy,
                ));
                let run_cfg = MatchConfig {
                    deduplicate: false,
                    ..config
                };
                // At construction the overlay is flat — zero patches — so its base CSR
                // *is* the current graph and the initial pass runs over it copy-free.
                debug_assert!(state.data.is_flat());
                let out = match_with_prepared(
                    pattern,
                    state.data.base(),
                    &run_cfg,
                    state.prepared(),
                    None,
                );
                let (dedup_rows, subgraphs) = if config.deduplicate {
                    let subgraphs = deduped_copy(&out.subgraphs);
                    (Some(out.subgraphs), subgraphs)
                } else {
                    (None, out.subgraphs)
                };
                let output = MatchOutput {
                    stats: refreshed_stats(out.stats, &state, subgraphs.len()),
                    subgraphs,
                };
                (PlanState::Incremental { state, dedup_rows }, output)
            }
        };
        IncrementalMatcher {
            pattern: pattern.clone(),
            config,
            plan,
            output,
            last_update: UpdateStats {
                dirty_balls: n,
                clean_balls: 0,
                ..UpdateStats::default()
            },
        }
    }

    /// The current data graph (after every applied delta), materialised flat.
    ///
    /// The incremental plan serves from an [`OverlayGraph`], so this merges the live
    /// patches into a fresh CSR — an `O(|V|+|E|)` copy meant for oracles and tests, not
    /// the serving path. Use [`IncrementalMatcher::overlay`] to inspect the substrate
    /// without materialising.
    pub fn data(&self) -> Graph {
        match &self.plan {
            PlanState::Incremental { state, .. } => state.data.to_graph(),
            PlanState::Recompute { data } => data.clone(),
        }
    }

    /// The versioned serving substrate; `None` on the recompute oracle plan, which keeps
    /// a flat graph and rebuilds it per delta.
    pub fn overlay(&self) -> Option<&OverlayGraph> {
        match &self.plan {
            PlanState::Incremental { state, .. } => Some(&state.data),
            PlanState::Recompute { .. } => None,
        }
    }

    /// The configuration the session runs under.
    pub fn config(&self) -> &MatchConfig {
        &self.config
    }

    /// The match result over the current graph.
    pub fn output(&self) -> &MatchOutput {
        &self.output
    }

    /// Work accounting of the most recent [`IncrementalMatcher::apply`] (or of the
    /// initial run, where every ball is dirty by definition).
    pub fn last_update(&self) -> &UpdateStats {
        &self.last_update
    }

    /// Applies one validated batch of edge updates and refreshes the cached output.
    ///
    /// Returns the refreshed output; fails (leaving the session untouched) when the
    /// delta does not validate against the current graph.
    pub fn apply(&mut self, delta: &GraphDelta) -> Result<&MatchOutput, GraphError> {
        match &mut self.plan {
            PlanState::Recompute { data } => {
                let new_data = data.apply_delta(delta)?;
                self.output =
                    crate::strong::strong_simulation(&self.pattern, &new_data, &self.config);
                self.last_update = UpdateStats {
                    dirty_balls: new_data.node_count(),
                    clean_balls: 0,
                    ..UpdateStats::default()
                };
                *data = new_data;
            }
            PlanState::Incremental { state, dedup_rows } => {
                let effect = state.advance(delta)?;
                let run_cfg = MatchConfig {
                    deduplicate: false,
                    ..self.config
                };
                let n = state.data.node_count();
                // Adaptive dirty-fraction bail, mirroring the forest/warm flood
                // back-offs: when the delta invalidates nearly every ball, region
                // extraction + splicing costs more than the unrestricted pass it would
                // orchestrate, so run from scratch and replace the cache wholesale.
                let bailed = effect.dirty.len() > (DIRTY_BAIL_FRACTION * n as f64) as usize;
                if bailed {
                    let out = run_pass(&self.pattern, state, &run_cfg, None);
                    match dedup_rows {
                        Some(rows) => {
                            *rows = out.subgraphs;
                            self.output.subgraphs = deduped_copy(rows);
                        }
                        None => self.output.subgraphs = out.subgraphs,
                    }
                    self.output.stats =
                        refreshed_stats(out.stats, state, self.output.subgraphs.len());
                } else {
                    let out = run_pass(&self.pattern, state, &run_cfg, Some(&effect.dirty));
                    match dedup_rows {
                        Some(rows) => {
                            splice_rows(rows, &effect.dirty, out.subgraphs);
                            self.output.subgraphs = deduped_copy(rows);
                        }
                        None => {
                            splice_rows(&mut self.output.subgraphs, &effect.dirty, out.subgraphs)
                        }
                    }
                    self.output.stats =
                        refreshed_stats(out.stats, state, self.output.subgraphs.len());
                }
                self.last_update = UpdateStats {
                    dirty_balls: if bailed { n } else { effect.dirty.len() },
                    clean_balls: if bailed { 0 } else { n - effect.dirty.len() },
                    pairs_gained: effect.pairs_gained,
                    pairs_lost: effect.pairs_lost,
                    relation_recomputed: effect.relation_recomputed,
                    gm_reextracted: effect.gm_reextracted,
                    dirty_bailed: bailed,
                    overlay_compacted: effect.compacted,
                };
            }
        }
        Ok(&self.output)
    }

    /// Applies a batch of deltas as **one** maintenance step: the stream is composed
    /// into its net delta ([`GraphDelta::then`]) and fed through a single
    /// [`IncrementalMatcher::apply`], so invalidation, fixpoint maintenance and the
    /// restricted re-match are paid once per batch instead of once per delta. The
    /// result is identical to applying the deltas one by one — the net delta produces
    /// the same final graph, and the cached output only ever depends on the current
    /// graph.
    ///
    /// Each delta must validate against the graph its predecessors produce; the stream
    /// is staged on a cheap overlay snapshot first, so a mid-stream validation error
    /// leaves the session untouched. The recompute oracle applies the stream
    /// sequentially and re-matches once at the end.
    pub fn apply_batch(&mut self, deltas: &[GraphDelta]) -> Result<&MatchOutput, GraphError> {
        let [first, rest @ ..] = deltas else {
            return Ok(&self.output);
        };
        if rest.is_empty() {
            return self.apply(first);
        }
        match &mut self.plan {
            PlanState::Recompute { data } => {
                let mut new_data = data.apply_delta(first)?;
                for d in rest {
                    new_data = new_data.apply_delta(d)?;
                }
                self.output =
                    crate::strong::strong_simulation(&self.pattern, &new_data, &self.config);
                self.last_update = UpdateStats {
                    dirty_balls: new_data.node_count(),
                    clean_balls: 0,
                    ..UpdateStats::default()
                };
                *data = new_data;
                Ok(&self.output)
            }
            PlanState::Incremental { state, .. } => {
                // Stage the stream on a snapshot (O(patch-slots) clone — the base CSR
                // is shared) to validate its order-sensitive legality up front.
                let mut staged = state.data.clone();
                for d in deltas {
                    staged.apply_delta(d)?;
                }
                let mut net = first.clone();
                for d in rest {
                    net = net.then(d);
                }
                self.apply(&net)
            }
        }
    }
}

/// Dirty fraction above which [`IncrementalMatcher::apply`] abandons the restricted
/// pass. Chosen well above the densest committed bench row (`update-overlap-chain-5pct`
/// invalidates ~0.64 of the balls and still wins incrementally) so the bail only fires
/// on genuinely global deltas.
pub(crate) const DIRTY_BAIL_FRACTION: f64 = 0.85;

/// Per-apply memo of the pure, pattern-independent data representations
/// [`run_pattern_pass`] builds: the flat materialisation of the overlay and the dirty-
/// region extraction. Both are functions of `(graph, radius, dirty set)` alone, so a
/// multi-pattern caller passing one cache across its per-pattern passes shares them
/// bit-identically — the pass consumes the same *value* it would have built itself.
///
/// The cache is only valid for one substrate version: drop it (or build a fresh one)
/// after every delta application.
#[derive(Default)]
pub struct SubstrateCache {
    /// The overlay merged flat, shared by every pass that needs a whole-graph CSR.
    flat: Option<Graph>,
    /// One entry per distinct `(radius, dirty)` request this apply; registered queries
    /// are few, so a linear scan beats any keyed structure.
    regions: Vec<RegionEntry>,
    /// Times a memoised value was served instead of rebuilt (flat + region combined).
    reuses: usize,
    /// Times a value was built into the cache (flat + region combined).
    builds: usize,
}

/// A memoised dirty-region extraction: the region decision for one `(radius, dirty)`
/// pair. `extraction: None` records that the region grew past the half-graph threshold
/// and the pass fell back to the flat path — a decision worth memoising too, since it
/// cost the region BFS to make.
struct RegionEntry {
    radius: usize,
    dirty: BitSet,
    extraction: Option<(ExtractedSubgraph, BitSet)>,
}

impl SubstrateCache {
    /// An empty cache for one substrate version.
    pub fn new() -> Self {
        SubstrateCache::default()
    }

    /// `(reuses, builds)` of memoised representations so far.
    pub fn counters(&self) -> (usize, usize) {
        (self.reuses, self.builds)
    }

    /// The flat materialisation of `data`, built on first request.
    fn flat(&mut self, data: &OverlayGraph) -> &Graph {
        if self.flat.is_none() {
            self.builds += 1;
            self.flat = Some(data.to_graph());
        } else {
            self.reuses += 1;
        }
        self.flat.as_ref().expect("just ensured")
    }

    /// Ensures the region entry for `(radius, dirty)` exists and returns its index.
    fn ensure_region(&mut self, data: &OverlayGraph, radius: usize, dirty: &BitSet) -> usize {
        if let Some(i) = self
            .regions
            .iter()
            .position(|e| e.radius == radius && &e.dirty == dirty)
        {
            self.reuses += 1;
            return i;
        }
        self.builds += 1;
        let n = data.node_count();
        let mut region = BitSet::new(n);
        mark_within_distance(
            data,
            dirty.iter().map(NodeId::from_index),
            radius,
            &mut region,
        );
        // Region extraction only pays while the untouched remainder is large: past
        // half the graph, building, indexing and translating an almost-full induced
        // copy costs more than the bulk `to_graph` merge (patched nodes re-merge,
        // untouched nodes memcpy) plus a dirty-restricted full-graph pass.
        let extraction = if region.len() * 2 > n {
            None
        } else {
            let sub = ExtractedSubgraph::induced(data, &region);
            let mut dirty_inner = BitSet::new(sub.node_count());
            for c in dirty.iter() {
                let inner = sub
                    .inner_of(NodeId::from_index(c))
                    .expect("dirty centers are within distance 0 of themselves");
                dirty_inner.insert(inner.index());
            }
            Some((sub, dirty_inner))
        };
        self.regions.push(RegionEntry {
            radius,
            dirty: dirty.clone(),
            extraction,
        });
        self.regions.len() - 1
    }
}

/// One restricted (or full) pass of the ball pipeline against the maintained state,
/// choosing the cheapest data representation the configuration admits:
///
/// * **Prepared match-graph runs** (`dual_filter` + cached `Gm`, or an empty fixpoint)
///   never touch raw data adjacency — [`match_with_prepared_counted`] runs straight off
///   the overlay-maintained state with no flat graph at all.
/// * **Unprepared runs** (no `dual_filter` — the plain-`Match` shapes) with a dirty set
///   localise first: every dirty ball lives within `radius` of its center (Prop. 3), so
///   the pass extracts the dirty region `D⁺` (all nodes within `radius` of a dirty
///   center) from the overlay and runs over that dense subgraph. Ball membership,
///   distances (hence borders) and induced edges inside `D⁺` equal the full graph's —
///   a ball only ever sees nodes within `radius` of its center, and shortest paths of
///   length `≤ radius` from a dirty center stay inside `D⁺` — so the translated rows
///   are bit-identical to a full-graph pass. When `D⁺` covers more than half of `|V|`
///   the extraction stops paying and the pass falls back to one bulk materialisation
///   with the same dirty restriction.
/// * Everything else (full passes without `Gm`, and the `dual_filter` + full-graph
///   oracle substrate) materialises the overlay once — status-quo cost, oracle-only
///   shapes.
fn run_pass(
    pattern: &Pattern,
    state: &IncrementalState,
    run_cfg: &MatchConfig,
    dirty: Option<&BitSet>,
) -> MatchOutput {
    run_pattern_pass(pattern, &state.data, &state.pattern, run_cfg, dirty, None)
}

/// [`run_pass`] over split substrate/pattern state, with an optional shared
/// [`SubstrateCache`]. With a cache, the flat materialisation and the dirty-region
/// extraction are memoised across calls against the same substrate version; without
/// one, a throwaway cache reproduces the single-pattern behaviour exactly. Because the
/// memoised values are pure functions of `(graph, radius, dirty)`, a cached pass
/// returns output **and stats** bit-identical to an uncached one.
pub(crate) fn run_pattern_pass(
    pattern: &Pattern,
    data: &OverlayGraph,
    ps: &PatternState,
    run_cfg: &MatchConfig,
    dirty: Option<&BitSet>,
    cache: Option<&mut SubstrateCache>,
) -> MatchOutput {
    let n = data.node_count();
    let mut local = SubstrateCache::new();
    let cache = match cache {
        Some(c) => c,
        None => &mut local,
    };
    if let Some(p) = ps.prepared() {
        if p.gm.is_some() || !p.relation.is_total() {
            return match_with_prepared_counted(pattern, n, run_cfg, p, dirty);
        }
        let flat = cache.flat(data);
        return match_with_prepared(pattern, flat, run_cfg, Some(p), dirty);
    }
    let Some(dirty) = dirty else {
        let flat = cache.flat(data);
        return match_with_prepared(pattern, flat, run_cfg, None, None);
    };
    // The region only grows from the dirty set; past half the graph the
    // extraction loses to the bulk merge, so skip even the region sweep.
    if dirty.len() * 2 > n {
        let flat = cache.flat(data);
        return match_with_prepared(pattern, flat, run_cfg, None, Some(dirty));
    }
    let entry = cache.ensure_region(data, ps.radius, dirty);
    if cache.regions[entry].extraction.is_none() {
        let flat = cache.flat(data);
        return match_with_prepared(pattern, flat, run_cfg, None, Some(dirty));
    }
    let (sub, dirty_inner) = cache.regions[entry]
        .extraction
        .as_ref()
        .expect("checked above");
    let out = match_with_prepared(pattern, sub.graph(), run_cfg, None, Some(dirty_inner));
    // The extraction's id map is monotone, so translated rows keep their
    // ascending-center order and splice directly.
    MatchOutput {
        subgraphs: out
            .subgraphs
            .into_iter()
            .map(|row| translate_to_outer(row, sub))
            .collect(),
        stats: out.stats,
    }
}

/// Copies the structurally distinct rows, keeping the first occurrence of each
/// structure — the matcher's dedup, re-applied over every splice (deduplication is a
/// cross-row operation: a dirty center's new row can legitimise or shadow a clean
/// center's cached one, so it can never be cached per row). Clones only the kept rows,
/// so the per-update cost tracks the output size, not the cache size.
pub(crate) fn deduped_copy(rows: &[PerfectSubgraph]) -> Vec<PerfectSubgraph> {
    distinct_indices(rows)
        .into_iter()
        .map(|i| rows[i].clone())
        .collect()
}

/// Describes the session's current state in the stats carried by the cached output
/// (work counters keep describing the most recent — restricted — run).
fn refreshed_stats(
    stats: MatchStats,
    state: &IncrementalState,
    subgraph_count: usize,
) -> MatchStats {
    refreshed_pattern_stats(
        stats,
        &state.pattern,
        state.data.node_count(),
        subgraph_count,
    )
}

/// [`refreshed_stats`] over split substrate/pattern state, for callers (the query
/// service) that do not hold an [`IncrementalState`].
pub(crate) fn refreshed_pattern_stats(
    mut stats: MatchStats,
    ps: &PatternState,
    node_count: usize,
    subgraph_count: usize,
) -> MatchStats {
    stats.perfect_subgraphs = subgraph_count;
    stats.radius = ps.radius;
    stats.balls_considered = node_count;
    if let Some((sub, _)) = &ps.gm_cache {
        stats.gm_nodes = sub.node_count();
        stats.gm_edges = sub.edge_count();
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strong::strong_simulation;
    use ssim_graph::Label;

    /// Chain data with alternating labels and a path pattern — small enough to reason
    /// about, rich enough that deltas move matches around.
    fn chain() -> (Pattern, Graph) {
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let labels: Vec<Label> = (0..10u32).map(|i| Label(i % 2)).collect();
        let edges: Vec<(u32, u32)> = (0..9u32).map(|i| (i, i + 1)).collect();
        (pattern, Graph::from_edges(labels, &edges).unwrap())
    }

    fn assert_rows_equal(a: &MatchOutput, b: &MatchOutput, ctx: &str) {
        // Derived PartialEq on PerfectSubgraph covers every field.
        assert_eq!(a.subgraphs, b.subgraphs, "{ctx}");
    }

    #[test]
    fn incremental_tracks_recompute_on_a_chain() {
        let (pattern, data) = chain();
        for config in [
            MatchConfig::basic(),
            MatchConfig::optimized(),
            MatchConfig {
                dual_filter: true,
                ..MatchConfig::basic()
            },
        ] {
            let mut inc = IncrementalMatcher::new(&pattern, data.clone(), config);
            let mut ora = IncrementalMatcher::new(
                &pattern,
                data.clone(),
                MatchConfig {
                    update_plan: UpdatePlan::Recompute,
                    ..config
                },
            );
            assert_rows_equal(inc.output(), ora.output(), "initial");
            // Break the chain in the middle, then heal it elsewhere.
            let mut d1 = GraphDelta::new();
            d1.delete_edge(NodeId(4), NodeId(5));
            let mut d2 = GraphDelta::new();
            d2.insert_edge(NodeId(5), NodeId(4));
            for (i, delta) in [d1, d2].iter().enumerate() {
                inc.apply(delta).unwrap();
                ora.apply(delta).unwrap();
                assert_rows_equal(inc.output(), ora.output(), &format!("step {i} {config:?}"));
                let oneshot = strong_simulation(&pattern, &inc.data(), &config);
                assert_rows_equal(inc.output(), &oneshot, &format!("vs one-shot {i}"));
            }
        }
    }

    #[test]
    fn empty_delta_is_a_no_op() {
        let (pattern, data) = chain();
        let mut inc = IncrementalMatcher::new(&pattern, data, MatchConfig::optimized());
        let before = inc.output().clone();
        inc.apply(&GraphDelta::new()).unwrap();
        assert_rows_equal(&before, inc.output(), "empty delta");
        assert_eq!(inc.last_update().dirty_balls, 0);
        assert_eq!(
            inc.last_update().clean_balls,
            inc.data().node_count(),
            "every ball stays clean"
        );
    }

    #[test]
    fn fixpoint_maintenance_matches_scratch() {
        let (pattern, data) = chain();
        let old = global_fixpoint(&pattern, &data, RefineStrategy::Worklist);
        // Drop (0,1), add (2,1).
        let mut delta = GraphDelta::new();
        delta.delete_edge(NodeId(0), NodeId(1));
        delta.insert_edge(NodeId(2), NodeId(1));
        let new_data = data.apply_delta(&delta).unwrap();
        let up =
            update_global_fixpoint(&pattern, &new_data, &delta, &old, RefineStrategy::Worklist);
        let scratch = global_fixpoint(&pattern, &new_data, RefineStrategy::Worklist);
        assert_eq!(up.relation.to_sorted_pairs(), scratch.to_sorted_pairs());
        // Changed nodes cover exactly the symmetric difference of the two relations.
        for u in pattern.nodes() {
            for v in new_data.nodes() {
                if old.contains(u, v) != scratch.contains(u, v) {
                    assert!(
                        up.changed_nodes.contains(v.index()),
                        "missing change at {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn deletion_that_empties_the_relation_and_reinsertion_round_trip() {
        // Pattern A -> B over a single A -> B edge: deleting it empties the fixpoint,
        // re-adding restores it exactly.
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let data = Graph::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let original = global_fixpoint(&pattern, &data, RefineStrategy::Worklist);
        assert!(original.is_total());
        let mut del = GraphDelta::new();
        del.delete_edge(NodeId(0), NodeId(1));
        let without = data.apply_delta(&del).unwrap();
        let up = update_global_fixpoint(
            &pattern,
            &without,
            &del,
            &original,
            RefineStrategy::Worklist,
        );
        assert!(up.relation.is_empty(), "non-total fixpoints are empty");
        assert_eq!(up.pairs_lost, 2);
        let back = without.apply_delta(&del.inverse()).unwrap();
        let up2 = update_global_fixpoint(
            &pattern,
            &back,
            &del.inverse(),
            &up.relation,
            RefineStrategy::Worklist,
        );
        assert_eq!(
            up2.relation.to_sorted_pairs(),
            original.to_sorted_pairs(),
            "round trip"
        );
    }

    #[test]
    fn splice_merges_and_drops_dirty_rows() {
        let row = |c: u32| PerfectSubgraph {
            center: NodeId(c),
            radius: 1,
            nodes: vec![NodeId(c)],
            edges: vec![],
            relation: vec![],
        };
        let mut rows = vec![row(1), row(3), row(5)];
        let mut dirty = BitSet::new(8);
        dirty.insert(3); // row 3 is dropped and not replaced
        dirty.insert(4); // a new center appears
        splice_rows(&mut rows, &dirty, vec![row(4)]);
        let centers: Vec<u32> = rows.iter().map(|r| r.center.0).collect();
        assert_eq!(centers, vec![1, 4, 5]);
    }
}

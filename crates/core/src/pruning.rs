//! Connectivity pruning (Section 4.2, Example 6).
//!
//! By Theorem 2, only the connected component of the match graph that contains the ball
//! center can contribute to the perfect subgraph of that ball. Candidate nodes that are not
//! (undirectedly) connected to the center *through other candidate nodes* therefore cannot
//! survive into the result and can be discarded **before** the expensive dual-simulation
//! refinement, shrinking the candidate sets.

use crate::relation::MatchRelation;
use ssim_graph::{AdjView, NodeId, Pattern};

/// Restricts `relation` to the candidates that are connected to `center` within the
/// candidate-induced subgraph of `view` (undirected connectivity).
///
/// Returns `None` when the center itself is not a candidate of any pattern node — in that
/// case the ball cannot produce a perfect subgraph at all and can be skipped.
pub fn prune_by_connectivity<V: AdjView>(
    _pattern: &Pattern,
    view: &V,
    center: NodeId,
    relation: &MatchRelation,
) -> Option<MatchRelation> {
    let candidates = relation.matched_data_nodes();
    if !candidates.contains(center.index()) {
        return None;
    }
    // Flood fill from the center over candidate nodes only (undirected).
    let mut reachable = ssim_graph::BitSet::new(view.id_space());
    let mut stack = vec![center];
    reachable.insert(center.index());
    while let Some(v) = stack.pop() {
        for w in view.out_neighbors(v).chain(view.in_neighbors(v)) {
            if candidates.contains(w.index()) && reachable.insert(w.index()) {
                stack.push(w);
            }
        }
    }
    Some(relation.project(&reachable))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual::{dual_simulation_view, refine_dual};
    use crate::simulation::initial_candidates;
    use ssim_graph::{Graph, GraphView, Label};

    /// Example 6 style data: two candidate islands {A1,B1} and {A2,B2}; only the island of
    /// the center matters.
    fn islands() -> (Pattern, Graph) {
        let pattern = Pattern::from_edges(vec![Label(0) /*A*/, Label(1) /*B*/], &[(0, 1)]).unwrap();
        // island 1: A1 -> B1. island 2: A2 -> B2. bridge via an unlabelled-for-Q node C: B1 -> C -> A2.
        let data = Graph::from_edges(
            vec![Label(0), Label(1), Label(0), Label(1), Label(9)],
            &[(0, 1), (2, 3), (1, 4), (4, 2)],
        )
        .unwrap();
        (pattern, data)
    }

    #[test]
    fn prunes_candidates_not_connected_to_center() {
        let (pattern, data) = islands();
        let view = GraphView::full(&data);
        let initial = initial_candidates(&pattern, &view);
        // All four labelled nodes are initial candidates.
        assert_eq!(initial.pair_count(), 4);
        let pruned = prune_by_connectivity(&pattern, &view, NodeId(0), &initial).unwrap();
        // Only A1/B1 survive: the path to the other island goes through the non-candidate C.
        assert_eq!(pruned.to_sorted_pairs(), vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn returns_none_when_center_is_not_a_candidate() {
        let (pattern, data) = islands();
        let view = GraphView::full(&data);
        let initial = initial_candidates(&pattern, &view);
        assert!(prune_by_connectivity(&pattern, &view, NodeId(4), &initial).is_none());
    }

    #[test]
    fn pruning_does_not_change_the_center_component_result() {
        let (pattern, data) = islands();
        let view = GraphView::full(&data);
        let full = dual_simulation_view(&pattern, &view).unwrap();
        let initial = initial_candidates(&pattern, &view);
        let pruned = prune_by_connectivity(&pattern, &view, NodeId(2), &initial).unwrap();
        let refined = refine_dual(&pattern, &view, pruned).unwrap();
        // Restricted to the center's island, the relations agree.
        for (u, v) in refined.pairs() {
            assert!(full.contains(u, v));
        }
        assert!(refined.contains(NodeId(0), NodeId(2)));
        assert!(refined.contains(NodeId(1), NodeId(3)));
        assert!(!refined.contains(NodeId(0), NodeId(0)));
    }

    #[test]
    fn center_candidate_island_of_one() {
        // A lone candidate with no candidate neighbours keeps only itself.
        let pattern = Pattern::from_edges(vec![Label(0)], &[]).unwrap();
        let data = Graph::from_edges(vec![Label(0), Label(0)], &[]).unwrap();
        let view = GraphView::full(&data);
        let initial = initial_candidates(&pattern, &view);
        let pruned = prune_by_connectivity(&pattern, &view, NodeId(1), &initial).unwrap();
        assert_eq!(pruned.to_sorted_pairs(), vec![(0, 1)]);
    }
}

//! TALE-style approximate matching (Tian & Patel, ICDE 2008 — simplified reimplementation).
//!
//! TALE matches the *important* pattern nodes first using a neighbourhood index (label,
//! degree, neighbour-label profile) and then extends the match to the remaining pattern
//! nodes, tolerating a bounded fraction of missing edges. The original system is an
//! index-backed tool; this module reproduces its behaviour as a matcher over in-memory
//! graphs, which is all the paper's evaluation requires (TALE appears only as a
//! match-quality baseline in Figures 7(c)–7(n)).
//!
//! The substitution is documented in DESIGN.md: the qualitative position of TALE in the
//! paper — more matched subgraphs than VF2, closeness around 35–42% — comes from its
//! tolerance of missing edges, which this implementation retains.

use crate::MatchedSubgraph;
use ssim_graph::{BitSet, Graph, NodeId, Pattern};

/// Tuning knobs of the approximate matcher.
#[derive(Debug, Clone, Copy)]
pub struct TaleConfig {
    /// Fraction of pattern nodes treated as "important" (matched strictly), by degree.
    pub important_fraction: f64,
    /// Fraction of a node's pattern edges that may be missing in the data for the extension
    /// phase (TALE's ρ parameter).
    pub missing_edge_ratio: f64,
    /// Upper bound on the number of matched subgraphs reported per important-node seed.
    pub max_matches_per_seed: usize,
}

impl Default for TaleConfig {
    fn default() -> Self {
        // The paper "adopted the same setting as [32]": important nodes are the high-degree
        // ones, and up to 25% of edges may be missed.
        TaleConfig {
            important_fraction: 0.5,
            missing_edge_ratio: 0.25,
            max_matches_per_seed: 64,
        }
    }
}

/// Runs the approximate matcher and returns the matched subgraphs (node sets of size
/// `|Vq|`, possibly missing a fraction of the pattern edges).
pub fn find_matches(pattern: &Pattern, data: &Graph, config: &TaleConfig) -> Vec<MatchedSubgraph> {
    let q = pattern.graph();
    let nq = q.node_count();
    if nq == 0 || data.node_count() == 0 {
        return Vec::new();
    }

    // Importance: pattern nodes sorted by degree, the top `important_fraction` are matched
    // strictly (label + degree + neighbour-label containment), the rest only by label.
    let mut by_degree: Vec<NodeId> = q.nodes().collect();
    by_degree.sort_by_key(|&u| std::cmp::Reverse(q.degree(u)));
    let important_count = ((nq as f64 * config.important_fraction).ceil() as usize).clamp(1, nq);
    let important: Vec<NodeId> = by_degree[..important_count].to_vec();

    // Matching order: important nodes first (highest degree first), then the rest.
    let mut order = important.clone();
    order.extend(by_degree[important_count..].iter().copied());

    let mut results: Vec<MatchedSubgraph> = Vec::new();
    let seed = order[0];
    let seed_candidates: Vec<NodeId> = data
        .nodes_with_label(q.label(seed))
        .iter()
        .copied()
        .filter(|&v| nh_compatible(q, seed, data, v))
        .collect();

    for seed_match in seed_candidates {
        let mut mapping: Vec<Option<NodeId>> = vec![None; nq];
        let mut used = BitSet::new(data.node_count());
        mapping[seed.index()] = Some(seed_match);
        used.insert(seed_match.index());
        let mut found = 0usize;
        extend(
            1,
            &order,
            pattern,
            data,
            config,
            &important,
            &mut mapping,
            &mut used,
            &mut results,
            &mut found,
        );
    }
    results.sort();
    results.dedup();
    results
}

/// Neighbourhood-index compatibility for an important pattern node: the data node must have
/// the same label, at least the pattern degree, and its neighbour labels must cover the
/// pattern node's neighbour labels.
fn nh_compatible(q: &Graph, u: NodeId, data: &Graph, v: NodeId) -> bool {
    if data.label(v) != q.label(u) || data.degree(v) < q.degree(u) {
        return false;
    }
    let mut pattern_neighbor_labels: Vec<_> = q
        .out_neighbors(u)
        .chain(q.in_neighbors(u))
        .map(|w| q.label(w))
        .collect();
    pattern_neighbor_labels.sort_unstable();
    pattern_neighbor_labels.dedup();
    let data_neighbor_labels: std::collections::HashSet<_> = data
        .out_neighbors(v)
        .chain(data.in_neighbors(v))
        .map(|w| data.label(w))
        .collect();
    pattern_neighbor_labels
        .iter()
        .all(|l| data_neighbor_labels.contains(l))
}

/// Number of pattern edges between `u` and already-mapped nodes that `v` realises / misses.
fn edge_agreement(
    u: NodeId,
    v: NodeId,
    q: &Graph,
    data: &Graph,
    mapping: &[Option<NodeId>],
) -> (usize, usize) {
    let mut present = 0usize;
    let mut missing = 0usize;
    for w in q.out_neighbors(u) {
        if let Some(img) = mapping[w.index()] {
            if data.has_edge(v, img) {
                present += 1;
            } else {
                missing += 1;
            }
        }
    }
    for w in q.in_neighbors(u) {
        if let Some(img) = mapping[w.index()] {
            if data.has_edge(img, v) {
                present += 1;
            } else {
                missing += 1;
            }
        }
    }
    (present, missing)
}

#[allow(clippy::too_many_arguments)]
fn extend(
    depth: usize,
    order: &[NodeId],
    pattern: &Pattern,
    data: &Graph,
    config: &TaleConfig,
    important: &[NodeId],
    mapping: &mut Vec<Option<NodeId>>,
    used: &mut BitSet,
    results: &mut Vec<MatchedSubgraph>,
    found: &mut usize,
) {
    if *found >= config.max_matches_per_seed {
        return;
    }
    if depth == order.len() {
        results.push(MatchedSubgraph::new(
            mapping.iter().map(|m| m.expect("complete")),
        ));
        *found += 1;
        return;
    }
    let u = order[depth];
    let q = pattern.graph();
    let is_important = important.contains(&u);
    // Candidates: neighbours of already-mapped images first, falling back to the label index.
    let mut candidates: Vec<NodeId> = Vec::new();
    for w in q.out_neighbors(u).chain(q.in_neighbors(u)) {
        if let Some(img) = mapping[w.index()] {
            candidates.extend(data.out_neighbors(img).chain(data.in_neighbors(img)));
        }
    }
    if candidates.is_empty() {
        candidates = data.nodes_with_label(q.label(u)).to_vec();
    }
    candidates.sort_unstable();
    candidates.dedup();

    let mapped_pattern_edges = q
        .out_neighbors(u)
        .chain(q.in_neighbors(u))
        .filter(|w| mapping[w.index()].is_some())
        .count();
    let allowed_missing = if is_important {
        0
    } else {
        (mapped_pattern_edges as f64 * config.missing_edge_ratio).floor() as usize
    };

    for v in candidates {
        if used.contains(v.index()) || data.label(v) != q.label(u) {
            continue;
        }
        if is_important && !nh_compatible(q, u, data, v) {
            continue;
        }
        let (present, missing) = edge_agreement(u, v, q, data, mapping);
        if missing > allowed_missing {
            continue;
        }
        if mapped_pattern_edges > 0 && present == 0 {
            // Require at least one realised connection so matches stay in one neighbourhood.
            continue;
        }
        mapping[u.index()] = Some(v);
        used.insert(v.index());
        extend(
            depth + 1,
            order,
            pattern,
            data,
            config,
            important,
            mapping,
            used,
            results,
            found,
        );
        used.remove(v.index());
        mapping[u.index()] = None;
        if *found >= config.max_matches_per_seed {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vf2::{find_embeddings, Vf2Limits};
    use ssim_graph::Label;

    fn pattern_vee() -> Pattern {
        // A -> C <- B
        Pattern::from_edges(vec![Label(0), Label(1), Label(2)], &[(0, 2), (1, 2)]).unwrap()
    }

    #[test]
    fn exact_match_is_found() {
        let pattern = pattern_vee();
        let data =
            Graph::from_edges(vec![Label(0), Label(1), Label(2)], &[(0, 2), (1, 2)]).unwrap();
        let matches = find_matches(&pattern, &data, &TaleConfig::default());
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].node_count(), 3);
    }

    #[test]
    fn tolerates_one_missing_edge_on_unimportant_nodes() {
        // Data is missing the B -> C edge. VF2 rejects it; TALE accepts it because B is an
        // unimportant (degree-1) node and the missing-edge budget covers it... with the
        // default 25% ratio and a single mapped edge, the budget is 0, so loosen the ratio.
        let pattern = pattern_vee();
        let data = Graph::from_edges(
            vec![Label(0), Label(1), Label(2), Label(1)],
            &[(0, 2), (3, 2)], // B(1) is disconnected from C; another B(3) is connected
        )
        .unwrap();
        let exact = find_embeddings(&pattern, &data, Vf2Limits::default());
        assert_eq!(exact.embeddings.len(), 1);
        let loose = TaleConfig {
            missing_edge_ratio: 1.0,
            ..TaleConfig::default()
        };
        let approx = find_matches(&pattern, &data, &loose);
        // The approximate matcher finds at least as many subgraphs as VF2.
        assert!(approx.len() >= exact.matched_subgraphs().len());
    }

    #[test]
    fn no_candidates_for_missing_label() {
        let pattern = pattern_vee();
        let data = Graph::from_edges(vec![Label(5), Label(6)], &[(0, 1)]).unwrap();
        assert!(find_matches(&pattern, &data, &TaleConfig::default()).is_empty());
    }

    #[test]
    fn important_nodes_are_matched_strictly() {
        // The important node is C (degree 2). A data C with only one neighbour label must be
        // rejected even with a generous missing-edge budget.
        let pattern = pattern_vee();
        let data = Graph::from_edges(vec![Label(0), Label(2)], &[(0, 1)]).unwrap();
        let loose = TaleConfig {
            missing_edge_ratio: 1.0,
            ..TaleConfig::default()
        };
        assert!(find_matches(&pattern, &data, &loose).is_empty());
    }

    #[test]
    fn matches_are_deduplicated_and_sorted() {
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let data =
            Graph::from_edges(vec![Label(0), Label(1), Label(1)], &[(0, 1), (0, 2)]).unwrap();
        let matches = find_matches(&pattern, &data, &TaleConfig::default());
        assert_eq!(matches.len(), 2);
        assert!(matches.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn per_seed_cap_limits_output() {
        // One A seed connected to many B's: cap the matches per seed.
        let mut labels = vec![Label(0)];
        let mut edges = Vec::new();
        for i in 1..=20u32 {
            labels.push(Label(1));
            edges.push((0, i));
        }
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let data = Graph::from_edges(labels, &edges).unwrap();
        let config = TaleConfig {
            max_matches_per_seed: 5,
            ..TaleConfig::default()
        };
        let matches = find_matches(&pattern, &data, &config);
        assert_eq!(matches.len(), 5);
    }
}

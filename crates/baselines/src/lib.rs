//! Baseline matchers used by the paper's evaluation (Section 5).
//!
//! The experiments of *"Capturing Topology in Graph Pattern Matching"* compare strong
//! simulation against three baselines:
//!
//! * **VF2** subgraph isomorphism ([`vf2`]) — the exact matcher (the paper uses the igraph
//!   implementation; this crate re-implements the algorithm from scratch),
//! * **TALE**-style approximate matching ([`tale`]) — neighbourhood-index driven approximate
//!   matching in the spirit of Tian & Patel (ICDE 2008),
//! * **MCS**-style approximate matching ([`mcs`]) — candidate subgraphs accepted when a
//!   greedy maximum-common-subgraph approximation covers at least 70% of the pattern,
//!   following the paper's experimental protocol.
//!
//! All three return [`MatchedSubgraph`]s over the original data-graph node ids so the
//! experiment harness can compute the *closeness* metric and the matched-subgraph counts of
//! Figures 7(c)–7(n).

pub mod mcs;
pub mod tale;
pub mod vf2;

use ssim_graph::NodeId;
use std::collections::BTreeSet;

/// A matched subgraph reported by one of the baseline algorithms: the set of data nodes it
/// covers (edges are implied by the pattern structure for exact matchers).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MatchedSubgraph {
    /// Data nodes of the matched subgraph, ascending and deduplicated.
    pub nodes: Vec<NodeId>,
}

impl MatchedSubgraph {
    /// Builds a matched subgraph from an arbitrary iterator of node ids.
    pub fn new(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let set: BTreeSet<NodeId> = nodes.into_iter().collect();
        MatchedSubgraph {
            nodes: set.into_iter().collect(),
        }
    }

    /// Number of nodes in the matched subgraph.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the subgraph contains `node`.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.binary_search(&node).is_ok()
    }
}

/// Union of the node sets of a collection of matched subgraphs — the quantity used by the
/// closeness metric of the paper.
pub fn matched_node_union(subgraphs: &[MatchedSubgraph]) -> BTreeSet<NodeId> {
    subgraphs
        .iter()
        .flat_map(|s| s.nodes.iter().copied())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matched_subgraph_dedups_and_sorts() {
        let s = MatchedSubgraph::new([NodeId(3), NodeId(1), NodeId(3)]);
        assert_eq!(s.nodes, vec![NodeId(1), NodeId(3)]);
        assert_eq!(s.node_count(), 2);
        assert!(s.contains(NodeId(1)));
        assert!(!s.contains(NodeId(2)));
    }

    #[test]
    fn union_of_matches() {
        let a = MatchedSubgraph::new([NodeId(0), NodeId(1)]);
        let b = MatchedSubgraph::new([NodeId(1), NodeId(2)]);
        let union = matched_node_union(&[a, b]);
        assert_eq!(union.len(), 3);
    }
}

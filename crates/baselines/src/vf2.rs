//! VF2-style subgraph isomorphism.
//!
//! The paper's exact baseline: given a pattern `Q` and a data graph `G`, enumerate the
//! injective mappings `f : Vq → V` such that node labels agree and every pattern edge
//! `(u, u')` is realised by the data edge `(f(u), f(u'))` — i.e. subgraph matching in the
//! sense of the paper's Section 1 definition (the matched subgraph carries exactly the
//! matched edges). The implementation follows the VF2 recipe: a fixed, connectivity-aware
//! matching order, candidate generation from already-mapped neighbours, and look-ahead
//! pruning on degrees; enumeration is exhaustive but can be capped by both an embedding
//! limit and a search-step budget so the harness can run it on graphs where exhaustive
//! enumeration would explode (VF2 is the algorithm that "does not scale" in Figures 8).

use crate::MatchedSubgraph;
use ssim_graph::{BitSet, Graph, NodeId, Pattern};

/// Limits applied to the enumeration.
#[derive(Debug, Clone, Copy)]
pub struct Vf2Limits {
    /// Stop after this many embeddings have been found.
    pub max_embeddings: usize,
    /// Stop after this many candidate-extension steps (guards against exponential blow-up).
    pub max_steps: usize,
}

impl Default for Vf2Limits {
    fn default() -> Self {
        Vf2Limits {
            max_embeddings: 100_000,
            max_steps: 50_000_000,
        }
    }
}

/// Outcome of a VF2 enumeration.
#[derive(Debug, Clone)]
pub struct Vf2Result {
    /// One entry per embedding: `mapping[u] = v` maps pattern node `u` to data node `v`.
    pub embeddings: Vec<Vec<NodeId>>,
    /// `true` when a limit stopped the search before exhausting the space.
    pub truncated: bool,
    /// Number of candidate-extension steps performed.
    pub steps: usize,
}

impl Vf2Result {
    /// The matched subgraphs (node sets) of the embeddings, deduplicated.
    pub fn matched_subgraphs(&self) -> Vec<MatchedSubgraph> {
        let mut subs: Vec<MatchedSubgraph> = self
            .embeddings
            .iter()
            .map(|e| MatchedSubgraph::new(e.iter().copied()))
            .collect();
        subs.sort();
        subs.dedup();
        subs
    }

    /// Returns `true` when at least one embedding was found.
    pub fn is_match(&self) -> bool {
        !self.embeddings.is_empty()
    }
}

/// Enumerates subgraph-isomorphism embeddings of `pattern` into `data`.
pub fn find_embeddings(pattern: &Pattern, data: &Graph, limits: Vf2Limits) -> Vf2Result {
    let order = matching_order(pattern);
    let q = pattern.graph();
    let nq = q.node_count();
    let mut mapping: Vec<Option<NodeId>> = vec![None; nq];
    let mut used = BitSet::new(data.node_count());
    let mut result = Vf2Result {
        embeddings: Vec::new(),
        truncated: false,
        steps: 0,
    };

    // Pre-compute pattern degrees for the look-ahead check.
    let q_out: Vec<usize> = q.nodes().map(|u| q.out_degree(u)).collect();
    let q_in: Vec<usize> = q.nodes().map(|u| q.in_degree(u)).collect();

    #[allow(clippy::too_many_arguments)]
    fn recurse(
        depth: usize,
        order: &[NodeId],
        pattern: &Graph,
        data: &Graph,
        q_out: &[usize],
        q_in: &[usize],
        mapping: &mut Vec<Option<NodeId>>,
        used: &mut BitSet,
        limits: &Vf2Limits,
        result: &mut Vf2Result,
    ) {
        if result.embeddings.len() >= limits.max_embeddings || result.steps >= limits.max_steps {
            result.truncated = true;
            return;
        }
        if depth == order.len() {
            result.embeddings.push(
                mapping
                    .iter()
                    .map(|m| m.expect("complete mapping"))
                    .collect(),
            );
            return;
        }
        let u = order[depth];
        // Candidate generation: if some neighbour of u is already mapped, only data nodes
        // adjacent to its image (in the right direction) qualify; otherwise fall back to the
        // label index.
        let candidates: Vec<NodeId> = candidate_nodes(u, pattern, data, mapping);
        for v in candidates {
            result.steps += 1;
            if result.steps >= limits.max_steps {
                result.truncated = true;
                return;
            }
            if used.contains(v.index()) || data.label(v) != pattern.label(u) {
                continue;
            }
            // Degree look-ahead: v must offer at least as many out/in edges as u requires.
            if data.out_degree(v) < q_out[u.index()] || data.in_degree(v) < q_in[u.index()] {
                continue;
            }
            // Consistency with all already-mapped pattern neighbours.
            if !consistent(u, v, pattern, data, mapping) {
                continue;
            }
            mapping[u.index()] = Some(v);
            used.insert(v.index());
            recurse(
                depth + 1,
                order,
                pattern,
                data,
                q_out,
                q_in,
                mapping,
                used,
                limits,
                result,
            );
            used.remove(v.index());
            mapping[u.index()] = None;
            if result.truncated {
                return;
            }
        }
    }

    recurse(
        0,
        &order,
        q,
        data,
        &q_out,
        &q_in,
        &mut mapping,
        &mut used,
        &limits,
        &mut result,
    );
    result
}

/// Returns `true` when at least one embedding of `pattern` exists in `data`.
pub fn is_subgraph_isomorphic(pattern: &Pattern, data: &Graph) -> bool {
    find_embeddings(
        pattern,
        data,
        Vf2Limits {
            max_embeddings: 1,
            ..Vf2Limits::default()
        },
    )
    .is_match()
}

/// Matching order: start from the node with the rarest label/highest degree, then repeatedly
/// append the unmatched node with the most already-ordered neighbours (ties broken by
/// degree). Keeps the partial pattern connected, which is what makes VF2 effective.
fn matching_order(pattern: &Pattern) -> Vec<NodeId> {
    let q = pattern.graph();
    let n = q.node_count();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    // Seed: maximum total degree.
    let seed = q
        .nodes()
        .max_by_key(|&u| q.degree(u))
        .expect("patterns are non-empty");
    order.push(seed);
    placed[seed.index()] = true;
    while order.len() < n {
        let next = q
            .nodes()
            .filter(|u| !placed[u.index()])
            .max_by_key(|&u| {
                let ordered_neighbors = q
                    .out_neighbors(u)
                    .chain(q.in_neighbors(u))
                    .filter(|w| placed[w.index()])
                    .count();
                (ordered_neighbors, q.degree(u))
            })
            .expect("some node remains");
        placed[next.index()] = true;
        order.push(next);
    }
    order
}

/// Candidates for pattern node `u` given the current partial mapping.
fn candidate_nodes(
    u: NodeId,
    pattern: &Graph,
    data: &Graph,
    mapping: &[Option<NodeId>],
) -> Vec<NodeId> {
    // Prefer to derive candidates from a mapped pattern parent (images' out-neighbours) or
    // mapped pattern child (images' in-neighbours) — much smaller than the label index.
    for p in pattern.in_neighbors(u) {
        if let Some(img) = mapping[p.index()] {
            return data.out_neighbors(img).collect();
        }
    }
    for c in pattern.out_neighbors(u) {
        if let Some(img) = mapping[c.index()] {
            return data.in_neighbors(img).collect();
        }
    }
    data.nodes_with_label(pattern.label(u)).to_vec()
}

/// Checks that mapping `u -> v` respects every edge between `u` and already-mapped pattern
/// nodes.
fn consistent(
    u: NodeId,
    v: NodeId,
    pattern: &Graph,
    data: &Graph,
    mapping: &[Option<NodeId>],
) -> bool {
    for w in pattern.out_neighbors(u) {
        if let Some(img) = mapping[w.index()] {
            if !data.has_edge(v, img) {
                return false;
            }
        }
    }
    for w in pattern.in_neighbors(u) {
        if let Some(img) = mapping[w.index()] {
            if !data.has_edge(img, v) {
                return false;
            }
        }
    }
    // Self-loop requirement.
    if pattern.has_edge(u, u) && !data.has_edge(v, v) {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_graph::Label;

    fn pattern_triangle() -> Pattern {
        Pattern::from_edges(
            vec![Label(0), Label(1), Label(2)],
            &[(0, 1), (1, 2), (2, 0)],
        )
        .unwrap()
    }

    #[test]
    fn finds_a_triangle() {
        let pattern = pattern_triangle();
        let data = Graph::from_edges(
            vec![Label(0), Label(1), Label(2), Label(0)],
            &[(0, 1), (1, 2), (2, 0), (3, 1)],
        )
        .unwrap();
        let result = find_embeddings(&pattern, &data, Vf2Limits::default());
        assert_eq!(result.embeddings.len(), 1);
        assert!(!result.truncated);
        assert_eq!(result.embeddings[0], vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert!(is_subgraph_isomorphic(&pattern, &data));
        assert_eq!(result.matched_subgraphs().len(), 1);
    }

    #[test]
    fn no_triangle_in_a_dag() {
        let pattern = pattern_triangle();
        let data =
            Graph::from_edges(vec![Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]).unwrap();
        assert!(!is_subgraph_isomorphic(&pattern, &data));
    }

    #[test]
    fn counts_all_embeddings_of_a_fork() {
        // Pattern: A -> B. Data: one A pointing at three B's => 3 embeddings.
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let data = Graph::from_edges(
            vec![Label(0), Label(1), Label(1), Label(1)],
            &[(0, 1), (0, 2), (0, 3)],
        )
        .unwrap();
        let result = find_embeddings(&pattern, &data, Vf2Limits::default());
        assert_eq!(result.embeddings.len(), 3);
        // Each embedding is a distinct node set here.
        assert_eq!(result.matched_subgraphs().len(), 3);
    }

    #[test]
    fn injectivity_is_enforced() {
        // Pattern: two distinct A nodes pointing at the same B. Data: a single A cannot play
        // both roles.
        let pattern =
            Pattern::from_edges(vec![Label(0), Label(0), Label(1)], &[(0, 2), (1, 2)]).unwrap();
        let single = Graph::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        assert!(!is_subgraph_isomorphic(&pattern, &single));
        let double =
            Graph::from_edges(vec![Label(0), Label(0), Label(1)], &[(0, 2), (1, 2)]).unwrap();
        let result = find_embeddings(&pattern, &double, Vf2Limits::default());
        // Two embeddings (the two A's can swap), one distinct node set.
        assert_eq!(result.embeddings.len(), 2);
        assert_eq!(result.matched_subgraphs().len(), 1);
    }

    #[test]
    fn subgraph_matching_is_not_induced() {
        // Data has an extra edge between the images; monomorphism still succeeds.
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let data = Graph::from_edges(vec![Label(0), Label(1)], &[(0, 1), (1, 0)]).unwrap();
        assert!(is_subgraph_isomorphic(&pattern, &data));
    }

    #[test]
    fn embedding_limit_truncates() {
        // Star pattern A->B embedded in a graph with many B's, limit 2.
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let mut labels = vec![Label(0)];
        let mut edges = Vec::new();
        for i in 1..=10u32 {
            labels.push(Label(1));
            edges.push((0, i));
        }
        let data = Graph::from_edges(labels, &edges).unwrap();
        let result = find_embeddings(
            &pattern,
            &data,
            Vf2Limits {
                max_embeddings: 2,
                max_steps: 1_000_000,
            },
        );
        assert_eq!(result.embeddings.len(), 2);
        assert!(result.truncated);
    }

    #[test]
    fn step_budget_truncates() {
        let pattern = pattern_triangle();
        let data = Graph::from_edges(
            vec![Label(0), Label(1), Label(2)],
            &[(0, 1), (1, 2), (2, 0)],
        )
        .unwrap();
        let result = find_embeddings(
            &pattern,
            &data,
            Vf2Limits {
                max_embeddings: 10,
                max_steps: 1,
            },
        );
        assert!(result.truncated);
    }

    #[test]
    fn self_loop_pattern_requires_self_loop_in_data() {
        let pattern = Pattern::from_edges(vec![Label(0)], &[(0, 0)]).unwrap();
        let without = Graph::from_edges(vec![Label(0), Label(0)], &[(0, 1), (1, 0)]).unwrap();
        assert!(!is_subgraph_isomorphic(&pattern, &without));
        let with = Graph::from_edges(vec![Label(0)], &[(0, 0)]).unwrap();
        assert!(is_subgraph_isomorphic(&pattern, &with));
    }

    #[test]
    fn directed_two_cycle_does_not_match_four_cycle() {
        // Example 1/2 of the paper: the DM<->AI 2-cycle has no isomorphic image in a longer
        // alternating cycle.
        let pattern = Pattern::from_edges(vec![Label(0), Label(1)], &[(0, 1), (1, 0)]).unwrap();
        let four = Graph::from_edges(
            vec![Label(0), Label(1), Label(0), Label(1)],
            &[(0, 1), (1, 2), (2, 3), (3, 0)],
        )
        .unwrap();
        assert!(!is_subgraph_isomorphic(&pattern, &four));
    }

    #[test]
    fn matching_order_is_a_permutation() {
        let pattern = pattern_triangle();
        let mut order = matching_order(&pattern);
        order.sort_unstable();
        assert_eq!(order, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }
}

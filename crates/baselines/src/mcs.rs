//! MCS-based approximate matching (the paper's second approximate baseline).
//!
//! The experimental protocol of Section 5: a candidate subgraph `Gs` of `G` with the same
//! number of nodes as the pattern `Q` is accepted as a match when
//! `|mcs(Q, Gs)| / max(|Vq|, |Vs|) ≥ 0.7`, where `mcs` is a maximum common subgraph computed
//! with an approximation algorithm (the paper cites Kann's STACS'92 approximation).
//!
//! Exhaustively enumerating all `|Vq|`-node subgraphs of `G` is infeasible (the paper makes
//! the same observation), so — like the paper — candidate subgraphs are generated around
//! seed nodes: for every data node carrying a pattern label, the candidate is the
//! `|Vq|`-node breadth-first neighbourhood preferring pattern labels. The MCS itself is
//! approximated greedily, pairing label-compatible nodes in decreasing order of realised
//! adjacency with already-paired nodes.

use crate::MatchedSubgraph;
use ssim_graph::{BitSet, Graph, NodeId, Pattern};

/// Tuning knobs of the MCS baseline.
#[derive(Debug, Clone, Copy)]
pub struct McsConfig {
    /// Acceptance threshold on `|mcs| / max(|Vq|, |Vs|)` (0.7 in the paper).
    pub threshold: f64,
    /// Upper bound on the number of candidate subgraphs examined (one per seed by default).
    pub max_candidates: usize,
}

impl Default for McsConfig {
    fn default() -> Self {
        McsConfig {
            threshold: 0.7,
            max_candidates: 100_000,
        }
    }
}

/// Runs the MCS baseline and returns the accepted candidate subgraphs.
pub fn find_matches(pattern: &Pattern, data: &Graph, config: &McsConfig) -> Vec<MatchedSubgraph> {
    let nq = pattern.node_count();
    if nq == 0 || data.node_count() == 0 {
        return Vec::new();
    }
    let pattern_labels: std::collections::HashSet<_> =
        pattern.nodes().map(|u| pattern.label(u)).collect();

    let mut results = Vec::new();
    let mut examined = 0usize;
    for seed in data.nodes() {
        if !pattern_labels.contains(&data.label(seed)) {
            continue;
        }
        if examined >= config.max_candidates {
            break;
        }
        examined += 1;
        let candidate = candidate_subgraph(data, seed, nq, &pattern_labels);
        if candidate.len() < 2 && nq > 1 {
            continue;
        }
        let mcs_size = greedy_mcs(pattern, data, &candidate);
        let denom = nq.max(candidate.len()) as f64;
        if mcs_size as f64 / denom >= config.threshold {
            results.push(MatchedSubgraph::new(candidate));
        }
    }
    results.sort();
    results.dedup();
    results
}

/// Grows a candidate subgraph of up to `size` nodes around `seed`, preferring neighbours
/// whose label occurs in the pattern.
fn candidate_subgraph(
    data: &Graph,
    seed: NodeId,
    size: usize,
    pattern_labels: &std::collections::HashSet<ssim_graph::Label>,
) -> Vec<NodeId> {
    let mut selected = vec![seed];
    let mut in_selected = BitSet::new(data.node_count());
    in_selected.insert(seed.index());
    let mut frontier = 0usize;
    while selected.len() < size && frontier < selected.len() {
        let current = selected[frontier];
        frontier += 1;
        // Neighbours with pattern labels first, then any neighbour, deterministic order.
        let mut neighbors: Vec<NodeId> = data
            .out_neighbors(current)
            .chain(data.in_neighbors(current))
            .collect();
        neighbors.sort_by_key(|&v| (!pattern_labels.contains(&data.label(v)), v));
        for v in neighbors {
            if selected.len() >= size {
                break;
            }
            if in_selected.insert(v.index()) {
                selected.push(v);
            }
        }
    }
    selected
}

/// Greedy approximation of the maximum common subgraph size between the pattern and the
/// candidate node set: repeatedly pair the (pattern node, candidate node) with equal labels
/// that realises the most edges towards already-paired nodes.
fn greedy_mcs(pattern: &Pattern, data: &Graph, candidate: &[NodeId]) -> usize {
    let q = pattern.graph();
    let mut pattern_used = vec![false; q.node_count()];
    let mut data_used = BitSet::new(data.node_count());
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();

    loop {
        let mut best: Option<(usize, NodeId, NodeId)> = None;
        for u in q.nodes().filter(|u| !pattern_used[u.index()]) {
            for &v in candidate.iter().filter(|v| !data_used.contains(v.index())) {
                if q.label(u) != data.label(v) {
                    continue;
                }
                // Edges preserved towards already-paired nodes (both directions).
                let mut score = 0usize;
                for &(pu, pv) in &pairs {
                    if q.has_edge(u, pu) && data.has_edge(v, pv) {
                        score += 1;
                    }
                    if q.has_edge(pu, u) && data.has_edge(pv, v) {
                        score += 1;
                    }
                }
                // Prefer higher scores; ties broken by smaller ids for determinism.
                let better = match best {
                    None => true,
                    Some((s, bu, bv)) => score > s || (score == s && (u, v) < (bu, bv)),
                };
                if better {
                    best = Some((score, u, v));
                }
            }
        }
        match best {
            // Once pairs exist, only accept extensions that preserve at least one edge —
            // otherwise the "common subgraph" would degenerate into a label multiset match.
            Some((score, u, v)) if pairs.is_empty() || score > 0 => {
                pattern_used[u.index()] = true;
                data_used.insert(v.index());
                pairs.push((u, v));
            }
            _ => break,
        }
    }
    pairs.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssim_graph::Label;

    fn pattern_path() -> Pattern {
        // A -> B -> C
        Pattern::from_edges(vec![Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]).unwrap()
    }

    #[test]
    fn exact_copy_is_accepted() {
        let pattern = pattern_path();
        let data =
            Graph::from_edges(vec![Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]).unwrap();
        let matches = find_matches(&pattern, &data, &McsConfig::default());
        assert!(!matches.is_empty());
        assert!(matches.iter().any(|m| m.node_count() == 3));
    }

    #[test]
    fn partially_matching_neighbourhood_passes_the_threshold() {
        // Data: A -> B -> D (wrong last label). MCS pairs A and B (2 of 3 nodes = 0.66 < 0.7
        // → rejected) unless the threshold is lowered.
        let pattern = pattern_path();
        let data =
            Graph::from_edges(vec![Label(0), Label(1), Label(9)], &[(0, 1), (1, 2)]).unwrap();
        let strict = find_matches(&pattern, &data, &McsConfig::default());
        assert!(strict.is_empty());
        let lenient = find_matches(
            &pattern,
            &data,
            &McsConfig {
                threshold: 0.6,
                ..Default::default()
            },
        );
        assert!(!lenient.is_empty());
    }

    #[test]
    fn unrelated_labels_never_match() {
        let pattern = pattern_path();
        let data = Graph::from_edges(vec![Label(7), Label(8)], &[(0, 1)]).unwrap();
        assert!(find_matches(&pattern, &data, &McsConfig::default()).is_empty());
    }

    #[test]
    fn candidate_cap_is_respected() {
        let pattern = Pattern::from_edges(vec![Label(0)], &[]).unwrap();
        let labels = vec![Label(0); 50];
        let data = Graph::from_edges(labels, &[]).unwrap();
        let config = McsConfig {
            max_candidates: 5,
            ..Default::default()
        };
        let matches = find_matches(&pattern, &data, &config);
        assert!(matches.len() <= 5);
    }

    #[test]
    fn greedy_mcs_scores_shared_structure() {
        let pattern = pattern_path();
        let data =
            Graph::from_edges(vec![Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]).unwrap();
        let full = greedy_mcs(&pattern, &data, &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(full, 3);
        let partial = greedy_mcs(&pattern, &data, &[NodeId(0), NodeId(2)]);
        // A and C are label-compatible but share no edge, so only one of them can be paired
        // after the first pick.
        assert_eq!(partial, 1);
    }

    #[test]
    fn mcs_returns_more_or_equal_matches_than_threshold_one() {
        // Lowering the threshold can only add matches.
        let pattern = pattern_path();
        let data = Graph::from_edges(
            vec![Label(0), Label(1), Label(2), Label(0), Label(1), Label(9)],
            &[(0, 1), (1, 2), (3, 4), (4, 5)],
        )
        .unwrap();
        let strict = find_matches(
            &pattern,
            &data,
            &McsConfig {
                threshold: 0.9,
                ..Default::default()
            },
        );
        let loose = find_matches(
            &pattern,
            &data,
            &McsConfig {
                threshold: 0.5,
                ..Default::default()
            },
        );
        assert!(loose.len() >= strict.len());
    }
}

//! Dense subgraph extraction: materialising an induced subgraph as its own CSR graph.
//!
//! The optimised matcher (`Match+`, Fig. 5) computes the global dual-simulation relation
//! once and then only ever works with the *matched* data nodes — the node set of the match
//! graph `Gm`. Running the downstream ball pipeline over the original graph makes every
//! ball BFS pay for the unmatched neighbourhood it traverses and discards; extracting `Gm`
//! once as a dense, renumbered graph shrinks the traversal substrate to the candidate
//! density instead of the raw degree.
//!
//! [`ExtractedSubgraph`] is that extraction: a membership bitset over the outer graph is
//! compacted into a fresh [`Graph`] (forward and reverse CSR plus label index, exactly
//! like any other graph — everything downstream works unchanged) together with the
//! id-translation table back to the outer graph. Inner ids are assigned in ascending
//! outer-id order, so the translation is **monotone**: sorted inner-id sequences stay
//! sorted after translation, which lets result emission skip re-sorts.
//!
//! Unlike [`Graph::induced_subgraph`] — which routes through [`crate::builder::GraphBuilder`]
//! and re-sorts every adjacency list — the extraction here copies straight CSR-to-CSR:
//! outer adjacency lists are already sorted, and a monotone remap preserves that, so the
//! cost is one counting pass plus one fill pass over the members' incident edges.

use crate::bitset::BitSet;
use crate::graph::{Graph, NodeId};
use crate::labels::Label;
use crate::view::AdjView;

/// An induced subgraph materialised as a dense CSR [`Graph`], with the id translation
/// back to the graph it was extracted from.
///
/// Inner node ids are `0..member_count`, in ascending order of the outer ids, so
/// [`ExtractedSubgraph::outer_of`] is a monotone map.
#[derive(Debug, Clone)]
pub struct ExtractedSubgraph {
    /// The extracted subgraph: members only, all outer edges between them.
    graph: Graph,
    /// Inner id → outer id (ascending).
    to_outer: Vec<NodeId>,
    /// Outer id → inner id (`u32::MAX` = not a member).
    inner: Vec<u32>,
}

impl ExtractedSubgraph {
    /// Extracts the subgraph of `outer` induced by `members` (all edges of `outer` with
    /// both endpoints in the set).
    ///
    /// Generic over [`AdjView`] so the same straight-to-CSR copy works from a flat
    /// [`Graph`], an overlay ([`crate::OverlayGraph`] merges patches during iteration),
    /// or a restricted view. The view's adjacency must iterate in ascending id order —
    /// true for all of those — because the monotone remap relies on it to produce
    /// sorted inner lists without a per-node re-sort.
    ///
    /// # Panics
    /// Panics when the bitset capacity does not match the view's id space.
    pub fn induced<V: AdjView>(outer: &V, members: &BitSet) -> Self {
        assert_eq!(
            members.capacity(),
            outer.id_space(),
            "membership bitset must cover the outer graph"
        );
        let n = members.len();
        let mut to_outer: Vec<NodeId> = Vec::with_capacity(n);
        let mut inner: Vec<u32> = vec![u32::MAX; outer.id_space()];
        for (i, m) in members.iter().enumerate() {
            inner[m] = i as u32;
            to_outer.push(NodeId::from_index(m));
        }
        let mut labels: Vec<Label> = Vec::with_capacity(n);
        // Counting pass: surviving out-/in-degrees per member.
        let mut fwd_offsets: Vec<usize> = Vec::with_capacity(n + 1);
        let mut rev_offsets: Vec<usize> = Vec::with_capacity(n + 1);
        fwd_offsets.push(0);
        rev_offsets.push(0);
        let (mut fwd_total, mut rev_total) = (0usize, 0usize);
        for &o in &to_outer {
            labels.push(outer.label(o));
            fwd_total += outer
                .out_neighbors(o)
                .filter(|t| inner[t.index()] != u32::MAX)
                .count();
            rev_total += outer
                .in_neighbors(o)
                .filter(|s| inner[s.index()] != u32::MAX)
                .count();
            fwd_offsets.push(fwd_total);
            rev_offsets.push(rev_total);
        }
        // Fill pass: outer adjacency lists are sorted and the remap is monotone, so the
        // inner lists come out sorted without any per-node sort.
        let mut fwd_targets: Vec<NodeId> = Vec::with_capacity(fwd_total);
        let mut rev_targets: Vec<NodeId> = Vec::with_capacity(rev_total);
        for &o in &to_outer {
            for t in outer.out_neighbors(o) {
                let ti = inner[t.index()];
                if ti != u32::MAX {
                    fwd_targets.push(NodeId(ti));
                }
            }
            for s in outer.in_neighbors(o) {
                let si = inner[s.index()];
                if si != u32::MAX {
                    rev_targets.push(NodeId(si));
                }
            }
        }
        ExtractedSubgraph {
            graph: Graph::from_csr(labels, fwd_offsets, fwd_targets, rev_offsets, rev_targets),
            to_outer,
            inner,
        }
    }

    /// The extracted subgraph. Everything that consumes a [`Graph`] — balls, views,
    /// matchers — works on it unchanged; only its node ids are inner ids.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of member nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.to_outer.len()
    }

    /// Number of surviving edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Inner id → outer id translation table (ascending in the inner id).
    #[inline]
    pub fn to_outer(&self) -> &[NodeId] {
        &self.to_outer
    }

    /// Outer id of inner node `inner`.
    ///
    /// # Panics
    /// Panics when `inner` is out of range.
    #[inline]
    pub fn outer_of(&self, inner: NodeId) -> NodeId {
        self.to_outer[inner.index()]
    }

    /// Inner id of outer node `outer`, when it is a member. `O(1)`.
    #[inline]
    pub fn inner_of(&self, outer: NodeId) -> Option<NodeId> {
        match self.inner.get(outer.index()) {
            Some(&i) if i != u32::MAX => Some(NodeId(i)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_and_members() -> (Graph, BitSet) {
        // 0 -> 1 -> 2 -> 3 -> 4, 0 -> 2, 2 -> 0, 1 -> 3, self-loop on 3.
        let g = Graph::from_edges(
            vec![Label(0), Label(1), Label(0), Label(2), Label(1)],
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (0, 2),
                (2, 0),
                (1, 3),
                (3, 3),
            ],
        )
        .unwrap();
        let mut members = BitSet::new(g.node_count());
        for i in [0usize, 2, 3] {
            members.insert(i);
        }
        (g, members)
    }

    #[test]
    fn extraction_matches_builder_based_induced_subgraph() {
        let (g, members) = graph_and_members();
        let sub = ExtractedSubgraph::induced(&g, &members);
        let outer_members: Vec<NodeId> = members.iter().map(NodeId::from_index).collect();
        let (oracle, mapping) = g.induced_subgraph(&outer_members);
        assert_eq!(sub.node_count(), oracle.node_count());
        assert_eq!(sub.edge_count(), oracle.edge_count());
        assert_eq!(sub.to_outer(), mapping.as_slice());
        for v in oracle.nodes() {
            assert_eq!(sub.graph().label(v), oracle.label(v));
            let got: Vec<NodeId> = sub.graph().out_neighbors(v).collect();
            let want: Vec<NodeId> = oracle.out_neighbors(v).collect();
            assert_eq!(got, want, "out-adjacency of inner node {v}");
            let got_in: Vec<NodeId> = sub.graph().in_neighbors(v).collect();
            let want_in: Vec<NodeId> = oracle.in_neighbors(v).collect();
            assert_eq!(got_in, want_in, "in-adjacency of inner node {v}");
        }
    }

    #[test]
    fn id_translation_roundtrips_and_is_monotone() {
        let (g, members) = graph_and_members();
        let sub = ExtractedSubgraph::induced(&g, &members);
        for v in sub.graph().nodes() {
            assert_eq!(sub.inner_of(sub.outer_of(v)), Some(v));
        }
        assert_eq!(sub.inner_of(NodeId(1)), None);
        assert_eq!(sub.inner_of(NodeId(99)), None);
        // Monotone translation: ascending inner ids map to ascending outer ids.
        for pair in sub.to_outer().windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn label_index_of_extraction_is_queryable() {
        let (g, members) = graph_and_members();
        let sub = ExtractedSubgraph::induced(&g, &members);
        // Members 0 and 2 carry Label(0), member 3 carries Label(2).
        assert_eq!(
            sub.graph().nodes_with_label(Label(0)),
            &[NodeId(0), NodeId(1)]
        );
        assert_eq!(sub.graph().nodes_with_label(Label(2)), &[NodeId(2)]);
        assert_eq!(sub.graph().nodes_with_label(Label(1)), &[] as &[NodeId]);
    }

    #[test]
    fn empty_and_full_memberships() {
        let (g, _) = graph_and_members();
        let empty = ExtractedSubgraph::induced(&g, &BitSet::new(g.node_count()));
        assert_eq!(empty.node_count(), 0);
        assert_eq!(empty.edge_count(), 0);
        let full = ExtractedSubgraph::induced(&g, &BitSet::full(g.node_count()));
        assert_eq!(full.node_count(), g.node_count());
        assert_eq!(full.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(full.outer_of(v), v);
            let got: Vec<NodeId> = full.graph().out_neighbors(v).collect();
            let want: Vec<NodeId> = g.out_neighbors(v).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    #[should_panic(expected = "membership bitset must cover")]
    fn capacity_mismatch_panics() {
        let (g, _) = graph_and_members();
        let _ = ExtractedSubgraph::induced(&g, &BitSet::new(2));
    }
}

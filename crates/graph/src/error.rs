//! Error types for graph construction and I/O.

use std::fmt;

/// Errors raised while building, validating or parsing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a node id that does not exist in the graph.
    InvalidNode {
        /// The offending node id (raw index).
        node: u32,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// A pattern graph was required to be connected but is not.
    DisconnectedPattern {
        /// Number of undirected connected components found.
        components: usize,
    },
    /// A pattern graph must contain at least one node.
    EmptyPattern,
    /// A textual graph description could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A delta tried to delete an edge the graph does not contain.
    MissingEdge {
        /// Source node id of the missing edge.
        from: u32,
        /// Target node id of the missing edge.
        to: u32,
    },
    /// A delta tried to insert an edge the graph already contains.
    EdgeExists {
        /// Source node id of the duplicate edge.
        from: u32,
        /// Target node id of the duplicate edge.
        to: u32,
    },
    /// A delta mentions the same directed edge twice (duplicated op, or inserted and
    /// deleted in the same batch).
    ConflictingDelta {
        /// Source node id of the conflicting edge.
        from: u32,
        /// Target node id of the conflicting edge.
        to: u32,
    },
    /// A delta's expected endpoint label does not match the graph — the delta was built
    /// against a different graph version (or the wrong graph entirely).
    LabelMismatch {
        /// The node whose label was pinned.
        node: u32,
        /// The label the delta expected (raw id).
        expected: u32,
        /// The label the graph actually carries (raw id).
        found: u32,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidNode { node, node_count } => {
                write!(
                    f,
                    "node id {node} out of range (graph has {node_count} nodes)"
                )
            }
            GraphError::DisconnectedPattern { components } => {
                write!(
                    f,
                    "pattern graphs must be connected, found {components} connected components"
                )
            }
            GraphError::EmptyPattern => write!(f, "pattern graphs must contain at least one node"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::MissingEdge { from, to } => {
                write!(
                    f,
                    "delta deletes edge ({from}, {to}) which is not in the graph"
                )
            }
            GraphError::EdgeExists { from, to } => {
                write!(f, "delta inserts edge ({from}, {to}) which already exists")
            }
            GraphError::ConflictingDelta { from, to } => {
                write!(f, "delta mentions edge ({from}, {to}) more than once")
            }
            GraphError::LabelMismatch {
                node,
                expected,
                found,
            } => {
                write!(
                    f,
                    "delta expected node {node} to carry label {expected}, graph has {found}"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_node() {
        let e = GraphError::InvalidNode {
            node: 7,
            node_count: 3,
        };
        assert_eq!(e.to_string(), "node id 7 out of range (graph has 3 nodes)");
    }

    #[test]
    fn display_disconnected() {
        let e = GraphError::DisconnectedPattern { components: 2 };
        assert!(e.to_string().contains("2 connected components"));
    }

    #[test]
    fn display_parse() {
        let e = GraphError::Parse {
            line: 4,
            message: "bad edge".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 4: bad edge");
    }

    #[test]
    fn display_empty_pattern() {
        assert!(GraphError::EmptyPattern
            .to_string()
            .contains("at least one node"));
    }
}

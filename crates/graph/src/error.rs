//! Error types for graph construction and I/O.

use std::fmt;

/// Errors raised while building, validating or parsing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a node id that does not exist in the graph.
    InvalidNode {
        /// The offending node id (raw index).
        node: u32,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// A pattern graph was required to be connected but is not.
    DisconnectedPattern {
        /// Number of undirected connected components found.
        components: usize,
    },
    /// A pattern graph must contain at least one node.
    EmptyPattern,
    /// A textual graph description could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidNode { node, node_count } => {
                write!(
                    f,
                    "node id {node} out of range (graph has {node_count} nodes)"
                )
            }
            GraphError::DisconnectedPattern { components } => {
                write!(
                    f,
                    "pattern graphs must be connected, found {components} connected components"
                )
            }
            GraphError::EmptyPattern => write!(f, "pattern graphs must contain at least one node"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_node() {
        let e = GraphError::InvalidNode {
            node: 7,
            node_count: 3,
        };
        assert_eq!(e.to_string(), "node id 7 out of range (graph has 3 nodes)");
    }

    #[test]
    fn display_disconnected() {
        let e = GraphError::DisconnectedPattern { components: 2 };
        assert!(e.to_string().contains("2 connected components"));
    }

    #[test]
    fn display_parse() {
        let e = GraphError::Parse {
            line: 4,
            message: "bad edge".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 4: bad edge");
    }

    #[test]
    fn display_empty_pattern() {
        assert!(GraphError::EmptyPattern
            .to_string()
            .contains("at least one node"));
    }
}

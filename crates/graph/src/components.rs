//! Connected components (undirected) and strongly connected components.
//!
//! Theorem 2 of the paper reduces perfect-subgraph extraction to finding the undirected
//! connected component of the match graph that contains the ball center; connectivity
//! pruning (Example 6) uses the same primitive inside balls.

use crate::graph::{Graph, NodeId};
use crate::view::GraphView;

/// Assignment of every node to an undirected connected component.
#[derive(Debug, Clone)]
pub struct ConnectedComponents {
    /// Component id per node index; nodes outside a restricted view get `usize::MAX`.
    component: Vec<usize>,
    count: usize,
}

/// Marker for nodes that are outside the analysed view.
pub const NO_COMPONENT: usize = usize::MAX;

impl ConnectedComponents {
    /// Computes undirected connected components of the whole graph.
    pub fn compute(graph: &Graph) -> Self {
        Self::compute_view(&GraphView::full(graph))
    }

    /// Computes undirected connected components of a restricted view.
    pub fn compute_view(view: &GraphView<'_>) -> Self {
        let n = view.graph().node_count();
        let mut component = vec![NO_COMPONENT; n];
        let mut count = 0;
        let mut stack = Vec::new();
        for start in view.nodes() {
            if component[start.index()] != NO_COMPONENT {
                continue;
            }
            component[start.index()] = count;
            stack.push(start);
            while let Some(u) = stack.pop() {
                for v in view.out_neighbors(u).chain(view.in_neighbors(u)) {
                    if component[v.index()] == NO_COMPONENT {
                        component[v.index()] = count;
                        stack.push(v);
                    }
                }
            }
            count += 1;
        }
        ConnectedComponents { component, count }
    }

    /// Number of components.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Component id of `node`, or `None` when the node is outside the analysed view.
    pub fn component_of(&self, node: NodeId) -> Option<usize> {
        match self.component.get(node.index()) {
            Some(&c) if c != NO_COMPONENT => Some(c),
            _ => None,
        }
    }

    /// Returns `true` when the two nodes are in the same component.
    pub fn same_component(&self, a: NodeId, b: NodeId) -> bool {
        matches!((self.component_of(a), self.component_of(b)), (Some(x), Some(y)) if x == y)
    }

    /// All nodes of the component containing `node` (ascending order).
    pub fn members_of(&self, node: NodeId) -> Vec<NodeId> {
        match self.component_of(node) {
            None => Vec::new(),
            Some(c) => self
                .component
                .iter()
                .enumerate()
                .filter(|(_, &cc)| cc == c)
                .map(|(i, _)| NodeId::from_index(i))
                .collect(),
        }
    }

    /// Groups nodes by component, returning one vector per component id.
    pub fn groups(&self) -> Vec<Vec<NodeId>> {
        let mut groups = vec![Vec::new(); self.count];
        for (i, &c) in self.component.iter().enumerate() {
            if c != NO_COMPONENT {
                groups[c].push(NodeId::from_index(i));
            }
        }
        groups
    }
}

/// Returns `true` when the graph is (undirected) connected.
///
/// The empty graph is considered connected (it has zero components), matching the convention
/// that pattern graphs are non-empty and connected.
pub fn is_connected(graph: &Graph) -> bool {
    ConnectedComponents::compute(graph).count() <= 1
}

/// Tarjan's strongly connected components (iterative formulation).
///
/// Returns one vector of node ids per SCC, in reverse topological order of the condensation.
pub fn strongly_connected_components(graph: &Graph) -> Vec<Vec<NodeId>> {
    let n = graph.node_count();
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut result: Vec<Vec<NodeId>> = Vec::new();
    let mut next_index = 0u32;

    // Explicit DFS stack: (node, neighbour iterator position).
    enum Frame {
        Enter(NodeId),
        Resume(NodeId, usize),
    }

    for start in graph.nodes() {
        if index[start.index()] != u32::MAX {
            continue;
        }
        let mut call_stack = vec![Frame::Enter(start)];
        while let Some(frame) = call_stack.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v.index()] = next_index;
                    low[v.index()] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v.index()] = true;
                    call_stack.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut child_pos) => {
                    let neighbors: Vec<NodeId> = graph.out_neighbors(v).collect();
                    let mut descended = false;
                    while child_pos < neighbors.len() {
                        let w = neighbors[child_pos];
                        child_pos += 1;
                        if index[w.index()] == u32::MAX {
                            call_stack.push(Frame::Resume(v, child_pos));
                            call_stack.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w.index()] {
                            low[v.index()] = low[v.index()].min(index[w.index()]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    if low[v.index()] == index[v.index()] {
                        let mut scc = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w.index()] = false;
                            scc.push(w);
                            if w == v {
                                break;
                            }
                        }
                        scc.sort_unstable();
                        result.push(scc);
                    }
                    // Propagate lowlink to the parent frame, if any.
                    if let Some(Frame::Resume(parent, _)) = call_stack.last() {
                        let p = parent.index();
                        low[p] = low[p].min(low[v.index()]);
                    }
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::BitSet;
    use crate::labels::Label;

    #[test]
    fn components_of_disconnected_graph() {
        let g = Graph::from_edges(vec![Label(0); 6], &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let cc = ConnectedComponents::compute(&g);
        assert_eq!(cc.count(), 3);
        assert!(cc.same_component(NodeId(0), NodeId(2)));
        assert!(!cc.same_component(NodeId(0), NodeId(3)));
        assert_eq!(cc.members_of(NodeId(3)), vec![NodeId(3), NodeId(4)]);
        assert_eq!(cc.members_of(NodeId(5)), vec![NodeId(5)]);
        assert_eq!(cc.groups().len(), 3);
        assert!(!is_connected(&g));
    }

    #[test]
    fn edge_direction_is_ignored_for_connectivity() {
        let g = Graph::from_edges(vec![Label(0); 3], &[(1, 0), (1, 2)]).unwrap();
        assert!(is_connected(&g));
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = Graph::from_edges(vec![], &[]).unwrap();
        assert!(is_connected(&g));
        assert_eq!(ConnectedComponents::compute(&g).count(), 0);
    }

    #[test]
    fn restricted_view_components() {
        let g = Graph::from_edges(vec![Label(0); 5], &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let mut members = BitSet::new(5);
        for i in [0usize, 1, 3, 4] {
            members.insert(i);
        }
        let view = GraphView::restricted(&g, &members);
        let cc = ConnectedComponents::compute_view(&view);
        assert_eq!(cc.count(), 2);
        assert_eq!(cc.component_of(NodeId(2)), None);
        assert!(cc.same_component(NodeId(0), NodeId(1)));
        assert!(cc.same_component(NodeId(3), NodeId(4)));
        assert!(!cc.same_component(NodeId(1), NodeId(3)));
        assert!(cc.members_of(NodeId(2)).is_empty());
    }

    #[test]
    fn scc_of_two_cycles_and_bridge() {
        // cycle {0,1,2}, cycle {3,4}, bridge 2 -> 3, isolated 5.
        let g = Graph::from_edges(
            vec![Label(0); 6],
            &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3)],
        )
        .unwrap();
        let mut sccs = strongly_connected_components(&g);
        sccs.sort_by_key(|c| c[0]);
        assert_eq!(sccs.len(), 3);
        assert_eq!(sccs[0], vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(sccs[1], vec![NodeId(3), NodeId(4)]);
        assert_eq!(sccs[2], vec![NodeId(5)]);
    }

    #[test]
    fn scc_of_dag_is_singletons() {
        let g = Graph::from_edges(vec![Label(0); 4], &[(0, 1), (1, 2), (0, 3)]).unwrap();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 4);
        assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn scc_self_loop_is_its_own_component() {
        let g = Graph::from_edges(vec![Label(0); 2], &[(0, 0), (0, 1)]).unwrap();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 2);
    }

    #[test]
    fn scc_long_cycle() {
        // A directed cycle of 50 nodes must be a single SCC.
        let n = 50u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = Graph::from_edges(vec![Label(0); n as usize], &edges).unwrap();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), 50);
    }
}

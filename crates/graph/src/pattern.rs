//! Pattern graphs `Q(Vq, Eq)`.
//!
//! The paper assumes w.l.o.g. that pattern graphs are connected (Section 2.1); their
//! diameter `dQ` fixes the ball radius of strong simulation. [`Pattern`] wraps a [`Graph`]
//! with that validation and caches the diameter.

use crate::components::is_connected;
use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use crate::labels::Label;
use crate::metrics::diameter;

/// A validated, connected pattern graph with a cached diameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    graph: Graph,
    diameter: usize,
}

impl Pattern {
    /// Wraps a graph as a pattern, checking non-emptiness and connectivity.
    pub fn new(graph: Graph) -> Result<Self, GraphError> {
        if graph.node_count() == 0 {
            return Err(GraphError::EmptyPattern);
        }
        if !is_connected(&graph) {
            let components = crate::components::ConnectedComponents::compute(&graph).count();
            return Err(GraphError::DisconnectedPattern { components });
        }
        let diameter = diameter(&graph);
        Ok(Pattern { graph, diameter })
    }

    /// Convenience constructor from labels and an edge list.
    pub fn from_edges(labels: Vec<Label>, edges: &[(u32, u32)]) -> Result<Self, GraphError> {
        let graph = Graph::from_edges(labels, edges)?;
        Pattern::new(graph)
    }

    /// The underlying pattern graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The pattern diameter `dQ`, used as the ball radius in strong simulation.
    #[inline]
    pub fn diameter(&self) -> usize {
        self.diameter
    }

    /// Number of pattern nodes `|Vq|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of pattern edges `|Eq|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Pattern size `|Q| = |Vq| + |Eq|` (the measure minimised by query minimization).
    #[inline]
    pub fn size(&self) -> usize {
        self.graph.size()
    }

    /// Iterates over the pattern nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.graph.nodes()
    }

    /// Label of pattern node `u`.
    #[inline]
    pub fn label(&self, u: NodeId) -> Label {
        self.graph.label(u)
    }

    /// Consumes the pattern and returns the underlying graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }
}

impl TryFrom<Graph> for Pattern {
    type Error = GraphError;

    fn try_from(graph: Graph) -> Result<Self, Self::Error> {
        Pattern::new(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connected_pattern_is_accepted() {
        // The Q1 pattern of Fig. 1: HR -> SE, HR -> Bio, SE -> Bio, DM -> Bio, DM <-> AI.
        let p = Pattern::from_edges(
            vec![Label(0), Label(1), Label(2), Label(3), Label(4)],
            &[(0, 1), (0, 2), (1, 2), (3, 2), (3, 4), (4, 3)],
        )
        .unwrap();
        assert_eq!(p.node_count(), 5);
        assert_eq!(p.edge_count(), 6);
        assert_eq!(p.size(), 11);
        // HR—SE—Bio—DM—AI: longest shortest undirected path is HR..AI = 3.
        assert_eq!(p.diameter(), 3);
        assert_eq!(p.label(NodeId(4)), Label(4));
        assert_eq!(p.nodes().count(), 5);
    }

    #[test]
    fn disconnected_pattern_is_rejected() {
        let err = Pattern::from_edges(vec![Label(0); 4], &[(0, 1), (2, 3)]).unwrap_err();
        assert_eq!(err, GraphError::DisconnectedPattern { components: 2 });
    }

    #[test]
    fn empty_pattern_is_rejected() {
        let err = Pattern::from_edges(vec![], &[]).unwrap_err();
        assert_eq!(err, GraphError::EmptyPattern);
    }

    #[test]
    fn single_node_pattern_has_diameter_zero() {
        let p = Pattern::from_edges(vec![Label(3)], &[]).unwrap();
        assert_eq!(p.diameter(), 0);
        assert_eq!(p.size(), 1);
    }

    #[test]
    fn try_from_and_into_graph_roundtrip() {
        let g = Graph::from_edges(vec![Label(0), Label(1)], &[(0, 1)]).unwrap();
        let p = Pattern::try_from(g.clone()).unwrap();
        assert_eq!(p.diameter(), 1);
        assert_eq!(p.into_graph(), g);
    }
}

//! A small, dense, fixed-capacity bitset.
//!
//! The simulation algorithms maintain, for each pattern node, the set of candidate data-graph
//! nodes. Those sets are queried (`contains`) extremely often and mutated (`remove`) in tight
//! refinement loops, so a dense `u64`-word bitset is used instead of `HashSet<NodeId>`.

/// Dense bitset over indices `0..capacity`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
    len: usize,
}

impl BitSet {
    /// Creates an empty bitset able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
            len: 0,
        }
    }

    /// Creates a bitset with every index in `0..capacity` set.
    pub fn full(capacity: usize) -> Self {
        let mut s = BitSet::new(capacity);
        for i in 0..capacity {
            s.insert(i);
        }
        s
    }

    /// Maximum index (exclusive) this bitset can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears the set and re-sizes it to a new capacity, reusing the word storage.
    /// Equivalent to `*self = BitSet::new(capacity)` without the allocation when the
    /// capacity shrinks or stays within the existing storage.
    pub fn reset(&mut self, capacity: usize) {
        self.words.clear();
        self.words.resize(capacity.div_ceil(64), 0);
        self.capacity = capacity;
        self.len = 0;
    }

    /// Number of set bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` when `index` is set. Out-of-range indices are reported as absent.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        if index >= self.capacity {
            return false;
        }
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Sets `index`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    /// Panics when `index >= capacity`.
    #[inline]
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(
            index < self.capacity,
            "bitset index {index} out of capacity {}",
            self.capacity
        );
        let word = &mut self.words[index / 64];
        let mask = 1u64 << (index % 64);
        if *word & mask == 0 {
            *word |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Clears `index`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, index: usize) -> bool {
        if index >= self.capacity {
            return false;
        }
        let word = &mut self.words[index / 64];
        let mask = 1u64 << (index % 64);
        if *word & mask != 0 {
            *word &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Removes every bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterates over the set indices in increasing order.
    pub fn iter(&self) -> BitSetIter<'_> {
        BitSetIter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Keeps only the bits that are also present in `other`.
    ///
    /// # Panics
    /// Panics when the capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut len = 0;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= *o;
            len += w.count_ones() as usize;
        }
        self.len = len;
    }

    /// Adds every bit present in `other`.
    ///
    /// # Panics
    /// Panics when the capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut len = 0;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= *o;
            len += w.count_ones() as usize;
        }
        self.len = len;
    }

    /// Adds every index on which `a` and `b` disagree (their symmetric difference).
    /// Used by the incremental matcher to accumulate, per pattern node, the data nodes
    /// whose candidacy an update changed.
    ///
    /// # Panics
    /// Panics when any of the three capacities differ.
    pub fn union_symmetric_diff(&mut self, a: &BitSet, b: &BitSet) {
        assert_eq!(a.capacity, b.capacity, "bitset capacity mismatch");
        assert_eq!(self.capacity, a.capacity, "bitset capacity mismatch");
        let mut len = 0;
        for ((w, x), y) in self.words.iter_mut().zip(&a.words).zip(&b.words) {
            *w |= *x ^ *y;
            len += w.count_ones() as usize;
        }
        self.len = len;
    }

    /// Returns `true` when the two sets share at least one index.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Returns `true` if every bit of `self` is also set in `other`.
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Collects the set indices into a vector (ascending).
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a bitset sized to the largest element plus one.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let capacity = items.iter().copied().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(capacity);
        for i in items {
            s.insert(i);
        }
        s
    }
}

/// Iterator over set bits; see [`BitSet::iter`].
pub struct BitSetIter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for BitSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert_eq!(s.len(), 3);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
        assert!(!s.contains(200));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut s = BitSet::new(300);
        for i in [5usize, 299, 0, 63, 64, 65, 128] {
            s.insert(i);
        }
        assert_eq!(s.to_vec(), vec![0, 5, 63, 64, 65, 128, 299]);
    }

    #[test]
    fn full_and_clear() {
        let mut s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn set_operations() {
        let a: BitSet = [1usize, 2, 3, 64].into_iter().collect();
        let mut b = BitSet::new(a.capacity());
        b.insert(2);
        b.insert(64);
        b.insert(10);

        let mut inter = a.clone();
        inter.intersect_with(&b);
        assert_eq!(inter.to_vec(), vec![2, 64]);

        let mut uni = a.clone();
        uni.union_with(&b);
        assert_eq!(uni.to_vec(), vec![1, 2, 3, 10, 64]);

        assert!(a.intersects(&b));
        assert!(inter.is_subset_of(&a));
        assert!(!a.is_subset_of(&inter));
    }

    #[test]
    fn empty_capacity() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert!(!s.contains(0));
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        let mut s = BitSet::new(10);
        s.insert(10);
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: BitSet = [3usize, 7].into_iter().collect();
        assert_eq!(s.capacity(), 8);
        assert_eq!(s.len(), 2);
    }
}

//! Restricted views over a [`Graph`].
//!
//! The Match algorithm of the paper repeatedly runs dual simulation *inside a ball*
//! `Ĝ[w, dQ]`. Materialising a fresh graph for every ball would dominate the running time,
//! so instead the matching algorithms operate on a [`GraphView`]: the original graph plus an
//! optional node-membership filter. Neighbour iteration silently skips nodes outside the
//! view, which yields exactly the ball subgraph semantics (all edges of `G` over the member
//! node set).

use crate::bitset::BitSet;
use crate::graph::{Graph, NodeId};
use crate::labels::Label;

/// Node-addressed adjacency that the matching algorithms run over.
///
/// Two implementations exist: [`GraphView`] (the whole graph, or a membership-filtered
/// subset of it, addressed by **global** node ids) and
/// [`crate::ball::CompactBallView`] (a ball addressed by dense **local** ids `0..|ball|`,
/// translating to the underlying graph lazily). Matching code is generic over this trait,
/// so relations and scratch bitsets are sized by [`AdjView::id_space`] — `|V|` for graph
/// views, `|ball|` for compact balls.
pub trait AdjView {
    /// Size of the id space: every node id handled by this view is `< id_space()`.
    /// Relations and bitsets over the view's nodes use this as their capacity.
    fn id_space(&self) -> usize;

    /// Label of `node`.
    fn label(&self, node: NodeId) -> Label;

    /// Out-neighbours (children) of `node` inside the view.
    fn out_neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_;

    /// In-neighbours (parents) of `node` inside the view.
    fn in_neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_;

    /// Nodes of the view carrying `label`. The iteration order is implementation-defined:
    /// [`GraphView`] yields ascending ids, while a compact ball yields its BFS-position
    /// local ids in ascending *global* order — callers must not rely on sortedness.
    fn nodes_with_label(&self, label: Label) -> impl Iterator<Item = NodeId> + '_;
}

/// A flat [`Graph`] is itself an unrestricted adjacency view — equivalent to
/// [`GraphView::full`] without the wrapper. This lets code that is generic over
/// [`AdjView`] (locality sweeps, subgraph extraction, fixpoint maintenance) accept flat
/// graphs, [`crate::OverlayGraph`]s, and restricted views uniformly.
impl AdjView for Graph {
    #[inline]
    fn id_space(&self) -> usize {
        self.node_count()
    }

    #[inline]
    fn label(&self, node: NodeId) -> Label {
        Graph::label(self, node)
    }

    #[inline]
    fn out_neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        Graph::out_neighbors(self, node)
    }

    #[inline]
    fn in_neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        Graph::in_neighbors(self, node)
    }

    #[inline]
    fn nodes_with_label(&self, label: Label) -> impl Iterator<Item = NodeId> + '_ {
        Graph::nodes_with_label(self, label).iter().copied()
    }
}

/// A (possibly restricted) view of a graph.
#[derive(Clone, Copy)]
pub struct GraphView<'a> {
    graph: &'a Graph,
    restriction: Option<&'a BitSet>,
}

impl<'a> GraphView<'a> {
    /// A view over the whole graph.
    pub fn full(graph: &'a Graph) -> Self {
        GraphView {
            graph,
            restriction: None,
        }
    }

    /// A view restricted to the nodes whose indices are set in `members`.
    ///
    /// # Panics
    /// Panics when the bitset capacity does not cover the graph's node count.
    pub fn restricted(graph: &'a Graph, members: &'a BitSet) -> Self {
        assert!(
            members.capacity() >= graph.node_count(),
            "restriction bitset capacity {} smaller than node count {}",
            members.capacity(),
            graph.node_count()
        );
        GraphView {
            graph,
            restriction: Some(members),
        }
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// Returns `true` when the view is restricted to a node subset.
    #[inline]
    pub fn is_restricted(&self) -> bool {
        self.restriction.is_some()
    }

    /// Returns `true` when `node` belongs to the view.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        node.index() < self.graph.node_count()
            && self.restriction.is_none_or(|r| r.contains(node.index()))
    }

    /// Number of nodes in the view.
    pub fn node_count(&self) -> usize {
        match self.restriction {
            None => self.graph.node_count(),
            Some(r) => r.len(),
        }
    }

    /// Iterates over the nodes of the view in ascending id order.
    pub fn nodes(&self) -> Box<dyn Iterator<Item = NodeId> + 'a> {
        match self.restriction {
            None => Box::new(self.graph.nodes()),
            Some(r) => Box::new(r.iter().map(NodeId::from_index)),
        }
    }

    /// Label of `node` (delegates to the underlying graph).
    #[inline]
    pub fn label(&self, node: NodeId) -> Label {
        self.graph.label(node)
    }

    /// Out-neighbours of `node` that belong to the view.
    #[inline]
    pub fn out_neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + 'a {
        let restriction = self.restriction;
        self.graph
            .out_neighbors(node)
            .filter(move |n| restriction.is_none_or(|r| r.contains(n.index())))
    }

    /// In-neighbours of `node` that belong to the view.
    #[inline]
    pub fn in_neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + 'a {
        let restriction = self.restriction;
        self.graph
            .in_neighbors(node)
            .filter(move |n| restriction.is_none_or(|r| r.contains(n.index())))
    }

    /// Nodes of the view carrying `label`.
    pub fn nodes_with_label(&self, label: Label) -> impl Iterator<Item = NodeId> + 'a {
        let restriction = self.restriction;
        self.graph
            .nodes_with_label(label)
            .iter()
            .copied()
            .filter(move |n| restriction.is_none_or(|r| r.contains(n.index())))
    }

    /// Returns `true` when the directed edge `(from, to)` exists inside the view.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.contains(from) && self.contains(to) && self.graph.has_edge(from, to)
    }

    /// The number of ids the view's nodes are drawn from (the underlying graph's `|V|`).
    #[inline]
    pub fn id_space(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of edges with both endpoints inside the view. `O(|E|)` for restricted views.
    pub fn edge_count(&self) -> usize {
        match self.restriction {
            None => self.graph.edge_count(),
            Some(_) => self.nodes().map(|u| self.out_neighbors(u).count()).sum(),
        }
    }
}

impl AdjView for GraphView<'_> {
    #[inline]
    fn id_space(&self) -> usize {
        GraphView::id_space(self)
    }

    #[inline]
    fn label(&self, node: NodeId) -> Label {
        GraphView::label(self, node)
    }

    #[inline]
    fn out_neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        GraphView::out_neighbors(self, node)
    }

    #[inline]
    fn in_neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        GraphView::in_neighbors(self, node)
    }

    #[inline]
    fn nodes_with_label(&self, label: Label) -> impl Iterator<Item = NodeId> + '_ {
        GraphView::nodes_with_label(self, label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn chain() -> Graph {
        // 0 -> 1 -> 2 -> 3 with labels 0,1,0,1
        Graph::from_edges(
            vec![Label(0), Label(1), Label(0), Label(1)],
            &[(0, 1), (1, 2), (2, 3)],
        )
        .unwrap()
    }

    #[test]
    fn full_view_mirrors_graph() {
        let g = chain();
        let v = GraphView::full(&g);
        assert!(!v.is_restricted());
        assert_eq!(v.node_count(), 4);
        assert_eq!(v.edge_count(), 3);
        assert_eq!(v.nodes().count(), 4);
        assert!(v.contains(NodeId(3)));
        assert!(!v.contains(NodeId(4)));
        assert!(v.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(
            v.nodes_with_label(Label(0)).collect::<Vec<_>>(),
            vec![NodeId(0), NodeId(2)]
        );
    }

    #[test]
    fn restricted_view_filters_nodes_and_edges() {
        let g = chain();
        let mut members = BitSet::new(g.node_count());
        members.insert(1);
        members.insert(2);
        let v = GraphView::restricted(&g, &members);
        assert!(v.is_restricted());
        assert_eq!(v.node_count(), 2);
        assert_eq!(v.nodes().collect::<Vec<_>>(), vec![NodeId(1), NodeId(2)]);
        assert!(!v.contains(NodeId(0)));
        // Edge 1->2 is inside; edges touching 0 or 3 are not.
        assert_eq!(v.edge_count(), 1);
        assert!(v.has_edge(NodeId(1), NodeId(2)));
        assert!(!v.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(v.out_neighbors(NodeId(2)).count(), 0);
        assert_eq!(v.in_neighbors(NodeId(1)).count(), 0);
        assert_eq!(
            v.nodes_with_label(Label(0)).collect::<Vec<_>>(),
            vec![NodeId(2)]
        );
    }

    #[test]
    #[should_panic(expected = "restriction bitset capacity")]
    fn restriction_capacity_must_cover_graph() {
        let g = chain();
        let small = BitSet::new(2);
        let _ = GraphView::restricted(&g, &small);
    }

    #[test]
    fn label_delegates() {
        let g = chain();
        let v = GraphView::full(&g);
        assert_eq!(v.label(NodeId(1)), Label(1));
        assert_eq!(v.graph().node_count(), 4);
    }
}

//! Batched edge updates to a [`Graph`]: the unit of change of the incremental matcher.
//!
//! Real traffic mutates the data graph between queries. A [`GraphDelta`] is one batch of
//! directed-edge insertions and deletions against a fixed node set (labels and node count
//! never change — relabelling a node is modelled as deleting and re-adding its edges in
//! the surrounding infrastructure, which keeps every id stable for the caches built on
//! top). Deltas are *validated before application*: endpoints must exist, deleted edges
//! must be present, inserted edges must be absent, no edge may be mentioned twice in one
//! batch, and ops may pin the labels they expect on their endpoints — a cheap guard
//! against replaying a delta built for one graph version onto a graph where the same ids
//! mean different nodes.
//!
//! Application is a rebuild, not an overlay: [`Graph::apply_delta`] merges each node's
//! sorted adjacency with its (sorted) patch lists straight into a fresh CSR, in
//! `O(|V| + |E| + |δ| log |δ|)`. An overlay (side patch tables consulted on every
//! neighbour scan) was considered and rejected: every downstream consumer — balls,
//! compact indexes, locality orders, extractions — iterates adjacency in tight loops, and
//! a branch per neighbour there costs more over one query than the rebuild does once per
//! batch.

use crate::bitset::BitSet;
use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use crate::labels::Label;

/// One edge operation: the edge plus optionally pinned endpoint labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EdgeOp {
    from: NodeId,
    to: NodeId,
    /// `(label(from), label(to))` the delta was built against, when pinned.
    expect: Option<(Label, Label)>,
}

/// A batch of directed-edge insertions and deletions against a fixed node set.
///
/// Build one with [`GraphDelta::insert_edge`] / [`GraphDelta::delete_edge`] (or their
/// label-pinning variants), validate it with [`GraphDelta::validate`], apply it with
/// [`Graph::apply_delta`]. [`GraphDelta::inverse`] swaps the two op lists, so
/// `g.apply_delta(&d)?.apply_delta(&d.inverse())?` round-trips to an identical graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphDelta {
    inserts: Vec<EdgeOp>,
    deletes: Vec<EdgeOp>,
}

impl GraphDelta {
    /// Creates an empty delta (a no-op batch).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the insertion of directed edge `(from, to)` to the batch.
    pub fn insert_edge(&mut self, from: NodeId, to: NodeId) -> &mut Self {
        self.inserts.push(EdgeOp {
            from,
            to,
            expect: None,
        });
        self
    }

    /// Adds the deletion of directed edge `(from, to)` to the batch.
    pub fn delete_edge(&mut self, from: NodeId, to: NodeId) -> &mut Self {
        self.deletes.push(EdgeOp {
            from,
            to,
            expect: None,
        });
        self
    }

    /// [`GraphDelta::insert_edge`] pinning the endpoint labels the delta was built
    /// against; [`GraphDelta::validate`] rejects the batch when the graph disagrees.
    pub fn insert_edge_labeled(
        &mut self,
        from: NodeId,
        to: NodeId,
        from_label: Label,
        to_label: Label,
    ) -> &mut Self {
        self.inserts.push(EdgeOp {
            from,
            to,
            expect: Some((from_label, to_label)),
        });
        self
    }

    /// [`GraphDelta::delete_edge`] pinning the endpoint labels the delta was built
    /// against.
    pub fn delete_edge_labeled(
        &mut self,
        from: NodeId,
        to: NodeId,
        from_label: Label,
        to_label: Label,
    ) -> &mut Self {
        self.deletes.push(EdgeOp {
            from,
            to,
            expect: Some((from_label, to_label)),
        });
        self
    }

    /// Returns `true` when the batch contains no operation.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Total number of edge operations in the batch.
    pub fn op_count(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// The edges this batch inserts, in insertion order.
    pub fn inserted_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.inserts.iter().map(|op| (op.from, op.to))
    }

    /// The edges this batch deletes, in insertion order.
    pub fn deleted_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.deletes.iter().map(|op| (op.from, op.to))
    }

    /// Every node appearing as an endpoint of some op, ascending and deduplicated —
    /// the seed set of the incremental matcher's locality analysis.
    pub fn touched_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .inserts
            .iter()
            .chain(&self.deletes)
            .flat_map(|op| [op.from, op.to])
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// The batch that undoes this one: insertions become deletions and vice versa
    /// (label pins are carried along). Applying a delta and then its inverse yields a
    /// graph equal to the original.
    pub fn inverse(&self) -> GraphDelta {
        GraphDelta {
            inserts: self.deletes.clone(),
            deletes: self.inserts.clone(),
        }
    }

    /// Validates the batch against `graph` without applying it:
    ///
    /// * every endpoint is a node of the graph ([`GraphError::InvalidNode`]),
    /// * pinned labels match the graph's ([`GraphError::LabelMismatch`]),
    /// * deleted edges exist ([`GraphError::MissingEdge`]),
    /// * inserted edges do not ([`GraphError::EdgeExists`]),
    /// * no directed edge is mentioned twice across the whole batch
    ///   ([`GraphError::ConflictingDelta`]).
    pub fn validate(&self, graph: &Graph) -> Result<(), GraphError> {
        let n = graph.node_count();
        for op in self.inserts.iter().chain(&self.deletes) {
            for endpoint in [op.from, op.to] {
                if endpoint.index() >= n {
                    return Err(GraphError::InvalidNode {
                        node: endpoint.0,
                        node_count: n,
                    });
                }
            }
            if let Some((lf, lt)) = op.expect {
                for (node, expected) in [(op.from, lf), (op.to, lt)] {
                    let found = graph.label(node);
                    if found != expected {
                        return Err(GraphError::LabelMismatch {
                            node: node.0,
                            expected: expected.0,
                            found: found.0,
                        });
                    }
                }
            }
        }
        let mut mentioned: Vec<(NodeId, NodeId)> = self
            .inserts
            .iter()
            .chain(&self.deletes)
            .map(|op| (op.from, op.to))
            .collect();
        mentioned.sort_unstable();
        for pair in mentioned.windows(2) {
            if pair[0] == pair[1] {
                return Err(GraphError::ConflictingDelta {
                    from: pair[0].0 .0,
                    to: pair[0].1 .0,
                });
            }
        }
        for op in &self.deletes {
            if !graph.has_edge(op.from, op.to) {
                return Err(GraphError::MissingEdge {
                    from: op.from.0,
                    to: op.to.0,
                });
            }
        }
        for op in &self.inserts {
            if graph.has_edge(op.from, op.to) {
                return Err(GraphError::EdgeExists {
                    from: op.from.0,
                    to: op.to.0,
                });
            }
        }
        Ok(())
    }
}

/// Sorted `(source, target)` patch lists with monotone cursors for one adjacency
/// direction. The per-node loop of [`Graph::apply_delta`] walks sources ascending, so
/// the cursors only ever advance — no per-node allocation, and untouched nodes cost one
/// comparison each.
struct Patches {
    ins: Vec<(NodeId, NodeId)>,
    del: Vec<(NodeId, NodeId)>,
    ins_pos: usize,
    del_pos: usize,
}

impl Patches {
    fn build(
        edges: impl Iterator<Item = (NodeId, NodeId)>,
        deletions: impl Iterator<Item = (NodeId, NodeId)>,
    ) -> Self {
        let mut ins: Vec<(NodeId, NodeId)> = edges.collect();
        let mut del: Vec<(NodeId, NodeId)> = deletions.collect();
        ins.sort_unstable();
        del.sort_unstable();
        Patches {
            ins,
            del,
            ins_pos: 0,
            del_pos: 0,
        }
    }

    /// The run of entries whose source is `node`, advancing the cursor past it.
    fn run(list: &[(NodeId, NodeId)], pos: &mut usize, node: NodeId) -> std::ops::Range<usize> {
        let start = *pos;
        while *pos < list.len() && list[*pos].0 == node {
            *pos += 1;
        }
        start..*pos
    }

    /// Merges node `v`'s old sorted adjacency with its patches into `out` (stays sorted:
    /// validation guarantees deletions ⊆ old and insertions ∩ old = ∅). Nodes without
    /// patches — almost all of them, for a small delta — take a bulk copy.
    fn merge_into(&mut self, node: NodeId, old: &[NodeId], out: &mut Vec<NodeId>) {
        let ins = &self.ins[Self::run(&self.ins, &mut self.ins_pos, node)];
        let del = &self.del[Self::run(&self.del, &mut self.del_pos, node)];
        if ins.is_empty() && del.is_empty() {
            out.extend_from_slice(old);
            return;
        }
        let mut ins_it = ins.iter().map(|&(_, t)| t).peekable();
        let mut del_it = del.iter().map(|&(_, t)| t).peekable();
        for &t in old {
            while ins_it.peek().is_some_and(|&i| i < t) {
                out.push(ins_it.next().expect("peeked"));
            }
            if del_it.peek() == Some(&t) {
                del_it.next();
                continue;
            }
            out.push(t);
        }
        out.extend(ins_it);
    }
}

impl Graph {
    /// Applies a validated batch of edge updates, producing the updated graph.
    ///
    /// Fails (without building anything) when [`GraphDelta::validate`] rejects the batch.
    /// The node set and labels are untouched, so every id remains meaningful across the
    /// update — the property the incremental matcher's caches rely on — and the label
    /// index is cloned instead of recounted.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<Graph, GraphError> {
        delta.validate(self)?;
        let n = self.node_count();
        let new_edge_count = self.edge_count() + delta.inserts.len() - delta.deletes.len();

        let mut fwd = Patches::build(delta.inserted_edges(), delta.deleted_edges());
        let mut rev = Patches::build(
            delta.inserted_edges().map(|(s, t)| (t, s)),
            delta.deleted_edges().map(|(s, t)| (t, s)),
        );

        let mut fwd_offsets = Vec::with_capacity(n + 1);
        let mut fwd_targets = Vec::with_capacity(new_edge_count);
        let mut rev_offsets = Vec::with_capacity(n + 1);
        let mut rev_targets = Vec::with_capacity(new_edge_count);
        fwd_offsets.push(0);
        rev_offsets.push(0);
        for v in 0..n {
            let node = NodeId::from_index(v);
            fwd.merge_into(node, self.out_neighbors_slice(node), &mut fwd_targets);
            fwd_offsets.push(fwd_targets.len());
            rev.merge_into(node, self.in_neighbors_slice(node), &mut rev_targets);
            rev_offsets.push(rev_targets.len());
        }
        debug_assert_eq!(fwd_targets.len(), new_edge_count);
        debug_assert_eq!(rev_targets.len(), new_edge_count);
        Ok(Graph::from_csr_with_index(
            self.labels().to_vec(),
            fwd_offsets,
            fwd_targets,
            rev_offsets,
            rev_targets,
            self.label_index_clone(),
        ))
    }
}

/// Marks into `out` every node of `graph` within undirected distance `depth` of the
/// `seeds` — the dQ-bounded locality sweep (Proposition 3) the incremental matcher uses
/// to find the ball centers a delta can have affected. `out` keeps previously set bits,
/// so sweeps over the pre- and post-update graphs can accumulate into one set.
pub fn mark_within_distance(
    graph: &Graph,
    seeds: impl IntoIterator<Item = NodeId>,
    depth: usize,
    out: &mut BitSet,
) {
    assert_eq!(
        out.capacity(),
        graph.node_count(),
        "dirty bitset must cover the graph"
    );
    let mut frontier: Vec<NodeId> = Vec::new();
    let mut seen = BitSet::new(graph.node_count());
    for s in seeds {
        if seen.insert(s.index()) {
            out.insert(s.index());
            frontier.push(s);
        }
    }
    let mut next: Vec<NodeId> = Vec::new();
    for _ in 0..depth {
        if frontier.is_empty() {
            break;
        }
        for &v in &frontier {
            for w in graph.out_neighbors(v).chain(graph.in_neighbors(v)) {
                if seen.insert(w.index()) {
                    out.insert(w.index());
                    next.push(w);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        Graph::from_edges(
            vec![Label(0), Label(1), Label(1), Label(2)],
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        .unwrap()
    }

    #[test]
    fn apply_matches_rebuild_from_edge_list() {
        let g = diamond();
        let mut delta = GraphDelta::new();
        delta
            .delete_edge(NodeId(0), NodeId(2))
            .insert_edge(NodeId(3), NodeId(0))
            .insert_edge(NodeId(2), NodeId(1));
        let updated = g.apply_delta(&delta).unwrap();
        let mut edges: Vec<(u32, u32)> = g
            .edges()
            .filter(|&(a, b)| (a, b) != (NodeId(0), NodeId(2)))
            .map(|(a, b)| (a.0, b.0))
            .collect();
        edges.push((3, 0));
        edges.push((2, 1));
        let oracle = Graph::from_edges(g.labels().to_vec(), &edges).unwrap();
        assert_eq!(updated, oracle);
        // Reverse adjacency is consistent with the forward one.
        for (s, t) in updated.edges() {
            assert!(updated.in_neighbors(t).any(|p| p == s));
        }
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = diamond();
        let updated = g.apply_delta(&GraphDelta::new()).unwrap();
        assert_eq!(updated, g);
    }

    #[test]
    fn inverse_round_trips() {
        let g = diamond();
        let mut delta = GraphDelta::new();
        delta
            .delete_edge(NodeId(1), NodeId(3))
            .insert_edge(NodeId(3), NodeId(1));
        let there = g.apply_delta(&delta).unwrap();
        let back = there.apply_delta(&delta.inverse()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn validation_rejects_bad_batches() {
        let g = diamond();
        let mut d = GraphDelta::new();
        d.delete_edge(NodeId(0), NodeId(3));
        assert_eq!(
            g.apply_delta(&d).unwrap_err(),
            GraphError::MissingEdge { from: 0, to: 3 }
        );
        let mut d = GraphDelta::new();
        d.insert_edge(NodeId(0), NodeId(1));
        assert_eq!(
            g.apply_delta(&d).unwrap_err(),
            GraphError::EdgeExists { from: 0, to: 1 }
        );
        let mut d = GraphDelta::new();
        d.insert_edge(NodeId(0), NodeId(9));
        assert!(matches!(
            g.apply_delta(&d).unwrap_err(),
            GraphError::InvalidNode { node: 9, .. }
        ));
        let mut d = GraphDelta::new();
        d.delete_edge(NodeId(0), NodeId(1))
            .insert_edge(NodeId(0), NodeId(1));
        assert_eq!(
            g.apply_delta(&d).unwrap_err(),
            GraphError::ConflictingDelta { from: 0, to: 1 }
        );
        let mut d = GraphDelta::new();
        d.insert_edge(NodeId(3), NodeId(0))
            .insert_edge(NodeId(3), NodeId(0));
        assert_eq!(
            g.apply_delta(&d).unwrap_err(),
            GraphError::ConflictingDelta { from: 3, to: 0 }
        );
    }

    #[test]
    fn label_pins_guard_against_wrong_graph_versions() {
        let g = diamond();
        let mut ok = GraphDelta::new();
        ok.delete_edge_labeled(NodeId(0), NodeId(1), Label(0), Label(1));
        assert!(ok.validate(&g).is_ok());
        let mut bad = GraphDelta::new();
        bad.insert_edge_labeled(NodeId(3), NodeId(0), Label(7), Label(0));
        assert_eq!(
            bad.validate(&g).unwrap_err(),
            GraphError::LabelMismatch {
                node: 3,
                expected: 7,
                found: 2
            }
        );
    }

    #[test]
    fn touched_nodes_and_counts() {
        let mut d = GraphDelta::new();
        assert!(d.is_empty());
        d.delete_edge(NodeId(2), NodeId(3))
            .insert_edge(NodeId(3), NodeId(2));
        assert!(!d.is_empty());
        assert_eq!(d.op_count(), 2);
        assert_eq!(d.touched_nodes(), vec![NodeId(2), NodeId(3)]);
        assert_eq!(d.inserted_edges().count(), 1);
        assert_eq!(d.deleted_edges().count(), 1);
    }

    #[test]
    fn self_loops_can_be_added_and_removed() {
        let g = diamond();
        let mut d = GraphDelta::new();
        d.insert_edge(NodeId(1), NodeId(1));
        let with_loop = g.apply_delta(&d).unwrap();
        assert!(with_loop.has_edge(NodeId(1), NodeId(1)));
        let back = with_loop.apply_delta(&d.inverse()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn mark_within_distance_bounds_the_sweep() {
        // Path 0 - 1 - 2 - 3 (directed arbitrarily); depth-1 sweep from node 0.
        let g = Graph::from_edges(vec![Label(0); 4], &[(0, 1), (2, 1), (2, 3)]).unwrap();
        let mut out = BitSet::new(4);
        mark_within_distance(&g, [NodeId(0)], 1, &mut out);
        assert_eq!(out.to_vec(), vec![0, 1]);
        // Accumulation: a second sweep from node 3 unions in, never clears.
        mark_within_distance(&g, [NodeId(3)], 0, &mut out);
        assert_eq!(out.to_vec(), vec![0, 1, 3]);
        // Depth covers the whole component.
        let mut all = BitSet::new(4);
        mark_within_distance(&g, [NodeId(0)], 3, &mut all);
        assert_eq!(all.len(), 4);
    }
}

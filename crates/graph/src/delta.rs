//! Batched edge updates to a [`Graph`]: the unit of change of the incremental matcher.
//!
//! Real traffic mutates the data graph between queries. A [`GraphDelta`] is one batch of
//! directed-edge insertions and deletions against a fixed node set (labels and node count
//! never change — relabelling a node is modelled as deleting and re-adding its edges in
//! the surrounding infrastructure, which keeps every id stable for the caches built on
//! top). Deltas are *validated before application*: endpoints must exist, deleted edges
//! must be present, inserted edges must be absent, no edge may be mentioned twice in one
//! batch, and ops may pin the labels they expect on their endpoints — a cheap guard
//! against replaying a delta built for one graph version onto a graph where the same ids
//! mean different nodes.
//!
//! Two application paths exist. [`Graph::apply_delta`] is the flat rebuild: it merges
//! each node's sorted adjacency with its (sorted) patch lists straight into a fresh CSR,
//! in `O(|V| + |E| + |δ| log |δ|)` — simple, allocation-friendly, and kept as the oracle
//! the equivalence suites compare against. [`crate::OverlayGraph`] is the serving path:
//! per-node patch tables applied in `O(|δ| log |δ|)` and merged lazily on iteration, with
//! a zero-patch fast path so untouched nodes keep iterating the raw base CSR, and
//! compaction back to a flat CSR (this module's merge, run once per threshold crossing
//! instead of once per batch) once the overlay mass grows past a configured fraction of
//! `|E|`. Validation is shared: [`GraphDelta::validate`] is generic over [`DeltaTarget`],
//! so the same endpoint/label/presence checks run against a flat graph or a merged
//! overlay state.

use crate::bitset::BitSet;
use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use crate::labels::Label;
use crate::view::AdjView;

/// The graph shape [`GraphDelta::validate`] checks a batch against: anything that can
/// report its node count, node labels, and directed-edge presence. Implemented by the
/// flat [`Graph`] and by [`crate::OverlayGraph`] (which answers for its *merged* state,
/// so staged patches participate in validation).
pub trait DeltaTarget {
    /// Number of nodes of the target graph.
    fn node_count(&self) -> usize;

    /// Label of `node`.
    fn label(&self, node: NodeId) -> Label;

    /// Returns `true` when the directed edge `(from, to)` exists.
    fn has_edge(&self, from: NodeId, to: NodeId) -> bool;
}

impl DeltaTarget for Graph {
    #[inline]
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }

    #[inline]
    fn label(&self, node: NodeId) -> Label {
        Graph::label(self, node)
    }

    #[inline]
    fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        Graph::has_edge(self, from, to)
    }
}

/// One edge operation: the edge plus optionally pinned endpoint labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EdgeOp {
    from: NodeId,
    to: NodeId,
    /// `(label(from), label(to))` the delta was built against, when pinned.
    expect: Option<(Label, Label)>,
}

/// A batch of directed-edge insertions and deletions against a fixed node set.
///
/// Build one with [`GraphDelta::insert_edge`] / [`GraphDelta::delete_edge`] (or their
/// label-pinning variants), validate it with [`GraphDelta::validate`], apply it with
/// [`Graph::apply_delta`]. [`GraphDelta::inverse`] swaps the two op lists, so
/// `g.apply_delta(&d)?.apply_delta(&d.inverse())?` round-trips to an identical graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphDelta {
    inserts: Vec<EdgeOp>,
    deletes: Vec<EdgeOp>,
}

impl GraphDelta {
    /// Creates an empty delta (a no-op batch).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the insertion of directed edge `(from, to)` to the batch.
    pub fn insert_edge(&mut self, from: NodeId, to: NodeId) -> &mut Self {
        self.inserts.push(EdgeOp {
            from,
            to,
            expect: None,
        });
        self
    }

    /// Adds the deletion of directed edge `(from, to)` to the batch.
    pub fn delete_edge(&mut self, from: NodeId, to: NodeId) -> &mut Self {
        self.deletes.push(EdgeOp {
            from,
            to,
            expect: None,
        });
        self
    }

    /// [`GraphDelta::insert_edge`] pinning the endpoint labels the delta was built
    /// against; [`GraphDelta::validate`] rejects the batch when the graph disagrees.
    pub fn insert_edge_labeled(
        &mut self,
        from: NodeId,
        to: NodeId,
        from_label: Label,
        to_label: Label,
    ) -> &mut Self {
        self.inserts.push(EdgeOp {
            from,
            to,
            expect: Some((from_label, to_label)),
        });
        self
    }

    /// [`GraphDelta::delete_edge`] pinning the endpoint labels the delta was built
    /// against.
    pub fn delete_edge_labeled(
        &mut self,
        from: NodeId,
        to: NodeId,
        from_label: Label,
        to_label: Label,
    ) -> &mut Self {
        self.deletes.push(EdgeOp {
            from,
            to,
            expect: Some((from_label, to_label)),
        });
        self
    }

    /// Returns `true` when the batch contains no operation.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Total number of edge operations in the batch.
    pub fn op_count(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// The edges this batch inserts, in insertion order.
    pub fn inserted_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.inserts.iter().map(|op| (op.from, op.to))
    }

    /// The edges this batch deletes, in insertion order.
    pub fn deleted_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.deletes.iter().map(|op| (op.from, op.to))
    }

    /// Every node appearing as an endpoint of some op, ascending and deduplicated —
    /// the seed set of the incremental matcher's locality analysis.
    pub fn touched_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .inserts
            .iter()
            .chain(&self.deletes)
            .flat_map(|op| [op.from, op.to])
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// The batch that undoes this one: insertions become deletions and vice versa
    /// (label pins are carried along). Applying a delta and then its inverse yields a
    /// graph equal to the original.
    pub fn inverse(&self) -> GraphDelta {
        GraphDelta {
            inserts: self.deletes.clone(),
            deletes: self.inserts.clone(),
        }
    }

    /// Composes two sequential batches into one net batch: applying `self.then(&next)`
    /// to a graph yields the same graph as applying `self` and then `next`. Opposing
    /// ops on the same edge cancel — an edge inserted by `self` and deleted by `next`
    /// (or vice versa) disappears from the composition entirely, mirroring the patch
    /// cancellation of [`crate::OverlayGraph`].
    ///
    /// Assumes the sequence is valid (`self` against the graph, `next` against the
    /// graph with `self` applied); the composition of an invalid sequence may validate
    /// even where the sequence would not. Label pins are carried along.
    pub fn then(&self, next: &GraphDelta) -> GraphDelta {
        fn sorted_keys(ops: &[EdgeOp]) -> Vec<(NodeId, NodeId)> {
            let mut keys: Vec<(NodeId, NodeId)> = ops.iter().map(|op| (op.from, op.to)).collect();
            keys.sort_unstable();
            keys
        }
        fn surviving(ops: &[EdgeOp], cancelled_by: &[(NodeId, NodeId)]) -> Vec<EdgeOp> {
            ops.iter()
                .filter(|op| cancelled_by.binary_search(&(op.from, op.to)).is_err())
                .copied()
                .collect()
        }
        let next_ins = sorted_keys(&next.inserts);
        let next_del = sorted_keys(&next.deletes);
        let self_ins = sorted_keys(&self.inserts);
        let self_del = sorted_keys(&self.deletes);
        let mut inserts = surviving(&self.inserts, &next_del);
        inserts.extend(surviving(&next.inserts, &self_del));
        let mut deletes = surviving(&self.deletes, &next_ins);
        deletes.extend(surviving(&next.deletes, &self_ins));
        GraphDelta { inserts, deletes }
    }

    /// Validates the batch against `graph` without applying it:
    ///
    /// * every endpoint is a node of the graph ([`GraphError::InvalidNode`]),
    /// * pinned labels match the graph's ([`GraphError::LabelMismatch`]),
    /// * deleted edges exist ([`GraphError::MissingEdge`]),
    /// * inserted edges do not ([`GraphError::EdgeExists`]),
    /// * no directed edge is mentioned twice across the whole batch
    ///   ([`GraphError::ConflictingDelta`]).
    pub fn validate<T: DeltaTarget>(&self, graph: &T) -> Result<(), GraphError> {
        let n = graph.node_count();
        for op in self.inserts.iter().chain(&self.deletes) {
            for endpoint in [op.from, op.to] {
                if endpoint.index() >= n {
                    return Err(GraphError::InvalidNode {
                        node: endpoint.0,
                        node_count: n,
                    });
                }
            }
            if let Some((lf, lt)) = op.expect {
                for (node, expected) in [(op.from, lf), (op.to, lt)] {
                    let found = graph.label(node);
                    if found != expected {
                        return Err(GraphError::LabelMismatch {
                            node: node.0,
                            expected: expected.0,
                            found: found.0,
                        });
                    }
                }
            }
        }
        let mut mentioned: Vec<(NodeId, NodeId)> = self
            .inserts
            .iter()
            .chain(&self.deletes)
            .map(|op| (op.from, op.to))
            .collect();
        mentioned.sort_unstable();
        for pair in mentioned.windows(2) {
            if pair[0] == pair[1] {
                return Err(GraphError::ConflictingDelta {
                    from: pair[0].0 .0,
                    to: pair[0].1 .0,
                });
            }
        }
        for op in &self.deletes {
            if !graph.has_edge(op.from, op.to) {
                return Err(GraphError::MissingEdge {
                    from: op.from.0,
                    to: op.to.0,
                });
            }
        }
        for op in &self.inserts {
            if graph.has_edge(op.from, op.to) {
                return Err(GraphError::EdgeExists {
                    from: op.from.0,
                    to: op.to.0,
                });
            }
        }
        Ok(())
    }
}

/// Sorted `(source, target)` patch lists with monotone cursors for one adjacency
/// direction. The per-node loop of [`Graph::apply_delta`] walks sources ascending, so
/// the cursors only ever advance — no per-node allocation, and untouched nodes cost one
/// comparison each.
struct Patches {
    ins: Vec<(NodeId, NodeId)>,
    del: Vec<(NodeId, NodeId)>,
    ins_pos: usize,
    del_pos: usize,
}

impl Patches {
    fn build(
        edges: impl Iterator<Item = (NodeId, NodeId)>,
        deletions: impl Iterator<Item = (NodeId, NodeId)>,
    ) -> Self {
        let mut ins: Vec<(NodeId, NodeId)> = edges.collect();
        let mut del: Vec<(NodeId, NodeId)> = deletions.collect();
        ins.sort_unstable();
        del.sort_unstable();
        Patches {
            ins,
            del,
            ins_pos: 0,
            del_pos: 0,
        }
    }

    /// The run of entries whose source is `node`, advancing the cursor past it.
    fn run(list: &[(NodeId, NodeId)], pos: &mut usize, node: NodeId) -> std::ops::Range<usize> {
        let start = *pos;
        while *pos < list.len() && list[*pos].0 == node {
            *pos += 1;
        }
        start..*pos
    }

    /// Merges node `v`'s old sorted adjacency with its patches into `out` (stays sorted:
    /// validation guarantees deletions ⊆ old and insertions ∩ old = ∅). Nodes without
    /// patches — almost all of them, for a small delta — take a bulk copy.
    fn merge_into(&mut self, node: NodeId, old: &[NodeId], out: &mut Vec<NodeId>) {
        let ins_run = Self::run(&self.ins, &mut self.ins_pos, node);
        let del_run = Self::run(&self.del, &mut self.del_pos, node);
        if ins_run.is_empty() && del_run.is_empty() {
            out.extend_from_slice(old);
            return;
        }
        let ins: Vec<NodeId> = self.ins[ins_run].iter().map(|&(_, t)| t).collect();
        let del: Vec<NodeId> = self.del[del_run].iter().map(|&(_, t)| t).collect();
        merge_patched(old, &ins, &del, out);
    }
}

/// Three-way sorted merge of one node's adjacency: `old` with `ins` interleaved and
/// `del` skipped, appended to `out`. Requires the patch invariants `ins ∩ old = ∅` and
/// `del ⊆ old` (all three slices ascending). Shared by the flat rebuild above and by
/// [`crate::OverlayGraph`]'s compactor and merged iteration.
pub(crate) fn merge_patched(old: &[NodeId], ins: &[NodeId], del: &[NodeId], out: &mut Vec<NodeId>) {
    let mut ii = 0;
    let mut di = 0;
    for &t in old {
        while ii < ins.len() && ins[ii] < t {
            out.push(ins[ii]);
            ii += 1;
        }
        if di < del.len() && del[di] == t {
            di += 1;
            continue;
        }
        out.push(t);
    }
    out.extend_from_slice(&ins[ii..]);
}

impl Graph {
    /// Applies a validated batch of edge updates, producing the updated graph.
    ///
    /// Fails (without building anything) when [`GraphDelta::validate`] rejects the batch.
    /// The node set and labels are untouched, so every id remains meaningful across the
    /// update — the property the incremental matcher's caches rely on — and the label
    /// index is cloned instead of recounted.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<Graph, GraphError> {
        delta.validate(self)?;
        let n = self.node_count();
        let new_edge_count = self.edge_count() + delta.inserts.len() - delta.deletes.len();

        let mut fwd = Patches::build(delta.inserted_edges(), delta.deleted_edges());
        let mut rev = Patches::build(
            delta.inserted_edges().map(|(s, t)| (t, s)),
            delta.deleted_edges().map(|(s, t)| (t, s)),
        );

        let mut fwd_offsets = Vec::with_capacity(n + 1);
        let mut fwd_targets = Vec::with_capacity(new_edge_count);
        let mut rev_offsets = Vec::with_capacity(n + 1);
        let mut rev_targets = Vec::with_capacity(new_edge_count);
        fwd_offsets.push(0);
        rev_offsets.push(0);
        for v in 0..n {
            let node = NodeId::from_index(v);
            fwd.merge_into(node, self.out_neighbors_slice(node), &mut fwd_targets);
            fwd_offsets.push(fwd_targets.len());
            rev.merge_into(node, self.in_neighbors_slice(node), &mut rev_targets);
            rev_offsets.push(rev_targets.len());
        }
        debug_assert_eq!(fwd_targets.len(), new_edge_count);
        debug_assert_eq!(rev_targets.len(), new_edge_count);
        Ok(Graph::from_csr_with_index(
            self.labels().to_vec(),
            fwd_offsets,
            fwd_targets,
            rev_offsets,
            rev_targets,
            self.label_index_clone(),
        ))
    }
}

/// Marks into `out` every node of `graph` within undirected distance `depth` of the
/// `seeds` — the dQ-bounded locality sweep (Proposition 3) the incremental matcher uses
/// to find the ball centers a delta can have affected. `out` keeps previously set bits,
/// so sweeps over the pre- and post-update graphs can accumulate into one set. Generic
/// over [`AdjView`], so it runs against flat graphs, overlays, and pinned snapshots
/// alike.
pub fn mark_within_distance<V: AdjView>(
    graph: &V,
    seeds: impl IntoIterator<Item = NodeId>,
    depth: usize,
    out: &mut BitSet,
) {
    assert_eq!(
        out.capacity(),
        graph.id_space(),
        "dirty bitset must cover the graph"
    );
    let mut frontier: Vec<NodeId> = Vec::new();
    let mut seen = BitSet::new(graph.id_space());
    for s in seeds {
        if seen.insert(s.index()) {
            out.insert(s.index());
            frontier.push(s);
        }
    }
    let mut next: Vec<NodeId> = Vec::new();
    for _ in 0..depth {
        if frontier.is_empty() {
            break;
        }
        for &v in &frontier {
            for w in graph.out_neighbors(v).chain(graph.in_neighbors(v)) {
                if seen.insert(w.index()) {
                    out.insert(w.index());
                    next.push(w);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
}

/// Marks into `out` every node of `graph` whose radius-`depth` undirected ball contains
/// one of the `edges` — exactly the centers within `depth` of **both** endpoints. This
/// is the tight form of the dirty sweep for edge churn: a ball is the induced subgraph
/// on the nodes within `depth` of its center, so edge `(u, v)` sits in `ball(c)` iff
/// `d(c, u) ≤ depth` and `d(c, v) ≤ depth`, and any ball-membership shift caused by the
/// edge rides a path through it, which forces the same condition on the side of the
/// update where the edge exists. Marking the union of the endpoint balls (what
/// [`mark_within_distance`] over the endpoints computes) is sound but overshoots by the
/// outer shells — on low-degree graphs that is a third of the sweep.
///
/// Cost is `O(ball)` per endpoint, far below one whole-graph sweep while balls are
/// small. When the bounded walks have visited `~4·|V|` nodes in total (dense graphs,
/// hub endpoints), the remaining edges fall back to one coarse endpoint sweep — a
/// superset, so still sound. `out` keeps previously set bits, like
/// [`mark_within_distance`].
pub fn mark_edge_ball_centers<V: AdjView>(
    graph: &V,
    edges: &[(NodeId, NodeId)],
    depth: usize,
    out: &mut BitSet,
) {
    assert_eq!(
        out.capacity(),
        graph.id_space(),
        "dirty bitset must cover the graph"
    );
    // A depth-0 ball holds only its center, which cannot contain an edge between two
    // distinct nodes; a self-loop dirties exactly its own node.
    if depth == 0 {
        for &(u, v) in edges {
            if u == v {
                out.insert(u.index());
            }
        }
        return;
    }
    let n = graph.id_space();
    let mut stamp_u: Vec<u32> = vec![0; n];
    let mut stamp_v: Vec<u32> = vec![0; n];
    let mut frontier: Vec<NodeId> = Vec::new();
    let mut next: Vec<NodeId> = Vec::new();
    let mut reach: Vec<NodeId> = Vec::new();
    let mut budget = 4usize.saturating_mul(n);
    for (i, &(u, v)) in edges.iter().enumerate() {
        if budget == 0 {
            let seeds = edges[i..].iter().flat_map(|&(a, b)| [a, b]);
            mark_within_distance(graph, seeds, depth, out);
            return;
        }
        let round = (i + 1) as u32;
        stamped_walk(
            graph,
            u,
            depth,
            round,
            &mut stamp_u,
            &mut frontier,
            &mut next,
            &mut reach,
        );
        budget = budget.saturating_sub(reach.len());
        stamped_walk(
            graph,
            v,
            depth,
            round,
            &mut stamp_v,
            &mut frontier,
            &mut next,
            &mut reach,
        );
        budget = budget.saturating_sub(reach.len());
        for &w in &reach {
            if stamp_u[w.index()] == round {
                out.insert(w.index());
            }
        }
    }
}

/// Undirected BFS from `seed` to `depth`, recording reach by writing `round` into
/// `stamp` (no clearing between rounds) and collecting the visited nodes into `reach`.
#[allow(clippy::too_many_arguments)]
fn stamped_walk<V: AdjView>(
    graph: &V,
    seed: NodeId,
    depth: usize,
    round: u32,
    stamp: &mut [u32],
    frontier: &mut Vec<NodeId>,
    next: &mut Vec<NodeId>,
    reach: &mut Vec<NodeId>,
) {
    frontier.clear();
    next.clear();
    reach.clear();
    stamp[seed.index()] = round;
    frontier.push(seed);
    reach.push(seed);
    for _ in 0..depth {
        if frontier.is_empty() {
            break;
        }
        for &v in frontier.iter() {
            for w in graph.out_neighbors(v).chain(graph.in_neighbors(v)) {
                if stamp[w.index()] != round {
                    stamp[w.index()] = round;
                    next.push(w);
                    reach.push(w);
                }
            }
        }
        std::mem::swap(frontier, next);
        next.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        Graph::from_edges(
            vec![Label(0), Label(1), Label(1), Label(2)],
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        .unwrap()
    }

    #[test]
    fn apply_matches_rebuild_from_edge_list() {
        let g = diamond();
        let mut delta = GraphDelta::new();
        delta
            .delete_edge(NodeId(0), NodeId(2))
            .insert_edge(NodeId(3), NodeId(0))
            .insert_edge(NodeId(2), NodeId(1));
        let updated = g.apply_delta(&delta).unwrap();
        let mut edges: Vec<(u32, u32)> = g
            .edges()
            .filter(|&(a, b)| (a, b) != (NodeId(0), NodeId(2)))
            .map(|(a, b)| (a.0, b.0))
            .collect();
        edges.push((3, 0));
        edges.push((2, 1));
        let oracle = Graph::from_edges(g.labels().to_vec(), &edges).unwrap();
        assert_eq!(updated, oracle);
        // Reverse adjacency is consistent with the forward one.
        for (s, t) in updated.edges() {
            assert!(updated.in_neighbors(t).any(|p| p == s));
        }
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = diamond();
        let updated = g.apply_delta(&GraphDelta::new()).unwrap();
        assert_eq!(updated, g);
    }

    #[test]
    fn inverse_round_trips() {
        let g = diamond();
        let mut delta = GraphDelta::new();
        delta
            .delete_edge(NodeId(1), NodeId(3))
            .insert_edge(NodeId(3), NodeId(1));
        let there = g.apply_delta(&delta).unwrap();
        let back = there.apply_delta(&delta.inverse()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn validation_rejects_bad_batches() {
        let g = diamond();
        let mut d = GraphDelta::new();
        d.delete_edge(NodeId(0), NodeId(3));
        assert_eq!(
            g.apply_delta(&d).unwrap_err(),
            GraphError::MissingEdge { from: 0, to: 3 }
        );
        let mut d = GraphDelta::new();
        d.insert_edge(NodeId(0), NodeId(1));
        assert_eq!(
            g.apply_delta(&d).unwrap_err(),
            GraphError::EdgeExists { from: 0, to: 1 }
        );
        let mut d = GraphDelta::new();
        d.insert_edge(NodeId(0), NodeId(9));
        assert!(matches!(
            g.apply_delta(&d).unwrap_err(),
            GraphError::InvalidNode { node: 9, .. }
        ));
        let mut d = GraphDelta::new();
        d.delete_edge(NodeId(0), NodeId(1))
            .insert_edge(NodeId(0), NodeId(1));
        assert_eq!(
            g.apply_delta(&d).unwrap_err(),
            GraphError::ConflictingDelta { from: 0, to: 1 }
        );
        let mut d = GraphDelta::new();
        d.insert_edge(NodeId(3), NodeId(0))
            .insert_edge(NodeId(3), NodeId(0));
        assert_eq!(
            g.apply_delta(&d).unwrap_err(),
            GraphError::ConflictingDelta { from: 3, to: 0 }
        );
    }

    #[test]
    fn label_pins_guard_against_wrong_graph_versions() {
        let g = diamond();
        let mut ok = GraphDelta::new();
        ok.delete_edge_labeled(NodeId(0), NodeId(1), Label(0), Label(1));
        assert!(ok.validate(&g).is_ok());
        let mut bad = GraphDelta::new();
        bad.insert_edge_labeled(NodeId(3), NodeId(0), Label(7), Label(0));
        assert_eq!(
            bad.validate(&g).unwrap_err(),
            GraphError::LabelMismatch {
                node: 3,
                expected: 7,
                found: 2
            }
        );
    }

    #[test]
    fn touched_nodes_and_counts() {
        let mut d = GraphDelta::new();
        assert!(d.is_empty());
        d.delete_edge(NodeId(2), NodeId(3))
            .insert_edge(NodeId(3), NodeId(2));
        assert!(!d.is_empty());
        assert_eq!(d.op_count(), 2);
        assert_eq!(d.touched_nodes(), vec![NodeId(2), NodeId(3)]);
        assert_eq!(d.inserted_edges().count(), 1);
        assert_eq!(d.deleted_edges().count(), 1);
    }

    #[test]
    fn composition_matches_sequential_application() {
        let g = diamond();
        let mut d1 = GraphDelta::new();
        d1.delete_edge(NodeId(0), NodeId(2))
            .insert_edge(NodeId(3), NodeId(0));
        let g1 = g.apply_delta(&d1).unwrap();
        let mut d2 = GraphDelta::new();
        d2.delete_edge(NodeId(3), NodeId(0)) // cancels d1's insert
            .insert_edge(NodeId(0), NodeId(2)) // cancels d1's delete
            .insert_edge(NodeId(2), NodeId(1));
        let sequential = g1.apply_delta(&d2).unwrap();
        let composed = d1.then(&d2);
        // Both cancelling pairs vanished; only the genuinely new edge remains.
        assert_eq!(composed.op_count(), 1);
        assert_eq!(
            composed.inserted_edges().collect::<Vec<_>>(),
            vec![(NodeId(2), NodeId(1))]
        );
        assert_eq!(g.apply_delta(&composed).unwrap(), sequential);
        // A delta composed with its inverse is a no-op batch.
        assert!(d1.then(&d1.inverse()).is_empty());
    }

    #[test]
    fn self_loops_can_be_added_and_removed() {
        let g = diamond();
        let mut d = GraphDelta::new();
        d.insert_edge(NodeId(1), NodeId(1));
        let with_loop = g.apply_delta(&d).unwrap();
        assert!(with_loop.has_edge(NodeId(1), NodeId(1)));
        let back = with_loop.apply_delta(&d.inverse()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn mark_within_distance_bounds_the_sweep() {
        // Path 0 - 1 - 2 - 3 (directed arbitrarily); depth-1 sweep from node 0.
        let g = Graph::from_edges(vec![Label(0); 4], &[(0, 1), (2, 1), (2, 3)]).unwrap();
        let mut out = BitSet::new(4);
        mark_within_distance(&g, [NodeId(0)], 1, &mut out);
        assert_eq!(out.to_vec(), vec![0, 1]);
        // Accumulation: a second sweep from node 3 unions in, never clears.
        mark_within_distance(&g, [NodeId(3)], 0, &mut out);
        assert_eq!(out.to_vec(), vec![0, 1, 3]);
        // Depth covers the whole component.
        let mut all = BitSet::new(4);
        mark_within_distance(&g, [NodeId(0)], 3, &mut all);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn edge_ball_marking_is_the_endpoint_ball_intersection() {
        // Chain 0 → 1 → … → 6; the radius-2 balls containing edge (3, 4) are centred on
        // 2..=5 — node 1 is within 2 of endpoint 3 but not of endpoint 4, so the
        // endpoint-union sweep would overshoot to 1..=6.
        let edges: Vec<(u32, u32)> = (0..6u32).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(vec![Label(0); 7], &edges).unwrap();
        let mut out = BitSet::new(7);
        mark_edge_ball_centers(&g, &[(NodeId(3), NodeId(4))], 2, &mut out);
        assert_eq!(out.to_vec(), vec![2, 3, 4, 5]);
        let mut coarse = BitSet::new(7);
        mark_within_distance(&g, [NodeId(3), NodeId(4)], 2, &mut coarse);
        assert_eq!(coarse.to_vec(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn edge_ball_marking_at_depth_zero_sees_only_self_loops() {
        let g = Graph::from_edges(vec![Label(0); 3], &[(0, 1), (1, 1)]).unwrap();
        let mut out = BitSet::new(3);
        mark_edge_ball_centers(&g, &[(NodeId(0), NodeId(1))], 0, &mut out);
        assert!(out.is_empty());
        mark_edge_ball_centers(&g, &[(NodeId(1), NodeId(1))], 0, &mut out);
        assert_eq!(out.to_vec(), vec![1]);
    }

    #[test]
    fn edge_ball_marking_budget_fallback_stays_a_superset() {
        // Star 0 → {1, 2, 3}; the tight set for edge (0, 1) at depth 1 is {0, 1}.
        // Repeating the edge enough times exhausts the 4·|V| walk budget mid-list, and
        // the remaining edges must degrade to the coarse (superset) sweep, never lose
        // centers.
        let g = Graph::from_edges(vec![Label(0); 4], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let edges: Vec<(NodeId, NodeId)> = (0..16).map(|_| (NodeId(0), NodeId(1))).collect();
        let mut out = BitSet::new(4);
        mark_edge_ball_centers(&g, &edges, 1, &mut out);
        assert!(out.contains(0) && out.contains(1));
    }
}

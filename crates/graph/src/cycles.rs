//! Directed and undirected cycle detection.
//!
//! The paper's topology-preservation criterion (4) distinguishes directed cycles (preserved
//! by plain simulation, Proposition 2) from undirected cycles (preserved only from dual
//! simulation upward, Theorem 3). These helpers let the test-suite and the topology report
//! check both.

use crate::components::strongly_connected_components;
use crate::graph::{Graph, NodeId};

/// Returns `true` when the graph contains a directed cycle (self-loops count).
pub fn has_directed_cycle(graph: &Graph) -> bool {
    // A directed cycle exists iff some SCC has more than one node, or some node has a
    // self-loop.
    if graph.nodes().any(|v| graph.has_edge(v, v)) {
        return true;
    }
    strongly_connected_components(graph)
        .iter()
        .any(|scc| scc.len() > 1)
}

/// Returns `true` when the graph contains an undirected cycle.
///
/// Undirected cycles follow the paper's definition: a sequence of nodes connected by edges in
/// either orientation, with no repeated node except the endpoints, of length at least one.
/// Self-loops therefore count; a pair of anti-parallel edges `(u,v)` and `(v,u)` forms an
/// undirected cycle of length 2.
pub fn has_undirected_cycle(graph: &Graph) -> bool {
    // Self-loops.
    if graph.nodes().any(|v| graph.has_edge(v, v)) {
        return true;
    }
    // Anti-parallel edge pairs.
    if graph.edges().any(|(u, v)| u != v && graph.has_edge(v, u)) {
        return true;
    }
    // Classic union-find over the undirected simple graph: a cycle exists iff some edge joins
    // two nodes already connected.
    let n = graph.node_count();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (u, v) in graph.edges() {
        if u == v {
            continue;
        }
        // Skip the second copy of anti-parallel pairs (already handled above).
        if graph.has_edge(v, u) && v < u {
            continue;
        }
        let (ru, rv) = (find(&mut parent, u.index()), find(&mut parent, v.index()));
        if ru == rv {
            return true;
        }
        parent[ru] = rv;
    }
    false
}

/// Returns `true` when the graph contains a simple undirected cycle of length ≥ 3 whose
/// nodes carry **pairwise-distinct labels** (self-loops and anti-parallel pairs are
/// *directed* cycles — test those with [`has_directed_cycle`]).
///
/// This is the shape for which dual simulation provably preserves undirected cycles:
/// the cycle-chasing walk of Theorem 3 steps from candidate to candidate along the
/// pattern cycle, and with pairwise-distinct labels the candidate sets are pairwise
/// disjoint, so the walk can neither fold two cycle positions onto one data node nor
/// immediately re-traverse the edge it arrived by — a closed walk without immediate
/// edge reversal always contains a simple cycle. With a repeated label the walk *can*
/// fold (two same-labelled cycle nodes matched by one data node) and preservation
/// genuinely fails; see `undirected_cycles_preserved` in `ssim-core` for the worked
/// counterexample.
///
/// Exhaustive DFS over label-distinct simple paths — exponential in the worst case, so
/// only apply it to pattern-sized graphs (patterns here have a handful of nodes; the
/// label-distinctness bound additionally caps the path depth at the alphabet size).
pub fn has_label_distinct_undirected_cycle(graph: &Graph) -> bool {
    let n = graph.node_count();
    // Undirected simple adjacency (self-loops dropped, orientations merged).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, v) in graph.edges() {
        if u == v {
            continue;
        }
        adj[u.index()].push(v.index());
        adj[v.index()].push(u.index());
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }

    /// Extends a label-distinct simple path, closing back to `start` when a cycle of
    /// length ≥ 3 exists. Only nodes with id > `start` extend the path, so every cycle
    /// is searched exactly once, rooted at its minimum node.
    fn extend(
        graph: &Graph,
        adj: &[Vec<usize>],
        start: usize,
        current: usize,
        depth: usize,
        on_path: &mut [bool],
        labels_used: &mut Vec<crate::labels::Label>,
    ) -> bool {
        for &next in &adj[current] {
            if next == start && depth >= 3 {
                return true;
            }
            if next <= start || on_path[next] {
                continue;
            }
            let label = graph.label(NodeId::from_index(next));
            if labels_used.contains(&label) {
                continue;
            }
            on_path[next] = true;
            labels_used.push(label);
            let found = extend(graph, adj, start, next, depth + 1, on_path, labels_used);
            on_path[next] = false;
            labels_used.pop();
            if found {
                return true;
            }
        }
        false
    }

    let mut on_path = vec![false; n];
    let mut labels_used = Vec::new();
    for start in 0..n {
        on_path[start] = true;
        labels_used.push(graph.label(NodeId::from_index(start)));
        let found = extend(graph, &adj, start, start, 1, &mut on_path, &mut labels_used);
        on_path[start] = false;
        labels_used.pop();
        if found {
            return true;
        }
    }
    false
}

/// Lengths of all *simple* directed cycles through edges inside SCCs, capped at `max_cycles`
/// enumerated cycles. Used by the bounded-cycle discussion (Theorem 4) tests; exponential in
/// the worst case, so only applied to small graphs.
pub fn directed_cycle_lengths(graph: &Graph, max_cycles: usize) -> Vec<usize> {
    let mut lengths = Vec::new();
    let n = graph.node_count();
    // Simple DFS-based enumeration starting from each node, only visiting nodes with id >=
    // start (Johnson-style restriction to avoid duplicates).
    for start in graph.nodes() {
        if lengths.len() >= max_cycles {
            break;
        }
        let mut path: Vec<NodeId> = vec![start];
        let mut on_path = vec![false; n];
        on_path[start.index()] = true;
        // stack of neighbour iterators by position
        let mut iters: Vec<Vec<NodeId>> = vec![graph
            .out_neighbors(start)
            .filter(|v| v.index() >= start.index())
            .collect()];
        let mut pos = vec![0usize];
        while !path.is_empty() && lengths.len() < max_cycles {
            let depth = path.len() - 1;
            if pos[depth] < iters[depth].len() {
                let next = iters[depth][pos[depth]];
                pos[depth] += 1;
                if next == start {
                    lengths.push(path.len());
                } else if !on_path[next.index()] {
                    on_path[next.index()] = true;
                    path.push(next);
                    iters.push(
                        graph
                            .out_neighbors(next)
                            .filter(|v| v.index() >= start.index())
                            .collect(),
                    );
                    pos.push(0);
                }
            } else {
                let done = path.pop().expect("path underflow");
                on_path[done.index()] = false;
                iters.pop();
                pos.pop();
            }
        }
    }
    lengths
}

/// Length of the longest simple directed cycle, if any (small graphs only — exponential).
pub fn longest_directed_cycle(graph: &Graph, max_cycles: usize) -> Option<usize> {
    directed_cycle_lengths(graph, max_cycles).into_iter().max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::Label;

    fn g(edges: &[(u32, u32)], n: usize) -> Graph {
        Graph::from_edges(vec![Label(0); n], edges).unwrap()
    }

    #[test]
    fn dag_has_no_cycles() {
        let graph = g(&[(0, 1), (0, 2), (1, 3), (2, 3)], 4);
        assert!(!has_directed_cycle(&graph));
        // The diamond is an undirected cycle though.
        assert!(has_undirected_cycle(&graph));
    }

    #[test]
    fn tree_has_no_undirected_cycle() {
        let graph = g(&[(0, 1), (0, 2), (1, 3)], 4);
        assert!(!has_undirected_cycle(&graph));
        assert!(!has_directed_cycle(&graph));
    }

    #[test]
    fn directed_triangle() {
        let graph = g(&[(0, 1), (1, 2), (2, 0)], 3);
        assert!(has_directed_cycle(&graph));
        assert!(has_undirected_cycle(&graph));
        assert_eq!(longest_directed_cycle(&graph, 100), Some(3));
    }

    #[test]
    fn self_loop_counts_as_cycle() {
        let graph = g(&[(0, 0)], 1);
        assert!(has_directed_cycle(&graph));
        assert!(has_undirected_cycle(&graph));
        assert_eq!(longest_directed_cycle(&graph, 10), Some(1));
    }

    #[test]
    fn antiparallel_pair_is_length_two_cycle() {
        let graph = g(&[(0, 1), (1, 0)], 2);
        assert!(has_directed_cycle(&graph));
        assert!(has_undirected_cycle(&graph));
        assert_eq!(longest_directed_cycle(&graph, 10), Some(2));
    }

    #[test]
    fn cycle_lengths_enumeration() {
        // Two directed cycles: a triangle 0-1-2 and a 2-cycle 3-4.
        let graph = g(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 3)], 5);
        let mut lengths = directed_cycle_lengths(&graph, 100);
        lengths.sort_unstable();
        assert_eq!(lengths, vec![2, 3]);
    }

    #[test]
    fn enumeration_respects_cap() {
        // Complete directed graph on 5 nodes has many cycles; cap must hold.
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in 0..5u32 {
                if i != j {
                    edges.push((i, j));
                }
            }
        }
        let graph = g(&edges, 5);
        let lengths = directed_cycle_lengths(&graph, 7);
        assert_eq!(lengths.len(), 7);
    }

    #[test]
    fn no_cycle_returns_none() {
        let graph = g(&[(0, 1)], 2);
        assert_eq!(longest_directed_cycle(&graph, 10), None);
    }

    fn labeled(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        Graph::from_edges(labels.iter().map(|&l| Label(l)).collect(), edges).unwrap()
    }

    #[test]
    fn label_distinct_cycle_detection() {
        // Triangle with three distinct labels: found.
        let distinct = labeled(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]);
        assert!(has_label_distinct_undirected_cycle(&distinct));
        // Diamond whose only cycle repeats a label (0-1-3-2-0 with labels 0,1,2,1).
        let folded = labeled(&[0, 1, 1, 2], &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert!(has_undirected_cycle(&folded));
        assert!(!has_label_distinct_undirected_cycle(&folded));
        // Same diamond with all-distinct labels: found.
        let unfolded = labeled(&[0, 1, 3, 2], &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert!(has_label_distinct_undirected_cycle(&unfolded));
        // Self-loops and anti-parallel pairs are directed cycles, not length-≥3
        // undirected ones — this detector ignores them by design.
        let loops = labeled(&[0], &[(0, 0)]);
        assert!(!has_label_distinct_undirected_cycle(&loops));
        let anti = labeled(&[0, 1], &[(0, 1), (1, 0)]);
        assert!(!has_label_distinct_undirected_cycle(&anti));
        // Trees have no cycle at all.
        let tree = labeled(&[0, 1, 2], &[(0, 1), (0, 2)]);
        assert!(!has_label_distinct_undirected_cycle(&tree));
        // A larger cycle where the repeated label sits off-cycle: still found (the
        // off-cycle node never joins the path).
        let chord = labeled(&[0, 1, 2, 3, 1], &[(0, 1), (1, 2), (2, 3), (3, 0), (2, 4)]);
        assert!(has_label_distinct_undirected_cycle(&chord));
    }
}

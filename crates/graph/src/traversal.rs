//! Breadth-first traversals and shortest-distance computations.
//!
//! The paper's distance `dist(u, v)` is the length of the shortest **undirected** path, and
//! both balls and diameters are defined in terms of it. Directed BFS is also provided for
//! reachability-style uses.

use crate::graph::{Graph, NodeId};
use crate::view::GraphView;
use std::collections::VecDeque;

/// Distance value used to mark unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Which edge directions a traversal may follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges from source to target only.
    Forward,
    /// Follow edges from target to source only.
    Backward,
    /// Treat edges as undirected (the paper's notion of distance).
    Undirected,
}

/// Computes BFS distances from `source` over the whole graph.
///
/// Returns a vector indexed by node id; unreachable nodes hold [`UNREACHABLE`].
pub fn bfs_distances(graph: &Graph, source: NodeId, direction: Direction) -> Vec<u32> {
    bfs_distances_view(&GraphView::full(graph), source, direction)
}

/// Computes BFS distances from `source` inside a [`GraphView`].
pub fn bfs_distances_view(view: &GraphView<'_>, source: NodeId, direction: Direction) -> Vec<u32> {
    let n = view.graph().node_count();
    let mut dist = vec![UNREACHABLE; n];
    if !view.contains(source) {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        let visit = |v: NodeId, dist: &mut Vec<u32>, queue: &mut VecDeque<NodeId>| {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        };
        match direction {
            Direction::Forward => {
                for v in view.out_neighbors(u) {
                    visit(v, &mut dist, &mut queue);
                }
            }
            Direction::Backward => {
                for v in view.in_neighbors(u) {
                    visit(v, &mut dist, &mut queue);
                }
            }
            Direction::Undirected => {
                for v in view.out_neighbors(u) {
                    visit(v, &mut dist, &mut queue);
                }
                for v in view.in_neighbors(u) {
                    visit(v, &mut dist, &mut queue);
                }
            }
        }
    }
    dist
}

/// BFS limited to nodes within `radius` undirected hops of `source`.
///
/// Returns `(members, distances)` where `members` lists the reached nodes in BFS order and
/// `distances[i]` is the distance of `members[i]`.
pub fn bounded_bfs_undirected(
    graph: &Graph,
    source: NodeId,
    radius: usize,
) -> (Vec<NodeId>, Vec<u32>) {
    let mut dist: Vec<u32> = vec![UNREACHABLE; graph.node_count()];
    let mut members = Vec::new();
    let mut member_dist = Vec::new();
    if !graph.contains_node(source) {
        return (members, member_dist);
    }
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    members.push(source);
    member_dist.push(0);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        if du as usize >= radius {
            continue;
        }
        for v in graph.out_neighbors(u).chain(graph.in_neighbors(u)) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                members.push(v);
                member_dist.push(du + 1);
                queue.push_back(v);
            }
        }
    }
    (members, member_dist)
}

/// Shortest undirected distance between two nodes, the paper's `dist(u, v)`.
///
/// Returns `None` when the nodes are in different (undirected) connected components.
pub fn undirected_distance(graph: &Graph, from: NodeId, to: NodeId) -> Option<usize> {
    let dist = bfs_distances(graph, from, Direction::Undirected);
    match dist.get(to.index()) {
        Some(&d) if d != UNREACHABLE => Some(d as usize),
        _ => None,
    }
}

/// Nodes reachable from `source` following the given direction (including `source`).
pub fn reachable(graph: &Graph, source: NodeId, direction: Direction) -> Vec<NodeId> {
    bfs_distances(graph, source, direction)
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != UNREACHABLE)
        .map(|(i, _)| NodeId::from_index(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::Label;

    fn path_graph(n: usize) -> Graph {
        // 0 -> 1 -> ... -> n-1
        let labels = vec![Label(0); n];
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(labels, &edges).unwrap()
    }

    #[test]
    fn directed_vs_undirected_distances() {
        let g = path_graph(4);
        let fwd = bfs_distances(&g, NodeId(3), Direction::Forward);
        assert_eq!(fwd, vec![UNREACHABLE, UNREACHABLE, UNREACHABLE, 0]);
        let bwd = bfs_distances(&g, NodeId(3), Direction::Backward);
        assert_eq!(bwd, vec![3, 2, 1, 0]);
        let und = bfs_distances(&g, NodeId(3), Direction::Undirected);
        assert_eq!(und, vec![3, 2, 1, 0]);
    }

    #[test]
    fn undirected_distance_between_nodes() {
        let g = path_graph(5);
        assert_eq!(undirected_distance(&g, NodeId(0), NodeId(4)), Some(4));
        assert_eq!(undirected_distance(&g, NodeId(4), NodeId(0)), Some(4));
        assert_eq!(undirected_distance(&g, NodeId(2), NodeId(2)), Some(0));
    }

    #[test]
    fn distance_in_disconnected_graph_is_none() {
        let g = Graph::from_edges(vec![Label(0); 4], &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(undirected_distance(&g, NodeId(0), NodeId(3)), None);
        assert_eq!(undirected_distance(&g, NodeId(2), NodeId(3)), Some(1));
    }

    #[test]
    fn bounded_bfs_respects_radius() {
        let g = path_graph(6);
        let (members, dists) = bounded_bfs_undirected(&g, NodeId(0), 2);
        assert_eq!(members, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(dists, vec![0, 1, 2]);
        let (all, _) = bounded_bfs_undirected(&g, NodeId(0), 100);
        assert_eq!(all.len(), 6);
        let (only, _) = bounded_bfs_undirected(&g, NodeId(3), 0);
        assert_eq!(only, vec![NodeId(3)]);
    }

    #[test]
    fn bounded_bfs_from_invalid_source_is_empty() {
        let g = path_graph(3);
        let (members, dists) = bounded_bfs_undirected(&g, NodeId(17), 2);
        assert!(members.is_empty());
        assert!(dists.is_empty());
    }

    #[test]
    fn reachable_sets() {
        let g = Graph::from_edges(vec![Label(0); 5], &[(0, 1), (1, 2), (3, 2), (3, 4)]).unwrap();
        assert_eq!(
            reachable(&g, NodeId(0), Direction::Forward),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
        assert_eq!(reachable(&g, NodeId(2), Direction::Backward).len(), 4);
        assert_eq!(reachable(&g, NodeId(0), Direction::Undirected).len(), 5);
    }

    #[test]
    fn view_restricted_bfs() {
        use crate::bitset::BitSet;
        let g = path_graph(5);
        let mut members = BitSet::new(5);
        for i in 0..3 {
            members.insert(i);
        }
        let view = GraphView::restricted(&g, &members);
        let d = bfs_distances_view(&view, NodeId(0), Direction::Undirected);
        assert_eq!(d[2], 2);
        assert_eq!(d[3], UNREACHABLE);
        // Source outside the view yields all-unreachable.
        let d2 = bfs_distances_view(&view, NodeId(4), Direction::Undirected);
        assert!(d2.iter().all(|&x| x == UNREACHABLE));
    }
}

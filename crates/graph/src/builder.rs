//! Incremental construction of [`Graph`]s.

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use crate::labels::{Label, LabelInterner};

/// Builds a [`Graph`] by adding nodes and edges incrementally.
///
/// The builder keeps a per-node adjacency list and converts it into the CSR representation on
/// [`GraphBuilder::build`]. Edge targets are sorted and deduplicated so the resulting graph
/// supports binary-search edge lookups.
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    labels: Vec<Label>,
    out_edges: Vec<Vec<NodeId>>,
    interner: LabelInterner,
    edge_count_hint: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with pre-allocated capacity for `nodes` nodes and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        GraphBuilder {
            labels: Vec::with_capacity(nodes),
            out_edges: Vec::with_capacity(nodes),
            interner: LabelInterner::new(),
            edge_count_hint: edges,
        }
    }

    /// Adds a node labelled by the string `label` (interned via the builder's interner).
    pub fn add_node(&mut self, label: &str) -> NodeId {
        let l = self.interner.intern(label);
        self.add_labeled_node(l)
    }

    /// Adds a node with an explicit [`Label`] (used by generators producing numeric labels).
    pub fn add_labeled_node(&mut self, label: Label) -> NodeId {
        let id = NodeId::from_index(self.labels.len());
        self.labels.push(label);
        self.out_edges.push(Vec::new());
        id
    }

    /// Adds `count` nodes all carrying `label`; returns the id of the first one.
    pub fn add_labeled_nodes(&mut self, label: Label, count: usize) -> NodeId {
        let first = NodeId::from_index(self.labels.len());
        for _ in 0..count {
            self.add_labeled_node(label);
        }
        first
    }

    /// Adds the directed edge `(from, to)`.
    ///
    /// # Panics
    /// Panics when either endpoint has not been added yet; use [`GraphBuilder::try_add_edge`]
    /// for a fallible variant.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        self.try_add_edge(from, to)
            .expect("edge endpoint out of range");
    }

    /// Adds the directed edge `(from, to)`, reporting invalid endpoints as errors.
    pub fn try_add_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), GraphError> {
        let n = self.labels.len();
        for endpoint in [from, to] {
            if endpoint.index() >= n {
                return Err(GraphError::InvalidNode {
                    node: endpoint.0,
                    node_count: n,
                });
            }
        }
        self.out_edges[from.index()].push(to);
        Ok(())
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Access to the label interner (e.g. to translate labels back to names for display).
    pub fn interner(&self) -> &LabelInterner {
        &self.interner
    }

    /// Consumes the builder and returns the label interner, for callers that only need the
    /// string table.
    pub fn into_interner(self) -> LabelInterner {
        self.interner
    }

    /// Finalises the CSR graph. Parallel edges are removed; edge order is normalised.
    pub fn build(self) -> Graph {
        self.build_with_interner().0
    }

    /// Finalises the graph and also hands back the label interner.
    pub fn build_with_interner(mut self) -> (Graph, LabelInterner) {
        let n = self.labels.len();
        // Deduplicate and sort each adjacency list.
        let mut total = 0usize;
        for list in &mut self.out_edges {
            list.sort_unstable();
            list.dedup();
            total += list.len();
        }
        let _ = self.edge_count_hint;
        let mut fwd_offsets = Vec::with_capacity(n + 1);
        let mut fwd_targets = Vec::with_capacity(total);
        fwd_offsets.push(0);
        for list in &self.out_edges {
            fwd_targets.extend_from_slice(list);
            fwd_offsets.push(fwd_targets.len());
        }
        // Reverse CSR via counting sort over targets.
        let mut in_degree = vec![0usize; n];
        for &t in &fwd_targets {
            in_degree[t.index()] += 1;
        }
        let mut rev_offsets = Vec::with_capacity(n + 1);
        rev_offsets.push(0);
        let mut acc = 0usize;
        for d in &in_degree {
            acc += d;
            rev_offsets.push(acc);
        }
        let mut cursor = rev_offsets[..n].to_vec();
        let mut rev_targets = vec![NodeId(0); total];
        for (src_idx, list) in self.out_edges.iter().enumerate() {
            for &t in list {
                rev_targets[cursor[t.index()]] = NodeId::from_index(src_idx);
                cursor[t.index()] += 1;
            }
        }
        // Sources within each reverse bucket are already in ascending order because we iterate
        // sources in ascending order, so binary search in `has_edge` stays valid.
        let graph = Graph::from_csr(
            self.labels,
            fwd_offsets,
            fwd_targets,
            rev_offsets,
            rev_targets,
        );
        (graph, self.interner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_with_string_labels() {
        let mut b = GraphBuilder::new();
        let hr = b.add_node("HR");
        let se = b.add_node("SE");
        let bio = b.add_node("Bio");
        let hr2 = b.add_node("HR");
        b.add_edge(hr, bio);
        b.add_edge(se, bio);
        b.add_edge(hr2, se);
        let (g, interner) = b.build_with_interner();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.label(hr), g.label(hr2));
        assert_eq!(interner.name(g.label(bio)), Some("Bio"));
        assert_eq!(g.nodes_with_label(interner.get("HR").unwrap()), &[hr, hr2]);
    }

    #[test]
    fn try_add_edge_reports_bad_endpoints() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        assert!(b.try_add_edge(a, NodeId(5)).is_err());
        assert!(b.try_add_edge(NodeId(5), a).is_err());
        assert!(b.try_add_edge(a, a).is_ok());
    }

    #[test]
    #[should_panic(expected = "edge endpoint out of range")]
    fn add_edge_panics_on_bad_endpoint() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a");
        b.add_edge(a, NodeId(9));
    }

    #[test]
    fn reverse_adjacency_matches_forward() {
        let mut b = GraphBuilder::with_capacity(5, 6);
        for i in 0..5u32 {
            b.add_labeled_node(Label(i % 2));
        }
        let edges = [(0u32, 1u32), (2, 1), (3, 1), (1, 4), (4, 0), (0, 4)];
        for (s, t) in edges {
            b.add_edge(NodeId(s), NodeId(t));
        }
        let g = b.build();
        for (s, t) in g.edges() {
            assert!(g.in_neighbors(t).any(|p| p == s));
        }
        assert_eq!(
            g.in_neighbors(NodeId(1)).collect::<Vec<_>>(),
            vec![NodeId(0), NodeId(2), NodeId(3)]
        );
        assert_eq!(g.in_degree(NodeId(4)), 2);
    }

    #[test]
    fn add_labeled_nodes_bulk() {
        let mut b = GraphBuilder::new();
        let first = b.add_labeled_nodes(Label(7), 10);
        assert_eq!(first, NodeId(0));
        assert_eq!(b.node_count(), 10);
        let g = b.build();
        assert_eq!(g.nodes_with_label(Label(7)).len(), 10);
    }

    #[test]
    fn into_interner_returns_string_table() {
        let mut b = GraphBuilder::new();
        b.add_node("only");
        let interner = b.into_interner();
        assert_eq!(interner.len(), 1);
    }
}
